"""``python -m repro`` -- the unified experiment CLI.

One entry point for the whole evaluation, replacing the per-figure
``python -m repro.experiments.<module>`` invocations (which remain as
deprecation shims that forward here):

* ``python -m repro list`` -- registered experiments and platform variants;
* ``python -m repro run <experiment>`` -- run one registry entry, with
  ``--platform VARIANT`` (repeatable: sweeps the platform axis),
  ``--trace FILE`` (repeatable: registers MQSim-format block traces as
  workloads and adds them to the sweep), ``--scale S``, ``--serial`` /
  ``--workers N``, ``--no-cache`` / ``--cache-dir DIR``, ``--json OUT``
  and ``-v`` (sweep statistics);
* ``python -m repro compare <experiment> <base> <other>`` -- sweep one
  experiment's axes over two platform variants and diff the grids pair
  by pair (time/energy ratios plus maintenance counters).

Everything the CLI does goes through the public library API
(:func:`repro.experiments.run_experiment`), so scripted users get exactly
the same behaviour.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional


def build_parser() -> argparse.ArgumentParser:
    from repro.experiments.runner import DEFAULT_WORKLOAD_SCALE
    # One constant drives both subcommands' --scale help (and the
    # ExperimentConfig default), so the documented default cannot drift
    # from the behaviour.
    scale_help = (f"workload scale (default: {DEFAULT_WORKLOAD_SCALE}, "
                  "the figure harnesses' scale; 1.0 = the paper's full "
                  "Table 2 footprints)")
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Reproduce the paper's evaluation: run registered "
                    "experiments over (workload x policy x platform) "
                    "sweeps.")
    commands = parser.add_subparsers(dest="command", required=True)

    commands.add_parser(
        "list", help="list registered experiments and platform variants")

    run = commands.add_parser(
        "run", help="run one registered experiment")
    run.add_argument("experiment",
                     help="registry name (see `python -m repro list`)")
    run.add_argument("--platform", action="append", dest="platforms",
                     metavar="VARIANT",
                     help="platform variant to run on; repeat to sweep the "
                          "platform axis (default: the experiment's own "
                          "axis, usually just `default`)")
    run.add_argument("--scale", type=float, default=None, metavar="S",
                     help=scale_help)
    run.add_argument("--trace", action="append", dest="traces",
                     metavar="FILE",
                     help="register an MQSim-format block trace as a "
                          "workload and add it to the experiment's "
                          "workload axis; repeatable")
    workers = run.add_mutually_exclusive_group()
    workers.add_argument("--serial", action="store_true",
                         help="run the sweep in-process (no worker pool)")
    workers.add_argument("--workers", type=int, metavar="N",
                         help="process-pool worker count (default: "
                              "REPRO_SWEEP_WORKERS, then cpu count)")
    cache = run.add_mutually_exclusive_group()
    cache.add_argument("--no-cache", action="store_true",
                       help="disable the on-disk sweep result cache")
    cache.add_argument("--cache-dir", metavar="DIR",
                       help="sweep cache directory (default: "
                            "REPRO_SWEEP_CACHE, then .sweep_cache/)")
    run.add_argument("--json", dest="json_out", metavar="OUT",
                     help="also write sections/headlines/stats as JSON")
    run.add_argument("--profile", action="store_true",
                     help="profile the run under cProfile and print a "
                          "per-phase time breakdown (collect / decide / "
                          "transform / move / execute); forces an "
                          "in-process serial sweep and disables the "
                          "result cache so the simulation actually runs")
    run.add_argument("-v", "--verbose", action="store_true",
                     help="print sweep statistics "
                          "(pairs/executed/cache-hits/workers)")

    compare = commands.add_parser(
        "compare", help="diff two platform variants over one experiment's "
                        "(workload x policy) axes")
    compare.add_argument("experiment",
                         help="registry name of a policy-sweeping "
                              "experiment (see `python -m repro list`)")
    compare.add_argument("base", help="baseline platform variant")
    compare.add_argument("other", help="variant compared against the base")
    compare.add_argument("--scale", type=float, default=None, metavar="S",
                         help=scale_help)
    compare_workers = compare.add_mutually_exclusive_group()
    compare_workers.add_argument("--serial", action="store_true",
                                 help="run the sweep in-process")
    compare_workers.add_argument("--workers", type=int, metavar="N",
                                 help="process-pool worker count")
    compare_cache = compare.add_mutually_exclusive_group()
    compare_cache.add_argument("--no-cache", action="store_true",
                               help="disable the on-disk sweep cache")
    compare_cache.add_argument("--cache-dir", metavar="DIR",
                               help="sweep cache directory")
    compare.add_argument("--json", dest="json_out", metavar="OUT",
                         help="also write the comparison document as JSON")
    compare.add_argument("-v", "--verbose", action="store_true",
                         help="print sweep statistics")
    return parser


#: ``--profile`` phase map: the first rule whose fragment appears in a
#: profiled function's file path claims its exclusive (tottime) cost, so
#: no function is double-counted.  Order matters only where a later
#: rule's fragment is a prefix of an earlier one's directory.
PROFILE_PHASES = (
    ("collect", ("core/offload/features", "core/compiler/waves")),
    ("decide", ("core/offload/policies", "core/offload/cost_model",
                "core/offload/offloader")),
    ("transform", ("core/offload/transform",)),
    ("move", ("core/platform", "core/coherence", "core/contention",
              "ssd/channels", "dram/")),
    ("execute", ("ssd/queues", "ssd/events", "isp/", "ifp/", "host/",
                 "ssd/")),
)


def _profile_breakdown(profile) -> List[str]:
    """Aggregate a cProfile run into per-phase exclusive-time lines."""
    import pstats
    stats = pstats.Stats(profile)
    totals = {phase: 0.0 for phase, _ in PROFILE_PHASES}
    totals["other"] = 0.0
    grand = 0.0
    for (filename, _, _), (_, _, tottime, _, _) in stats.stats.items():
        path = filename.replace("\\", "/")
        for phase, fragments in PROFILE_PHASES:
            if any(fragment in path for fragment in fragments):
                totals[phase] += tottime
                break
        else:
            totals["other"] += tottime
        grand += tottime
    lines = ["[profile] phase breakdown (exclusive time):"]
    for phase in [name for name, _ in PROFILE_PHASES] + ["other"]:
        seconds = totals[phase]
        share = 100.0 * seconds / grand if grand else 0.0
        lines.append(f"[profile]   {phase:<9} {seconds:8.3f}s  "
                     f"{share:5.1f}%")
    lines.append(f"[profile]   {'total':<9} {grand:8.3f}s")
    return lines


def _cmd_list() -> int:
    from repro.experiments import (EXPERIMENT_REGISTRY,
                                   available_experiments,
                                   available_platform_variants)
    names = available_experiments()
    width = max(len(name) for name in names)
    print("Experiments (python -m repro run <name>):")
    for name in names:
        definition = EXPERIMENT_REGISTRY[name]
        print(f"  {name.ljust(width)}  {definition.title} "
              f"[{definition.axes_summary()}]")
    print()
    print("Platform variants (--platform, repeatable):")
    print("  " + ", ".join(available_platform_variants()))
    from repro.workloads import available_workloads
    print()
    print("Workloads (experiment axes, TenantSpec mixes; extend with "
          "--trace or register_workload):")
    print("  " + ", ".join(available_workloads()))
    return 0


def _with_traces(definition, trace_paths: List[str]):
    """Register ``--trace`` files and widen the experiment's workload axis.

    Registration uses ``overwrite=True`` so re-running the same command is
    idempotent; the trace's content hash is folded into every cache key
    (``RunSpec.workload_params``), so overwriting a name with different
    content can never be served the old content's results.
    """
    import dataclasses

    from repro.experiments.registry import ExperimentDef  # noqa: F401
    from repro.workloads import ALL_WORKLOADS
    from repro.workloads.traces import register_trace_workload
    if definition.composite:
        raise ValueError(
            f"experiment {definition.name!r} is a composite; --trace needs "
            "a single policy-sweeping experiment (e.g. `run traces`)")
    if not definition.policies:
        raise ValueError(
            f"experiment {definition.name!r} runs no (workload x policy) "
            "sweep, so --trace has no axis to extend")
    base = (definition.workloads if definition.workloads is not None
            else tuple(workload.name for workload in ALL_WORKLOADS))
    added = tuple(register_trace_workload(path, overwrite=True)
                  for path in trace_paths)
    merged = base + tuple(name for name in added if name not in base)
    return dataclasses.replace(definition, workloads=merged)


def _cmd_run(args: argparse.Namespace) -> int:
    from repro.common import SimulationError
    from repro.experiments import (ExperimentConfig, default_sweep_cache_dir,
                                   experiment_def, platform_variant,
                                   run_experiment, to_json)
    try:
        definition = experiment_def(args.experiment)
        platforms = tuple(args.platforms) if args.platforms else None
        for name in platforms or ():
            platform_variant(name)  # fail fast with the known-variant list
        if getattr(args, "traces", None):
            definition = _with_traces(definition, args.traces)
    except (ValueError, OSError, SimulationError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2

    config = (ExperimentConfig(workload_scale=args.scale)
              if args.scale is not None else ExperimentConfig())
    if args.no_cache or args.profile:
        # Profiling a cache hit would time JSON deserialization, not the
        # simulator, so --profile always executes the sweep.
        cache_dir = None
    else:
        cache_dir = args.cache_dir or default_sweep_cache_dir()
    profile = None
    if args.profile:
        import cProfile
        profile = cProfile.Profile()
    try:
        if profile is not None:
            # Worker processes would escape the profiler; stay in-process.
            profile.enable()
            try:
                result = run_experiment(definition, config,
                                        platforms=platforms, parallel=False,
                                        cache_dir=None)
            finally:
                profile.disable()
        else:
            result = run_experiment(definition, config, platforms=platforms,
                                    parallel=not args.serial,
                                    workers=args.workers,
                                    cache_dir=cache_dir)
    except ValueError as error:
        # The library API's user-error channel (duplicate variants, bad
        # worker counts, ...); internal failures still traceback.
        print(f"error: {error}", file=sys.stderr)
        return 2
    for name, text in result.formatted().items():
        print(f"== {name} ==")
        print(text)
        print()
    # An experiment that produces an empty table is always a bug (every
    # builder renders at least one row per swept unit); fail the run so
    # CI catches it instead of green-lighting "(no rows)" output.
    empty = [name for name, rows in result.sections.items() if not rows]
    if empty:
        print(f"error: empty report section(s): {', '.join(empty)}",
              file=sys.stderr)
        return 1
    for line in result.headline:
        print(line)
    if args.verbose:
        for name, stats in result.stats:
            print(f"[sweep {name}] {stats.summary()}")
    if profile is not None:
        for line in _profile_breakdown(profile):
            print(line)
    if args.json_out:
        to_json(result.to_jsonable(), path=args.json_out)
        print(f"wrote {args.json_out}")
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    from repro.experiments import (ExperimentConfig,
                                   default_sweep_cache_dir, format_table,
                                   run_compare, to_json)
    config = (ExperimentConfig(workload_scale=args.scale)
              if args.scale is not None else ExperimentConfig())
    cache_dir = (None if args.no_cache
                 else args.cache_dir or default_sweep_cache_dir())
    try:
        document = run_compare(args.experiment, args.base, args.other,
                               config, parallel=not args.serial,
                               workers=args.workers, cache_dir=cache_dir)
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    print(f"== {args.experiment}: {args.base} vs {args.other} ==")
    print(format_table(document["rows"], float_digits=3))
    summary = document["summary"]
    if summary.get("pairs"):
        print(f"geomean time ratio {summary['geomean_time_ratio']:.3f}x, "
              f"energy ratio {summary['geomean_energy_ratio']:.3f}x over "
              f"{summary['pairs']} pairs; worst "
              f"{summary['max_time_ratio']:.3f}x on "
              f"{'/'.join(summary['max_time_ratio_pair'])}")
    else:
        print("error: the variants' sweeps share no (workload, policy) "
              "pairs", file=sys.stderr)
        return 1
    if args.verbose:
        print(f"[sweep {args.experiment}] {document['sweep']}")
    if args.json_out:
        to_json(document, path=args.json_out)
        print(f"wrote {args.json_out}")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "list":
        return _cmd_list()
    if args.command == "compare":
        return _cmd_compare(args)
    return _cmd_run(args)


def run_module_shim(experiment: str) -> None:
    """Back-compat entry for ``python -m repro.experiments.<module>``."""
    print(f"note: `python -m repro.experiments.…` is deprecated; use "
          f"`python -m repro run {experiment}`", file=sys.stderr)
    sys.exit(main(["run", experiment]))


if __name__ == "__main__":
    sys.exit(main())
