"""Energy accounting for computation and data movement."""

from repro.energy.model import EnergyAccount, EnergyBreakdown

__all__ = ["EnergyAccount", "EnergyBreakdown"]
