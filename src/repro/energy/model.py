"""Energy accounting.

The paper's energy model (Section 5.2) covers (1) computation on each SSD
computation resource and the host, and (2) data movement between the host
and the SSD and across SSD computation resources.  Fig. 7(b) reports total
energy split into *data movement* and *computation*; this module keeps the
two pools separate so the experiment harness can reproduce that breakdown.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict

from repro.common import KIB, ResourceLike
from repro.ssd.config import SSDEnergyConfig
from repro.host.config import HostMemoryConfig


@dataclass
class EnergyBreakdown:
    """Final energy report (nanojoules)."""

    compute_nj: float
    data_movement_nj: float
    per_resource_nj: Dict[str, float]
    per_transfer_kind_nj: Dict[str, float]

    @property
    def total_nj(self) -> float:
        return self.compute_nj + self.data_movement_nj

    @property
    def data_movement_fraction(self) -> float:
        total = self.total_nj
        return self.data_movement_nj / total if total else 0.0


class EnergyAccount:
    """Accumulates computation and data-movement energy during a run."""

    def __init__(self, ssd_energy: SSDEnergyConfig = None,
                 host_memory: HostMemoryConfig = None) -> None:
        self.ssd_energy = ssd_energy or SSDEnergyConfig()
        self.host_memory = host_memory or HostMemoryConfig()
        self._compute: Dict[str, float] = defaultdict(float)
        self._movement: Dict[str, float] = defaultdict(float)

    # -- Computation ------------------------------------------------------------

    def add_compute(self, resource: ResourceLike, energy_nj: float) -> None:
        """Add computation energy under the backend's report key.

        Registry-grown backends (``isp[0]``, ``cxl-pud``, ...) appear as
        their own rows in the per-resource breakdown.
        """
        self._compute[resource.value] += energy_nj

    # -- Data movement -----------------------------------------------------------

    def add_data_movement(self, kind: str, energy_nj: float) -> None:
        self._movement[kind] += energy_nj

    def charge_flash_read(self, pages: int = 1) -> float:
        nj = pages * self.ssd_energy.flash_read_nj_per_channel
        self.add_data_movement("flash-read", nj)
        return nj

    def charge_flash_program(self, pages: int = 1) -> float:
        nj = pages * self.ssd_energy.flash_program_nj_per_channel
        self.add_data_movement("flash-program", nj)
        return nj

    def charge_channel_dma(self, pages: int = 1) -> float:
        nj = pages * self.ssd_energy.dma_nj_per_channel
        self.add_data_movement("flash-channel-dma", nj)
        return nj

    def charge_dram_access(self, size_bytes: int) -> float:
        nj = (size_bytes / KIB) * self.ssd_energy.dram_access_nj_per_kb
        self.add_data_movement("ssd-dram", nj)
        return nj

    def charge_pcie(self, size_bytes: int) -> float:
        nj = (size_bytes / KIB) * self.ssd_energy.pcie_nj_per_kb
        self.add_data_movement("pcie", nj)
        return nj

    def charge_host_dram(self, size_bytes: int) -> float:
        nj = (size_bytes / KIB) * self.host_memory.energy_nj_per_kb
        self.add_data_movement("host-dram", nj)
        return nj

    def charge_run(self, *, flash_read_pages: int = 0,
                   flash_program_pages: int = 0, dma_pages: int = 0,
                   dram_bytes: int = 0, pcie_bytes: int = 0,
                   host_dram_bytes: int = 0) -> float:
        """Bulk-charge the data-movement energy of one contiguous page run.

        The run-batched data-movement engine accumulates per-kind counts
        while it walks a run and settles them with a single call, instead of
        charging each page individually.  Per-kind energies are linear in
        their counts, so the pools receive exactly what the per-page calls
        would have added.  Returns the total energy charged (nJ).
        """
        total = 0.0
        if flash_read_pages:
            total += self.charge_flash_read(flash_read_pages)
        if flash_program_pages:
            total += self.charge_flash_program(flash_program_pages)
        if dma_pages:
            total += self.charge_channel_dma(dma_pages)
        if dram_bytes:
            total += self.charge_dram_access(dram_bytes)
        if pcie_bytes:
            total += self.charge_pcie(pcie_bytes)
        if host_dram_bytes:
            total += self.charge_host_dram(host_dram_bytes)
        return total

    def charge_static(self, duration_ns: float, watts: float,
                      label: str = "static") -> float:
        """Charge background/static power for the duration of a run.

        Static power counts toward the computation share of Fig. 7(b)'s
        breakdown (it is not data movement).
        """
        nj = duration_ns * watts  # ns * W = nJ
        self._compute[label] += nj
        return nj

    # -- Reporting ------------------------------------------------------------------

    @property
    def compute_nj(self) -> float:
        return sum(self._compute.values())

    @property
    def data_movement_nj(self) -> float:
        return sum(self._movement.values())

    @property
    def total_nj(self) -> float:
        return self.compute_nj + self.data_movement_nj

    def breakdown(self) -> EnergyBreakdown:
        return EnergyBreakdown(
            compute_nj=self.compute_nj,
            data_movement_nj=self.data_movement_nj,
            per_resource_nj=dict(self._compute),
            per_transfer_kind_nj=dict(self._movement),
        )
