"""DRAM bank model.

Each DRAM bank is an independently operating array of rows (Fig. 2).  The
bank model tracks the open row (row-buffer locality), charges tRCD / tRP /
tRAS according to whether an access hits or misses the row buffer, and
exposes the triple-row-activation primitive that Ambit-style
processing-using-DRAM builds on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.common import SimulationError
from repro.dram.config import DRAMConfig


@dataclass
class BankStatistics:
    activations: int = 0
    row_hits: int = 0
    row_misses: int = 0
    precharges: int = 0
    bbop_activations: int = 0

    @property
    def row_hit_rate(self) -> float:
        accesses = self.row_hits + self.row_misses
        return self.row_hits / accesses if accesses else 0.0


class DRAMBank:
    """One DRAM bank with an open-row (row buffer) policy."""

    def __init__(self, index: int, config: DRAMConfig) -> None:
        self.index = index
        self.config = config
        self.open_row: Optional[int] = None
        self.busy_until = 0.0
        self.stats = BankStatistics()

    def _start(self, now: float) -> float:
        return max(now, self.busy_until)

    def access(self, now: float, row: int) -> float:
        """Access (read or write) a column of ``row``; returns finish time."""
        if row < 0 or row >= self.config.rows_per_bank:
            raise SimulationError(
                f"row {row} out of range for bank {self.index}")
        start = self._start(now)
        if self.open_row == row:
            self.stats.row_hits += 1
            latency = self.config.t_ccd_ns
        else:
            self.stats.row_misses += 1
            latency = 0.0
            if self.open_row is not None:
                latency += self.config.t_rp_ns
                self.stats.precharges += 1
            latency += self.config.t_rcd_ns + self.config.t_ccd_ns
            self.open_row = row
            self.stats.activations += 1
        self.busy_until = start + latency
        return self.busy_until

    def activate_row(self, now: float, row: int) -> float:
        """Explicit ACT of ``row`` (used by RowClone / Ambit sequences)."""
        start = self._start(now)
        latency = self.config.t_rcd_ns
        if self.open_row is not None and self.open_row != row:
            latency += self.config.t_rp_ns
            self.stats.precharges += 1
        self.open_row = row
        self.stats.activations += 1
        self.busy_until = start + latency
        return self.busy_until

    def precharge(self, now: float) -> float:
        start = self._start(now)
        if self.open_row is not None:
            self.stats.precharges += 1
            self.open_row = None
            self.busy_until = start + self.config.t_rp_ns
        else:
            self.busy_until = start
        return self.busy_until

    def bulk_bitwise_operation(self, now: float, steps: int = 1) -> float:
        """Perform ``steps`` Ambit/MIMDRAM bulk-bitwise row operations.

        Each step is a (multi-)row activation sequence of latency Tbbop
        operating on one full row in this bank.  The row buffer is left
        closed afterwards (the PuD sequence ends with a precharge).
        """
        if steps <= 0:
            raise SimulationError("bulk bitwise operation needs >= 1 step")
        start = self._start(now)
        latency = steps * self.config.bbop_latency_ns
        self.stats.bbop_activations += steps
        self.open_row = None
        self.busy_until = start + latency
        return self.busy_until
