"""SSD-internal DRAM device.

Combines the per-bank models with a shared data bus so that both regular
accesses (the FTL caching pages / metadata in DRAM) and bulk data movement
between flash and DRAM contend realistically for DRAM bandwidth.  This is
the substrate PuD-SSD (:mod:`repro.dram.pud`) computes on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.common import SimulationError
from repro.dram.bank import DRAMBank
from repro.dram.config import DRAMConfig
from repro.ssd.events import SharedBus


@dataclass
class DRAMAccessTiming:
    start_ns: float
    end_ns: float
    bank: int

    @property
    def latency_ns(self) -> float:
        return self.end_ns - self.start_ns


class DRAMDevice:
    """The SSD's LPDDR4 DRAM: banks plus a shared channel bus."""

    def __init__(self, config: DRAMConfig = None) -> None:
        self.config = config or DRAMConfig()
        self.banks: List[DRAMBank] = [DRAMBank(i, self.config)
                                      for i in range(self.config.banks)]
        self.bus = SharedBus("ssd-dram-bus",
                             self.config.bandwidth_bytes_per_ns)
        self.bytes_read = 0
        self.bytes_written = 0

    # -- Address helpers --------------------------------------------------------

    def bank_of(self, address: int) -> int:
        """Bank interleaving: consecutive rows map to consecutive banks."""
        row = address // self.config.row_size_bytes
        return row % self.config.banks

    def row_of(self, address: int) -> int:
        row = address // self.config.row_size_bytes
        return row // self.config.banks

    # -- Data accesses -----------------------------------------------------------

    def read(self, now: float, address: int, size_bytes: int
             ) -> DRAMAccessTiming:
        """Read ``size_bytes`` starting at ``address``; returns timing."""
        return self._access(now, address, size_bytes, is_write=False)

    def write(self, now: float, address: int, size_bytes: int
              ) -> DRAMAccessTiming:
        return self._access(now, address, size_bytes, is_write=True)

    def _access(self, now: float, address: int, size_bytes: int, *,
                is_write: bool) -> DRAMAccessTiming:
        if size_bytes <= 0:
            raise SimulationError("DRAM access size must be positive")
        if address < 0 or address + size_bytes > self.config.capacity_bytes:
            raise SimulationError("DRAM access out of range")
        bank_index = self.bank_of(address)
        bank = self.banks[bank_index]
        # Row activations for every touched row, then stream over the bus.
        first_row = self.row_of(address)
        last_row = self.row_of(address + size_bytes - 1)
        finish = now
        for row in range(first_row, last_row + 1):
            finish = bank.access(finish, row % self.config.rows_per_bank)
        transfer = self.bus.transfer(finish, size_bytes)
        if is_write:
            self.bytes_written += size_bytes
        else:
            self.bytes_read += size_bytes
        return DRAMAccessTiming(start_ns=now, end_ns=transfer.end,
                                bank=bank_index)

    # -- Estimation helpers ---------------------------------------------------------

    def uncontended_access_latency(self, size_bytes: int) -> float:
        return (self.config.random_access_latency_ns +
                self.bus.transfer_time(size_bytes))

    def transfer_time(self, size_bytes: int) -> float:
        return self.bus.transfer_time(size_bytes)

    def utilization(self, elapsed: float) -> float:
        return self.bus.utilization(elapsed)
