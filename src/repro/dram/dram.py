"""SSD-internal DRAM device.

Combines the per-bank models with a shared data bus so that both regular
accesses (the FTL caching pages / metadata in DRAM) and bulk data movement
between flash and DRAM contend realistically for DRAM bandwidth.  This is
the substrate PuD-SSD (:mod:`repro.dram.pud`) computes on.

Besides single accesses, the device exposes :meth:`DRAMDevice.access_run`
for the run-batched data-movement engine: one call streams a whole
contiguous page run -- per-page row activations on the interleaved banks
(bank state must stay exact) followed by a single batched reservation of
the shared data bus.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.common import SimulationError
from repro.dram.bank import DRAMBank
from repro.dram.config import DRAMConfig
from repro.ssd.events import SharedBus, chain_finish_times


@dataclass
class DRAMAccessTiming:
    start_ns: float
    end_ns: float
    bank: int

    @property
    def latency_ns(self) -> float:
        return self.end_ns - self.start_ns


class DRAMDevice:
    """The SSD's LPDDR4 DRAM: banks plus a shared channel bus."""

    def __init__(self, config: DRAMConfig = None) -> None:
        self.config = config or DRAMConfig()
        self.banks: List[DRAMBank] = [DRAMBank(i, self.config)
                                      for i in range(self.config.banks)]
        self.bus = SharedBus("ssd-dram-bus",
                             self.config.bandwidth_bytes_per_ns)
        self.bytes_read = 0
        self.bytes_written = 0

    # -- Address helpers --------------------------------------------------------

    def bank_of(self, address: int) -> int:
        """Bank interleaving: consecutive rows map to consecutive banks."""
        row = address // self.config.row_size_bytes
        return row % self.config.banks

    def row_of(self, address: int) -> int:
        row = address // self.config.row_size_bytes
        return row // self.config.banks

    # -- Data accesses -----------------------------------------------------------

    def read(self, now: float, address: int, size_bytes: int
             ) -> DRAMAccessTiming:
        """Read ``size_bytes`` starting at ``address``; returns timing."""
        return self._access(now, address, size_bytes, is_write=False)

    def write(self, now: float, address: int, size_bytes: int
              ) -> DRAMAccessTiming:
        return self._access(now, address, size_bytes, is_write=True)

    def _access(self, now: float, address: int, size_bytes: int, *,
                is_write: bool) -> DRAMAccessTiming:
        if size_bytes <= 0:
            raise SimulationError("DRAM access size must be positive")
        if address < 0 or address + size_bytes > self.config.capacity_bytes:
            raise SimulationError("DRAM access out of range")
        bank_index = self.bank_of(address)
        bank = self.banks[bank_index]
        # Row activations for every touched row, then stream over the bus.
        first_row = self.row_of(address)
        last_row = self.row_of(address + size_bytes - 1)
        finish = now
        for row in range(first_row, last_row + 1):
            finish = bank.access(finish, row % self.config.rows_per_bank)
        transfer = self.bus.transfer(finish, size_bytes)
        if is_write:
            self.bytes_written += size_bytes
        else:
            self.bytes_read += size_bytes
        return DRAMAccessTiming(start_ns=now, end_ns=transfer.end,
                                bank=bank_index)

    def access_run(self, arrivals: List[float], addresses: List[int],
                   size_bytes_each: int, *, is_write: bool) -> List[float]:
        """Access one equal-sized region per (arrival, address) pair.

        Equivalent to calling :meth:`read`/:meth:`write` once per pair in
        order: every touched row is still activated on its bank at the
        pair's own arrival time (row-buffer and bank-busy state stay
        exact), but the shared data bus is reserved once for the whole run
        via :meth:`repro.ssd.events.SharedBus.transfer_batch`.  Returns the
        per-access finish times.
        """
        if size_bytes_each <= 0:
            raise SimulationError("DRAM access size must be positive")
        capacity = self.config.capacity_bytes
        rows_per_bank = self.config.rows_per_bank
        bank_ready: List[float] = []
        for arrival, address in zip(arrivals, addresses):
            if address < 0 or address + size_bytes_each > capacity:
                raise SimulationError("DRAM access out of range")
            bank = self.banks[self.bank_of(address)]
            first_row = self.row_of(address)
            last_row = self.row_of(address + size_bytes_each - 1)
            finish = arrival
            for row in range(first_row, last_row + 1):
                finish = bank.access(finish, row % rows_per_bank)
            bank_ready.append(finish)
        ends = self.bus.transfer_batch(bank_ready, size_bytes_each)
        moved = size_bytes_each * len(ends)
        if is_write:
            self.bytes_written += moved
        else:
            self.bytes_read += moved
        return ends

    def access_run_array(self, arrivals: np.ndarray, addresses: np.ndarray,
                         size_bytes_each: int, *,
                         is_write: bool) -> np.ndarray:
        """Vectorized :meth:`access_run`: ndarray in, ndarray out.

        Bit-identical to the object path.  Accesses decompose by bank
        (each access touches exactly one bank, and banks are independent):
        per bank the row sequence -- and therefore the hit/miss latency of
        every row activation -- is fully determined by the addresses and
        the starting open row, so the whole bank timeline collapses into
        one :func:`chain_finish_times` chain over precomputed latencies.
        Rows after the first of an access chain off the previous row's
        finish; encoding their arrival as ``-inf`` makes the shared
        recurrence ``max(arrival, prev) + latency`` reproduce that exactly.
        """
        if size_bytes_each <= 0:
            raise SimulationError("DRAM access size must be positive")
        n = len(arrivals)
        if n == 0:
            return np.empty(0, dtype=np.float64)
        config = self.config
        if (addresses < 0).any() or (addresses + size_bytes_each
                                     > config.capacity_bytes).any():
            raise SimulationError("DRAM access out of range")
        banks = config.banks
        rows_per_bank = config.rows_per_bank
        global_row = addresses // config.row_size_bytes
        bank_index = global_row % banks
        first_row = global_row // banks
        last_row = (addresses + size_bytes_each - 1) // config.row_size_bytes \
            // banks
        row_counts = last_row - first_row + 1
        # Latency constants with the same float association as DRAMBank.access.
        t_ccd = config.t_ccd_ns
        hot_miss = (0.0 + config.t_rp_ns) + (config.t_rcd_ns + config.t_ccd_ns)
        cold_miss = 0.0 + (config.t_rcd_ns + config.t_ccd_ns)
        bank_ready = np.empty(n, dtype=np.float64)
        for b in np.unique(bank_index):
            positions = np.flatnonzero(bank_index == b)
            bank = self.banks[int(b)]
            counts = row_counts[positions]
            total = int(counts.sum())
            ends_at = np.cumsum(counts)
            starts_at = ends_at - counts
            # Ragged expansion: global row number of every activation.
            offsets = np.arange(total) - np.repeat(starts_at, counts)
            rows = (np.repeat(first_row[positions], counts)
                    + offsets) % rows_per_bank
            row_arrivals = np.full(total, -np.inf)
            row_arrivals[starts_at] = arrivals[positions]
            hits = np.empty(total, dtype=bool)
            hits[1:] = rows[1:] == rows[:-1]
            hits[0] = bank.open_row == int(rows[0])
            latencies = np.where(hits, t_ccd, hot_miss)
            if bank.open_row is None:
                latencies[0] = cold_miss
            finishes, busy_until = chain_finish_times(
                row_arrivals, latencies, bank.busy_until)
            bank_ready[positions] = finishes[ends_at - 1]
            hit_count = int(np.count_nonzero(hits))
            miss_count = total - hit_count
            stats = bank.stats
            stats.row_hits += hit_count
            stats.row_misses += miss_count
            stats.activations += miss_count
            # Every miss precharges except the very first activation of a
            # bank whose row buffer started closed.
            stats.precharges += miss_count - (
                1 if bank.open_row is None else 0)
            bank.open_row = int(rows[-1])
            bank.busy_until = busy_until
        ends = self.bus.transfer_batch_array(bank_ready, size_bytes_each)
        moved = size_bytes_each * n
        if is_write:
            self.bytes_written += moved
        else:
            self.bytes_read += moved
        return ends

    # -- Estimation helpers ---------------------------------------------------------

    def uncontended_access_latency(self, size_bytes: int) -> float:
        return (self.config.random_access_latency_ns +
                self.bus.transfer_time(size_bytes))

    def transfer_time(self, size_bytes: int) -> float:
        return self.bus.transfer_time(size_bytes)

    def utilization(self, elapsed: float) -> float:
        return self.bus.utilization(elapsed)
