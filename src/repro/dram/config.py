"""SSD-internal DRAM configuration.

Table 2: 2 GB LPDDR4-1866, 1 channel, 1 rank, 8 banks, with bulk-bitwise
operation latency Tbbop = 49 ns and energy Ebbop = 0.864 nJ (MIMDRAM-style
processing-using-DRAM).  Timing parameters follow JEDEC LPDDR4 values used
by Ramulator 2.0.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common import ConfigurationError, GIB, KIB


@dataclass(frozen=True)
class DRAMConfig:
    """LPDDR4 SSD-internal DRAM parameters."""

    capacity_bytes: int = 2 * GIB
    channels: int = 1
    ranks: int = 1
    banks: int = 8
    row_size_bytes: int = 8 * KIB          # one DRAM row (page)
    data_rate_mtps: float = 1866.0         # mega-transfers per second
    bus_width_bits: int = 32               # LPDDR4 x32 channel

    # Core timing parameters (ns), LPDDR4-1866 grade.
    t_rcd_ns: float = 18.0
    t_rp_ns: float = 18.0
    t_ras_ns: float = 42.0
    t_ccd_ns: float = 8.0
    t_rrd_ns: float = 10.0
    t_wr_ns: float = 18.0
    t_rfc_ns: float = 280.0
    refresh_interval_ns: float = 3_900.0

    # Processing-using-DRAM operation latency/energy (Table 2).
    bbop_latency_ns: float = 49.0
    bbop_energy_nj: float = 0.864

    #: MAJ/AND/OR-based bit-serial arithmetic cost factors (SIMDRAM-style):
    #: number of bulk-bitwise steps per operand bit.
    add_steps_per_bit: float = 5.0
    mul_steps_per_bit_squared: float = 2.0

    #: Fraction of DRAM rows usable for computation (MIMDRAM reserves some
    #: rows for compute scratch).
    compute_row_fraction: float = 0.9

    def __post_init__(self) -> None:
        if self.banks <= 0 or self.channels <= 0 or self.ranks <= 0:
            raise ConfigurationError("DRAM geometry values must be positive")
        if self.capacity_bytes <= 0:
            raise ConfigurationError("DRAM capacity must be positive")

    @property
    def bandwidth_bytes_per_ns(self) -> float:
        """Peak channel bandwidth in bytes per nanosecond."""
        return (self.data_rate_mtps * 1e6 * (self.bus_width_bits / 8)) / 1e9

    @property
    def rows_per_bank(self) -> int:
        per_bank_bytes = self.capacity_bytes // (self.channels * self.ranks
                                                 * self.banks)
        return per_bank_bytes // self.row_size_bytes

    @property
    def row_activation_latency_ns(self) -> float:
        """ACT + restore + PRE latency for one row cycle."""
        return self.t_rcd_ns + self.t_ras_ns + self.t_rp_ns

    @property
    def random_access_latency_ns(self) -> float:
        """Closed-page random access latency (ACT + CAS)."""
        return self.t_rcd_ns + self.t_ccd_ns
