"""SSD-internal DRAM substrate and processing-using-DRAM (PuD-SSD)."""

from repro.dram.bank import BankStatistics, DRAMBank
from repro.dram.config import DRAMConfig
from repro.dram.cxl import CXLPuDBackend, CXLPuDConfig
from repro.dram.dram import DRAMAccessTiming, DRAMDevice
from repro.dram.pud import (PUD_SUPPORTED_OPS, PuDBackend,
                            PuDOperationTiming, PuDUnit)

__all__ = [
    "BankStatistics", "DRAMBank", "DRAMConfig", "CXLPuDBackend",
    "CXLPuDConfig", "DRAMAccessTiming", "DRAMDevice", "PUD_SUPPORTED_OPS",
    "PuDBackend", "PuDOperationTiming", "PuDUnit",
]
