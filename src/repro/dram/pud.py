"""Processing-using-DRAM in the SSD (PuD-SSD).

Models the compute capability that SIMDRAM / MIMDRAM / Proteus provide on
top of the Ambit substrate (Section 2.2): bulk bitwise operations via
(triple-)row activation, RowClone bulk copy, and bit-serial arithmetic built
from majority/AND/OR/NOT steps.

The paper states PuD-SSD supports 16 operations including arithmetic,
predication and relational operations (Section 4.3.2, "Operation Type").
Operands must reside in SSD DRAM; moving them there from flash is the
responsibility of the platform's data-movement engine, not of this model.

Latency model
-------------
* A bulk bitwise operation on one row pair costs ``Tbbop`` (49 ns).
* An n-bit addition costs ``add_steps_per_bit * n`` bbop steps
  (bit-serial carry propagation, SIMDRAM-style).
* An n-bit multiplication costs ``mul_steps_per_bit_squared * n^2`` steps
  (shift-and-add over bit-serial adders).
* Rows in different banks operate concurrently, so a vector spanning
  multiple rows is spread over the banks.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, FrozenSet, Optional

from repro.common import DataLocation, OpType, ResourceLike, SimulationError
from repro.core.backends import ComputeBackend
from repro.dram.config import DRAMConfig
from repro.dram.dram import DRAMDevice


#: Operations PuD-SSD supports natively (16 operations; SIMDRAM/MIMDRAM/
#: Proteus ISA extensions such as ``bbop_op``).
PUD_SUPPORTED_OPS: FrozenSet[OpType] = frozenset({
    OpType.AND, OpType.OR, OpType.XOR, OpType.NOT, OpType.NAND, OpType.NOR,
    OpType.MAJ, OpType.SHL, OpType.SHR,
    OpType.ADD, OpType.SUB, OpType.MUL, OpType.MAC,
    OpType.CMP_EQ, OpType.CMP_LT, OpType.CMP_GT, OpType.SELECT,
    OpType.COPY, OpType.REDUCE_ADD,
})


@dataclass
class PuDOperationTiming:
    """Timing of one PuD operation."""

    start_ns: float
    end_ns: float
    rows: int
    steps_per_row: int

    @property
    def latency_ns(self) -> float:
        return self.end_ns - self.start_ns


class PuDUnit:
    """Processing-using-DRAM execution model over a :class:`DRAMDevice`."""

    #: bbop steps per element bit, keyed by operation.
    _STEP_MODEL: Dict[OpType, str] = {}

    def __init__(self, dram: DRAMDevice) -> None:
        self.dram = dram
        self.config: DRAMConfig = dram.config
        self.operations = 0
        self.total_busy_ns = 0.0
        self.energy_nj = 0.0
        # Memoized estimate points (pure in their arguments + immutable
        # config): the precomputed latency/energy tables of Section 4.5.
        self._steps_table: dict = {}
        self._latency_table: dict = {}
        self._energy_table: dict = {}

    # -- Capability and latency estimation ---------------------------------------

    @staticmethod
    def supports(op: OpType) -> bool:
        return op in PUD_SUPPORTED_OPS

    @property
    def row_bytes(self) -> int:
        """Maximum data one bbop step covers (one DRAM row)."""
        return self.config.row_size_bytes

    def steps_for(self, op: OpType, element_bits: int) -> int:
        """Number of bbop row-activation steps one row-worth of data needs."""
        cached = self._steps_table.get((op, element_bits))
        if cached is not None:
            return cached
        steps = self._steps_for(op, element_bits)
        self._steps_table[(op, element_bits)] = steps
        return steps

    def _steps_for(self, op: OpType, element_bits: int) -> int:
        if not self.supports(op):
            raise SimulationError(f"PuD-SSD does not support {op.value}")
        if op in (OpType.COPY,):
            return 1  # RowClone: two back-to-back activations, ~1 step
        if op.is_bitwise:
            # AND/OR/NOT/XOR/MAJ map to 1-3 triple-row activations.
            return 3 if op in (OpType.XOR, OpType.NAND, OpType.NOR) else 1
        if op in (OpType.ADD, OpType.SUB, OpType.CMP_EQ, OpType.CMP_LT,
                  OpType.CMP_GT, OpType.SELECT, OpType.REDUCE_ADD):
            return max(1, int(math.ceil(
                self.config.add_steps_per_bit * element_bits)))
        if op in (OpType.MUL, OpType.MAC):
            return max(1, int(math.ceil(
                self.config.mul_steps_per_bit_squared * element_bits ** 2)))
        if op in (OpType.SHL, OpType.SHR):
            return max(1, element_bits // 2)
        raise SimulationError(f"no PuD step model for {op.value}")

    def operation_latency(self, op: OpType, size_bytes: int,
                          element_bits: int) -> float:
        """Uncontended latency of an operation over ``size_bytes`` of data.

        Rows are spread across the available banks, which operate in
        parallel; rows beyond the bank count serialize.
        """
        key = (op, size_bytes, element_bits)
        cached = self._latency_table.get(key)
        if cached is not None:
            return cached
        rows = max(1, math.ceil(size_bytes / self.row_bytes))
        steps = self.steps_for(op, element_bits)
        waves = math.ceil(rows / self.config.banks)
        latency = waves * steps * self.config.bbop_latency_ns
        self._latency_table[key] = latency
        return latency

    def operation_energy(self, op: OpType, size_bytes: int,
                         element_bits: int) -> float:
        key = (op, size_bytes, element_bits)
        cached = self._energy_table.get(key)
        if cached is not None:
            return cached
        rows = max(1, math.ceil(size_bytes / self.row_bytes))
        steps = self.steps_for(op, element_bits)
        energy = rows * steps * self.config.bbop_energy_nj
        self._energy_table[key] = energy
        return energy

    # -- Execution (reserves banks) ----------------------------------------------

    def execute(self, now: float, op: OpType, size_bytes: int,
                element_bits: int) -> PuDOperationTiming:
        """Execute an operation, reserving DRAM banks for its duration."""
        if size_bytes <= 0:
            raise SimulationError("PuD operation size must be positive")
        rows = max(1, math.ceil(size_bytes / self.row_bytes))
        steps = self.steps_for(op, element_bits)
        finish = now
        for row_index in range(rows):
            bank = self.dram.banks[row_index % self.config.banks]
            done = bank.bulk_bitwise_operation(now, steps)
            finish = max(finish, done)
        self.operations += 1
        self.total_busy_ns += finish - now
        self.energy_nj += self.operation_energy(op, size_bytes, element_bits)
        return PuDOperationTiming(start_ns=now, end_ns=finish, rows=rows,
                                  steps_per_row=steps)


class PuDBackend(ComputeBackend):
    """Compute backend adapting :class:`PuDUnit` over the SSD DRAM.

    Queue parallelism follows the bank count (rows in different banks
    operate concurrently); the utilization snapshot is the DRAM data bus,
    which PuD operations share with the data-movement engine.
    """

    def __init__(self, resource: ResourceLike, unit: PuDUnit) -> None:
        super().__init__(resource, DataLocation.SSD_DRAM,
                         unit.config.banks)
        self.unit = unit

    @property
    def native_chunk_bytes(self) -> Optional[int]:
        return self.unit.row_bytes

    def supports(self, op: OpType) -> bool:
        return self.unit.supports(op)

    def operation_latency(self, op: OpType, size_bytes: int,
                          element_bits: int) -> float:
        return self.unit.operation_latency(op, size_bytes, element_bits)

    def operation_energy(self, op: OpType, size_bytes: int,
                         element_bits: int) -> float:
        return self.unit.operation_energy(op, size_bytes, element_bits)

    def execute(self, now: float, op: OpType, size_bytes: int,
                element_bits: int) -> PuDOperationTiming:
        return self.unit.execute(now, op, size_bytes, element_bits)

    def utilization(self, elapsed: float) -> float:
        return self.unit.dram.utilization(elapsed)
