"""CXL-attached processing-using-DRAM tier (opt-in compute backend).

A CXL memory expander with an Ambit/SIMDRAM-style compute capability sits
*outside* the SSD, on the host-side CXL link: its operands are
host-addressable (home location = host memory, reached over the platform's
host link), while its bulk-bitwise compute point is its own -- a wider bank
pool and device-grade LPDDR timing, with every native operation paying a
CXL command round-trip on top.

The tier exists to prove the backend registry: enabling it is a single
:class:`~repro.core.platform.PlatformConfig` entry
(``cxl_pud=CXLPuDConfig()``), after which the cost function weighs it
against the in-SSD resources -- cheap for compute-heavy operations on
host-resident data, expensive for flash-resident streaming -- without any
edits to the offloader, cost model or feature collector.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.common import DataLocation, GIB, OpType, ResourceLike
from repro.core.backends import ComputeBackend
from repro.dram.config import DRAMConfig
from repro.dram.dram import DRAMDevice
from repro.dram.pud import PuDOperationTiming, PuDUnit
from repro.ssd.events import SharedBus


def _default_cxl_dram() -> DRAMConfig:
    """A CXL expander's DRAM point: more banks, slightly slower rows.

    CXL memory devices carry more parallel banks than the SSD's LPDDR4
    channel but add protocol/controller latency to every row operation;
    the bbop latency/energy values below are that trade-off.
    """
    return DRAMConfig(capacity_bytes=4 * GIB, banks=16,
                      bbop_latency_ns=60.0, bbop_energy_nj=1.05)


@dataclass(frozen=True)
class CXLPuDConfig:
    """Configuration of the opt-in CXL-attached PuD tier."""

    dram: DRAMConfig = field(default_factory=_default_cxl_dram)
    #: CXL command + completion round-trip charged once per operation.
    link_latency_ns: float = 600.0
    #: Link energy of that round-trip (nJ per operation).
    link_energy_nj: float = 40.0
    #: Bandwidth of the CXL link's command/completion path (bytes/ns).
    link_bandwidth_bytes_per_ns: float = 16.0
    #: Command + completion flit bytes serialized on the link per native
    #: operation (the payload stays in the expander; only descriptors
    #: cross the link).
    command_bytes: int = 64


class CXLPuDBackend(ComputeBackend):
    """PuD compute on a CXL memory expander.

    Wraps its own :class:`DRAMDevice`/:class:`PuDUnit` pair (bank
    reservations and utilization are private to the tier) and charges the
    CXL link round-trip on every operation.
    """

    def __init__(self, resource: ResourceLike, config: CXLPuDConfig) -> None:
        self.config = config
        self.dram = DRAMDevice(config.dram)
        self.unit = PuDUnit(self.dram)
        #: The CXL command/completion link.  Operation descriptors are
        #: serialized on it, so a tier absorbing a burst of work shows a
        #: real backlog here -- the signal the contention-aware cost model
        #: samples via :meth:`link_backlog_ns`.
        self.link = SharedBus(f"{resource.value}-link",
                              config.link_bandwidth_bytes_per_ns)
        super().__init__(resource, DataLocation.HOST, config.dram.banks)

    @property
    def native_chunk_bytes(self) -> Optional[int]:
        return self.unit.row_bytes

    def supports(self, op: OpType) -> bool:
        return self.unit.supports(op)

    def operation_latency(self, op: OpType, size_bytes: int,
                          element_bits: int) -> float:
        return (self.config.link_latency_ns +
                self.unit.operation_latency(op, size_bytes, element_bits))

    def operation_energy(self, op: OpType, size_bytes: int,
                         element_bits: int) -> float:
        return (self.config.link_energy_nj +
                self.unit.operation_energy(op, size_bytes, element_bits))

    def execute(self, now: float, op: OpType, size_bytes: int,
                element_bits: int) -> PuDOperationTiming:
        # The operation descriptor serializes on the shared CXL link, then
        # pays the command round-trip before the in-expander compute runs.
        command = self.link.transfer(now, self.config.command_bytes)
        inner = self.unit.execute(command.end + self.config.link_latency_ns,
                                  op, size_bytes, element_bits)
        # Report the link round-trip as part of the operation's latency.
        return PuDOperationTiming(start_ns=now, end_ns=inner.end_ns,
                                  rows=inner.rows,
                                  steps_per_row=inner.steps_per_row)

    def utilization(self, elapsed: float) -> float:
        # The execution-queue occupancy, not the tier's private DRAM bus
        # (which bulk-bitwise compute never touches) nor the command link
        # (whose 64-byte descriptors are busy for nanoseconds per op):
        # the queue's servers are reserved for every operation's full
        # duration, so this is the one snapshot that actually rises with
        # load on the tier.
        return self.queue.utilization(elapsed)

    def link_backlog_ns(self, now: float) -> float:
        """Queueing delay on the tier's private CXL command link."""
        return self.link.queueing_delay(now)
