"""Host GPU compute model (outside-storage processing baseline).

Analytical model of an NVIDIA A100 executing the vectorized instruction
stream.  The GPU has enormous SIMD throughput and HBM bandwidth, so for the
data-parallel polybench kernels it approaches (and sometimes beats)
DM-Offloading in the paper's motivation study (Fig. 5); its weakness is that
every operand must cross PCIe from the SSD and its power draw is high
(Fig. 7b), both of which the experiment harness charges separately.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.common import DataLocation, OpType, ResourceLike, SimulationError
from repro.core.backends import ComputeBackend
from repro.host.config import HostGPUConfig

_GPU_CYCLES: dict = {
    OpType.MUL: 1.0, OpType.MAC: 1.0, OpType.DIV: 8.0,
    OpType.GATHER: 4.0, OpType.SCATTER: 4.0,
    OpType.REDUCE_ADD: 2.0, OpType.REDUCE_MAX: 2.0, OpType.REDUCE_MIN: 2.0,
    OpType.SHUFFLE: 1.0, OpType.CALL: 4.0, OpType.BRANCH: 2.0,
    OpType.SCALAR: 4.0,
}


@dataclass
class GPUOperationTiming:
    start_ns: float
    end_ns: float
    compute_ns: float
    memory_ns: float

    @property
    def latency_ns(self) -> float:
        return self.end_ns - self.start_ns


class HostGPU:
    """Analytical host GPU model."""

    def __init__(self, config: HostGPUConfig = None) -> None:
        self.config = config or HostGPUConfig()
        self.operations = 0
        self.total_busy_ns = 0.0
        self.energy_nj = 0.0
        #: Kernel launch overhead is charged once per batch of back-to-back
        #: instructions, approximated as once every ``launch_batch`` ops.
        self.launch_batch = 256
        self._ops_since_launch = 0
        # Memoized estimate points (pure in their arguments + immutable
        # config); the launch-overhead state above only affects execute().
        self._latency_table: dict = {}
        self._energy_table: dict = {}

    @staticmethod
    def supports(op: OpType) -> bool:
        return True

    def _cycles(self, op: OpType) -> float:
        return _GPU_CYCLES.get(op, 1.0)

    def operation_latency(self, op: OpType, size_bytes: int,
                          element_bits: int) -> float:
        key = (op, size_bytes, element_bits)
        cached = self._latency_table.get(key)
        if cached is not None:
            return cached
        if size_bytes <= 0:
            raise SimulationError("GPU operation size must be positive")
        element_bytes = max(1, element_bits // 8)
        elements = size_bytes // element_bytes
        if op in (OpType.SCALAR, OpType.BRANCH, OpType.CALL):
            # Control-intensive code does not spread across SIMT lanes; it
            # effectively runs serially on a single SM at GPU clock rate.
            latency = elements * self._cycles(op) * self.config.cycle_ns
        else:
            waves = math.ceil(elements / self.config.total_lanes)
            compute_ns = waves * self._cycles(op) * self.config.cycle_ns
            memory_bytes = 3 * size_bytes
            memory_ns = memory_bytes / self.config.hbm_bandwidth_gbps
            latency = max(compute_ns, memory_ns)
        self._latency_table[key] = latency
        return latency

    def operation_energy(self, op: OpType, size_bytes: int,
                         element_bits: int) -> float:
        key = (op, size_bytes, element_bits)
        cached = self._energy_table.get(key)
        if cached is not None:
            return cached
        latency_ns = self.operation_latency(op, size_bytes, element_bits)
        energy = latency_ns * self.config.active_power_w
        self._energy_table[key] = energy
        return energy

    def execute(self, now: float, op: OpType, size_bytes: int,
                element_bits: int) -> GPUOperationTiming:
        latency = self.operation_latency(op, size_bytes, element_bits)
        launch = 0.0
        if self._ops_since_launch % self.launch_batch == 0:
            launch = self.config.kernel_launch_overhead_ns
        self._ops_since_launch += 1
        element_bytes = max(1, element_bits // 8)
        elements = size_bytes // element_bytes
        waves = math.ceil(elements / self.config.total_lanes)
        compute_ns = waves * self._cycles(op) * self.config.cycle_ns
        memory_ns = 3 * size_bytes / self.config.hbm_bandwidth_gbps
        self.operations += 1
        self.total_busy_ns += latency + launch
        self.energy_nj += self.operation_energy(op, size_bytes, element_bits)
        return GPUOperationTiming(start_ns=now, end_ns=now + latency + launch,
                                  compute_ns=compute_ns, memory_ns=memory_ns)


class HostGPUBackend(ComputeBackend):
    """Compute backend adapting :class:`HostGPU` (OSP baseline engine).

    Like the host CPU, the GPU is modelled through the backend protocol but
    excluded from the SSD offloader's candidate set; operands reach it over
    PCIe, which is also its utilization snapshot.
    """

    offloadable = False

    def __init__(self, resource: ResourceLike, unit: HostGPU,
                 pcie) -> None:
        super().__init__(resource, DataLocation.HOST)
        self.unit = unit
        self.pcie = pcie

    def supports(self, op: OpType) -> bool:
        return self.unit.supports(op)

    def operation_latency(self, op: OpType, size_bytes: int,
                          element_bits: int) -> float:
        return self.unit.operation_latency(op, size_bytes, element_bits)

    def operation_energy(self, op: OpType, size_bytes: int,
                         element_bits: int) -> float:
        return self.unit.operation_energy(op, size_bytes, element_bits)

    def execute(self, now: float, op: OpType, size_bytes: int,
                element_bits: int) -> GPUOperationTiming:
        return self.unit.execute(now, op, size_bytes, element_bits)

    def utilization(self, elapsed: float) -> float:
        return self.pcie.utilization(elapsed)
