"""Host substrate: analytical CPU/GPU models for OSP baselines."""

from repro.host.config import HostCPUConfig, HostGPUConfig, HostMemoryConfig
from repro.host.cpu import HostCPU, HostOperationTiming
from repro.host.gpu import GPUOperationTiming, HostGPU

__all__ = [
    "HostCPUConfig", "HostGPUConfig", "HostMemoryConfig", "HostCPU",
    "HostOperationTiming", "GPUOperationTiming", "HostGPU",
]
