"""Host substrate: analytical CPU/GPU models for OSP baselines."""

from repro.host.config import HostCPUConfig, HostGPUConfig, HostMemoryConfig
from repro.host.cpu import HostCPU, HostCPUBackend, HostOperationTiming
from repro.host.gpu import GPUOperationTiming, HostGPU, HostGPUBackend

__all__ = [
    "HostCPUConfig", "HostGPUConfig", "HostMemoryConfig", "HostCPU",
    "HostCPUBackend", "HostOperationTiming", "GPUOperationTiming",
    "HostGPU", "HostGPUBackend",
]
