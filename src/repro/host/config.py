"""Host system configuration (Table 2).

The paper runs the host CPU and GPU baselines on real hardware (Intel Xeon
Gold 5118 and NVIDIA A100) and combines them with simulated SSD-to-host data
transfers.  We substitute analytical roofline-style models of those parts
(see DESIGN.md): per-operation compute throughput bounded by main-memory /
HBM bandwidth, with operands streamed from the SSD over PCIe 4.0.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common import ConfigurationError


@dataclass(frozen=True)
class HostCPUConfig:
    """Intel Xeon Gold 5118-class host CPU."""

    cores: int = 6
    clock_ghz: float = 3.2
    simd_width_bytes: int = 64          # AVX-512
    l3_cache_bytes: int = 8 * 1024 * 1024
    memory_bandwidth_gbps: float = 19.2     # DDR4-2400, 4 channels
    memory_latency_ns: float = 90.0
    active_power_w: float = 105.0
    idle_power_w: float = 25.0

    def __post_init__(self) -> None:
        if self.cores <= 0 or self.clock_ghz <= 0:
            raise ConfigurationError("host CPU core count/clock must be positive")

    @property
    def cycle_ns(self) -> float:
        return 1.0 / self.clock_ghz


@dataclass(frozen=True)
class HostGPUConfig:
    """NVIDIA A100-class host GPU."""

    streaming_multiprocessors: int = 108
    clock_ghz: float = 1.4
    lanes_per_sm: int = 64               # INT32 lanes per SM
    hbm_bandwidth_gbps: float = 1555.0
    hbm_capacity_bytes: int = 40 * 1024 * 1024 * 1024
    l2_cache_bytes: int = 40 * 1024 * 1024
    kernel_launch_overhead_ns: float = 8_000.0
    active_power_w: float = 300.0
    idle_power_w: float = 60.0

    @property
    def cycle_ns(self) -> float:
        return 1.0 / self.clock_ghz

    @property
    def total_lanes(self) -> int:
        return self.streaming_multiprocessors * self.lanes_per_sm


@dataclass(frozen=True)
class HostMemoryConfig:
    """Host main memory (32 GB DDR4-2400, 4 channels)."""

    capacity_bytes: int = 32 * 1024 * 1024 * 1024
    channels: int = 4
    bandwidth_gbps: float = 19.2
    access_latency_ns: float = 90.0
    energy_nj_per_kb: float = 260.0
