"""Host CPU compute model (outside-storage processing baseline).

Roofline-style analytical model of a Xeon Gold 5118-class CPU executing the
vectorized instruction stream after the operands have been brought to host
memory over PCIe.  Per-instruction latency is the maximum of the compute
time (SIMD throughput across all cores) and the memory-streaming time
(operands + result over the DDR4 bus), which reproduces the behaviour the
paper relies on: the host is fast for compute but bottlenecked by moving
SSD-resident data (Fig. 4, OSP bars).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.common import DataLocation, OpType, ResourceLike, SimulationError
from repro.core.backends import ComputeBackend
from repro.host.config import HostCPUConfig

#: Per-SIMD-operation cycle costs on the host CPU (throughput cycles for one
#: full-width SIMD operation).
_CPU_CYCLES: dict = {
    OpType.MUL: 2.0, OpType.MAC: 2.0, OpType.DIV: 14.0,
    OpType.GATHER: 6.0, OpType.SCATTER: 6.0,
    OpType.REDUCE_ADD: 3.0, OpType.REDUCE_MAX: 3.0, OpType.REDUCE_MIN: 3.0,
    OpType.SHUFFLE: 1.5, OpType.CALL: 6.0, OpType.BRANCH: 1.5,
}


@dataclass
class HostOperationTiming:
    start_ns: float
    end_ns: float
    compute_ns: float
    memory_ns: float

    @property
    def latency_ns(self) -> float:
        return self.end_ns - self.start_ns


class HostCPU:
    """Analytical host CPU model."""

    def __init__(self, config: HostCPUConfig = None) -> None:
        self.config = config or HostCPUConfig()
        self.operations = 0
        self.total_busy_ns = 0.0
        self.energy_nj = 0.0
        # Memoized estimate points (pure in their arguments + immutable
        # config), mirroring the SSD backends' precomputed tables.
        self._latency_table: dict = {}
        self._energy_table: dict = {}

    @staticmethod
    def supports(op: OpType) -> bool:
        return True

    def _cycles_per_simd_op(self, op: OpType) -> float:
        return _CPU_CYCLES.get(op, 1.0)

    def operation_latency(self, op: OpType, size_bytes: int,
                          element_bits: int) -> float:
        key = (op, size_bytes, element_bits)
        cached = self._latency_table.get(key)
        if cached is not None:
            return cached
        if size_bytes <= 0:
            raise SimulationError("host CPU operation size must be positive")
        simd_ops = math.ceil(size_bytes / self.config.simd_width_bytes)
        compute_ns = (simd_ops * self._cycles_per_simd_op(op) *
                      self.config.cycle_ns / self.config.cores)
        # Two source streams plus one destination stream through DRAM.
        memory_bytes = 3 * size_bytes
        memory_ns = (self.config.memory_latency_ns +
                     memory_bytes / self.config.memory_bandwidth_gbps)
        latency = max(compute_ns, memory_ns)
        self._latency_table[key] = latency
        return latency

    def operation_energy(self, op: OpType, size_bytes: int,
                         element_bits: int) -> float:
        key = (op, size_bytes, element_bits)
        cached = self._energy_table.get(key)
        if cached is not None:
            return cached
        latency_ns = self.operation_latency(op, size_bytes, element_bits)
        energy = latency_ns * self.config.active_power_w  # ns * W = nJ
        self._energy_table[key] = energy
        return energy

    def execute(self, now: float, op: OpType, size_bytes: int,
                element_bits: int) -> HostOperationTiming:
        simd_ops = math.ceil(size_bytes / self.config.simd_width_bytes)
        compute_ns = (simd_ops * self._cycles_per_simd_op(op) *
                      self.config.cycle_ns / self.config.cores)
        memory_bytes = 3 * size_bytes
        memory_ns = (self.config.memory_latency_ns +
                     memory_bytes / self.config.memory_bandwidth_gbps)
        latency = max(compute_ns, memory_ns)
        self.operations += 1
        self.total_busy_ns += latency
        self.energy_nj += self.operation_energy(op, size_bytes, element_bits)
        return HostOperationTiming(start_ns=now, end_ns=now + latency,
                                   compute_ns=compute_ns,
                                   memory_ns=memory_ns)


class HostCPUBackend(ComputeBackend):
    """Compute backend adapting :class:`HostCPU` (OSP baseline engine).

    Host engines are not offload candidates -- the SSD offloader never
    targets them -- but exposing them through the same protocol lets the
    host runtime, energy accounting and contract tests treat every engine
    uniformly.  The utilization snapshot is the PCIe link all host-bound
    operands cross.
    """

    offloadable = False

    def __init__(self, resource: ResourceLike, unit: HostCPU,
                 pcie) -> None:
        super().__init__(resource, DataLocation.HOST, unit.config.cores)
        self.unit = unit
        self.pcie = pcie

    def supports(self, op: OpType) -> bool:
        return self.unit.supports(op)

    def operation_latency(self, op: OpType, size_bytes: int,
                          element_bits: int) -> float:
        return self.unit.operation_latency(op, size_bytes, element_bits)

    def operation_energy(self, op: OpType, size_bytes: int,
                         element_bits: int) -> float:
        return self.unit.operation_energy(op, size_bytes, element_bits)

    def execute(self, now: float, op: OpType, size_bytes: int,
                element_bits: int) -> HostOperationTiming:
        return self.unit.execute(now, op, size_bytes, element_bits)

    def utilization(self, elapsed: float) -> float:
        return self.pcie.utilization(elapsed)
