"""Common types shared across all Conduit subsystems.

This module is intentionally dependency-free: every other package in
``repro`` (the SSD substrate, the DRAM / ISP / IFP compute models, the
compiler, and the runtime offloader) imports its enumerations and unit
constants from here, which keeps the dependency graph acyclic.

The vocabulary follows the paper:

* :class:`OpType` -- the operation types the compile-time vectorizer emits
  and the runtime offloader reasons about (Section 4.3).
* :class:`OpClass` / :class:`LatencyClass` -- the operation categories used
  by the workload characterization (Table 3) and the cost function.
* :class:`Resource` -- the computation resources an instruction can be
  offloaded to (Section 2.2): ISP, PuD-SSD, IFP, plus the host CPU/GPU used
  for the outside-storage-processing baselines.
* :class:`DataLocation` -- where an operand currently resides (Section 4.4).
"""

from __future__ import annotations

import dataclasses
import enum
import typing

# --------------------------------------------------------------------------
# Unit constants.  All simulator latencies are expressed in nanoseconds and
# all sizes in bytes unless a name says otherwise.
# --------------------------------------------------------------------------

NS = 1.0
US = 1_000.0
MS = 1_000_000.0
SEC = 1_000_000_000.0

KIB = 1024
MIB = 1024 * KIB
GIB = 1024 * MIB

#: Energy values are expressed in nanojoules.
NJ = 1.0
UJ = 1_000.0
MJ = 1_000_000.0


class OpType(enum.Enum):
    """Vector operation types produced by Conduit's vectorizer.

    The names mirror the LLVM-IR-level operations the paper's compiler pass
    emits (Fig. 6 shows ``xor``/``and`` on ``<4096 x i32>`` vectors) plus the
    arithmetic, predication and data-movement operations required by the six
    evaluated workloads.
    """

    # Bulk-bitwise operations (supported by all three resources).
    AND = "and"
    OR = "or"
    XOR = "xor"
    NOT = "not"
    NAND = "nand"
    NOR = "nor"
    MAJ = "maj"

    # Shifts / rotates.
    SHL = "shl"
    SHR = "shr"

    # Arithmetic.
    ADD = "add"
    SUB = "sub"
    MUL = "mul"
    DIV = "div"
    MAC = "mac"

    # Reductions.
    REDUCE_ADD = "reduce_add"
    REDUCE_MAX = "reduce_max"
    REDUCE_MIN = "reduce_min"

    # Predication / relational.
    CMP_EQ = "cmp_eq"
    CMP_LT = "cmp_lt"
    CMP_GT = "cmp_gt"
    SELECT = "select"

    # Data movement / layout.
    COPY = "copy"
    SHUFFLE = "shuffle"
    GATHER = "gather"
    SCATTER = "scatter"
    LOAD = "load"
    STORE = "store"

    # Scalar / control-intensive work that could not be vectorized.  These
    # always execute on the SSD controller cores (or the host for OSP).
    SCALAR = "scalar"
    BRANCH = "branch"
    CALL = "call"

    # Members are singletons, so the identity hash is consistent with
    # equality and avoids re-hashing the member name on every dict/set
    # probe (these enums key the simulator's hottest tables).
    __hash__ = object.__hash__

    @property
    def is_bitwise(self) -> bool:
        return self in _BITWISE_OPS

    @property
    def is_arithmetic(self) -> bool:
        return self in _ARITHMETIC_OPS

    @property
    def is_predication(self) -> bool:
        return self in _PREDICATION_OPS

    @property
    def is_memory(self) -> bool:
        return self in _MEMORY_OPS

    @property
    def is_control(self) -> bool:
        return self in _CONTROL_OPS


_BITWISE_OPS = frozenset(
    {OpType.AND, OpType.OR, OpType.XOR, OpType.NOT, OpType.NAND, OpType.NOR,
     OpType.MAJ, OpType.SHL, OpType.SHR}
)
_ARITHMETIC_OPS = frozenset(
    {OpType.ADD, OpType.SUB, OpType.MUL, OpType.DIV, OpType.MAC,
     OpType.REDUCE_ADD, OpType.REDUCE_MAX, OpType.REDUCE_MIN}
)
_PREDICATION_OPS = frozenset(
    {OpType.CMP_EQ, OpType.CMP_LT, OpType.CMP_GT, OpType.SELECT}
)
_MEMORY_OPS = frozenset(
    {OpType.COPY, OpType.SHUFFLE, OpType.GATHER, OpType.SCATTER,
     OpType.LOAD, OpType.STORE}
)
_CONTROL_OPS = frozenset({OpType.SCALAR, OpType.BRANCH, OpType.CALL})


class OpClass(enum.Enum):
    """Coarse operation category used by the cost function (Table 1)."""

    BITWISE = "bulk-bitwise"
    ARITHMETIC = "arithmetic"
    PREDICATION = "predication"
    MEMORY = "memory"
    CONTROL = "control"

    @classmethod
    def of(cls, op: OpType) -> "OpClass":
        if op.is_bitwise:
            return cls.BITWISE
        if op.is_arithmetic:
            return cls.ARITHMETIC
        if op.is_predication:
            return cls.PREDICATION
        if op.is_memory:
            return cls.MEMORY
        return cls.CONTROL


class LatencyClass(enum.Enum):
    """Low / medium / high latency buckets used by Table 3.

    The paper classifies bitwise and logical operations as low latency,
    additions and predication as medium latency, and multiplications (and
    other multi-cycle arithmetic) as high latency.
    """

    LOW = "low"
    MEDIUM = "medium"
    HIGH = "high"

    @classmethod
    def of(cls, op: OpType) -> "LatencyClass":
        if op in _HIGH_LATENCY_OPS:
            return cls.HIGH
        if op in _MEDIUM_LATENCY_OPS:
            return cls.MEDIUM
        return cls.LOW


_HIGH_LATENCY_OPS = frozenset(
    {OpType.MUL, OpType.DIV, OpType.MAC, OpType.GATHER, OpType.SCATTER}
)
_MEDIUM_LATENCY_OPS = frozenset(
    {OpType.ADD, OpType.SUB, OpType.REDUCE_ADD, OpType.REDUCE_MAX,
     OpType.REDUCE_MIN, OpType.CMP_EQ, OpType.CMP_LT, OpType.CMP_GT,
     OpType.SELECT, OpType.SHUFFLE, OpType.SCALAR, OpType.BRANCH,
     OpType.CALL}
)


class Resource(enum.Enum):
    """Canonical computation-resource families.

    Every compute backend belongs to one of these families (its ``kind``):
    the family determines the native ISA a backend speaks, the policies that
    single it out (e.g. the PuD-SSD-only baseline), and the Fig. 9 grouping.
    The *identity* of a backend is either a member of this enum (the default
    one-backend-per-family roster) or a :class:`BackendId` for dynamically
    registered backends such as per-core ISP queues or a CXL-attached PuD
    tier.
    """

    ISP = "isp"
    PUD = "pud-ssd"
    IFP = "ifp"
    HOST_CPU = "host-cpu"
    HOST_GPU = "host-gpu"

    __hash__ = object.__hash__

    @property
    def is_in_ssd(self) -> bool:
        return self in (Resource.ISP, Resource.PUD, Resource.IFP)

    @property
    def kind(self) -> "Resource":
        """The resource family (a canonical enum member is its own kind)."""
        return self


@dataclasses.dataclass(frozen=True)
class BackendId:
    """Identity of a dynamically registered compute backend.

    Quacks like a :class:`Resource` member where the metrics and energy
    layers need it (``value`` for report keys, ``kind`` / ``is_in_ssd`` for
    grouping), so a registry-grown platform flows through the offload stack
    without any enum surgery.
    """

    value: str
    kind: Resource

    @property
    def is_in_ssd(self) -> bool:
        """Whether the backend counts toward the SSD offloader's mix.

        Follows the resource family: a backend of an offloadable family
        (e.g. the CXL-attached PuD tier, physically host-side) is part of
        the offloader's decision distribution even though its operands
        live in host memory -- ``home_location`` is the physical truth.
        """
        return self.kind.is_in_ssd

    def __str__(self) -> str:
        return self.value


#: Anything that can identify a compute backend: a canonical enum member or
#: a dynamically minted :class:`BackendId`.
ResourceLike = typing.Union[Resource, BackendId]


#: The three SSD-internal computation resources in the order the paper lists
#: them (ISP, PuD-SSD, IFP).  This is the *default* backend roster; the
#: offload stack itself discovers candidates from the platform's
#: :class:`~repro.core.backends.BackendRegistry` rather than this constant.
SSD_RESOURCES = (Resource.ISP, Resource.PUD, Resource.IFP)


class DataLocation(enum.Enum):
    """Current physical location of an operand's logical pages."""

    FLASH = "flash"
    SSD_DRAM = "ssd-dram"
    CTRL_SRAM = "controller-sram"
    HOST = "host"

    __hash__ = object.__hash__


#: The resource at which data is considered "local" for each location.
LOCATION_HOME_RESOURCE = {
    DataLocation.FLASH: Resource.IFP,
    DataLocation.SSD_DRAM: Resource.PUD,
    DataLocation.CTRL_SRAM: Resource.ISP,
    DataLocation.HOST: Resource.HOST_CPU,
}

#: The location at which operands must reside for each resource to compute.
#: The SSD controller cores (ISP) operate on bulk operands staged in the SSD
#: DRAM (their SRAM only holds working registers/tiles), which is why the
#: paper's operand-location field is a single flash/DRAM bit and why ISP and
#: PuD-SSD incur similar data-movement overheads (Section 3.1, footnote 2).
RESOURCE_HOME_LOCATION = {
    Resource.IFP: DataLocation.FLASH,
    Resource.PUD: DataLocation.SSD_DRAM,
    Resource.ISP: DataLocation.SSD_DRAM,
    Resource.HOST_CPU: DataLocation.HOST,
    Resource.HOST_GPU: DataLocation.HOST,
}


class SimulationError(RuntimeError):
    """Raised when the simulator reaches an inconsistent state."""


class ConfigurationError(ValueError):
    """Raised when a configuration object fails validation."""
