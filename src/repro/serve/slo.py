"""Per-tenant SLO accounting: the fleet-level generalization of Fig. 8.

Fig. 8 reports one workload's per-instruction p99/p99.99 under one
policy; a multi-tenant fleet needs the same machinery per *tenant* and
per *request*: latency percentiles (p50/p99/p999), achieved vs. demanded
throughput, rejection counts, and a fairness index over how the fleet's
capacity was split.  Jain's index is the standard choice: 1.0 means every
tenant achieved the same fraction of its demand, 1/n means one tenant
took everything.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np

from repro.serve.fleet import FleetOutcome


def latency_percentile_ms(latencies_ns: Sequence[float],
                          percentile: float) -> float:
    """A latency percentile in milliseconds (0.0 for an empty sample)."""
    if not latencies_ns:
        return 0.0
    array = np.asarray(latencies_ns, dtype=float)
    return float(np.percentile(array, percentile)) / 1e6


def jain_fairness(values: Sequence[float]) -> float:
    """Jain's fairness index of ``values`` (1.0 = perfectly fair).

    Defined as ``(sum x)^2 / (n * sum x^2)``; an all-zero sample is
    vacuously fair (nobody got anything, equally).
    """
    array = np.asarray(list(values), dtype=float)
    if array.size == 0:
        return 1.0
    square_sum = float(np.sum(array * array))
    if square_sum == 0.0:
        return 1.0
    total = float(np.sum(array))
    return total * total / (array.size * square_sum)


@dataclass(frozen=True)
class TenantSLO:
    """One tenant's SLO summary at one load level."""

    tenant: str
    arrival: str
    demand_rps: float
    achieved_rps: float
    p50_ms: float
    p99_ms: float
    p999_ms: float
    mean_ms: float
    admitted: int
    rejected: int

    @property
    def satisfaction(self) -> float:
        """Achieved / demanded throughput (1.0 = nothing shed)."""
        return self.achieved_rps / self.demand_rps if self.demand_rps else 1.0


def tenant_slos(outcome: FleetOutcome) -> List[TenantSLO]:
    """Per-tenant SLO summaries of one simulated load level."""
    slos: List[TenantSLO] = []
    for tenant in outcome.tenants.values():
        latencies = tenant.latencies_ns
        mean_ms = (float(np.mean(np.asarray(latencies, dtype=float))) / 1e6
                   if latencies else 0.0)
        slos.append(TenantSLO(
            tenant=tenant.tenant,
            arrival=tenant.arrival,
            demand_rps=tenant.offered / outcome.horizon_s,
            achieved_rps=tenant.admitted / outcome.horizon_s,
            p50_ms=latency_percentile_ms(latencies, 50.0),
            p99_ms=latency_percentile_ms(latencies, 99.0),
            p999_ms=latency_percentile_ms(latencies, 99.9),
            mean_ms=mean_ms,
            admitted=tenant.admitted,
            rejected=tenant.rejected))
    return slos


def fleet_slo_row(outcome: FleetOutcome) -> Dict[str, float]:
    """Fleet-wide SLO numbers of one load level (one table row's worth)."""
    latencies = outcome.all_latencies_ns()
    offered = outcome.admitted + outcome.rejected
    slos = tenant_slos(outcome)
    return {
        "offered_rps": offered / outcome.horizon_s,
        "achieved_rps": outcome.admitted / outcome.horizon_s,
        "p50_ms": latency_percentile_ms(latencies, 50.0),
        "p99_ms": latency_percentile_ms(latencies, 99.0),
        "p999_ms": latency_percentile_ms(latencies, 99.9),
        "rejected_pct": 100.0 * outcome.rejected / offered if offered else 0.0,
        "fairness": jain_fairness([slo.satisfaction for slo in slos]),
    }
