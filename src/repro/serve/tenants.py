"""Tenant specifications: who sends the fleet its traffic.

A tenant is one class of users with a workload *mix* (weighted draw over
:data:`~repro.workloads.WORKLOAD_REGISTRY` entries), an arrival process
and a share of the fleet's offered load.  The default population models
the three request classes a storage-compute fleet actually sees:

* ``interactive`` -- latency-sensitive inference traffic (LLaMA2
  Inference, jacobi-1d), Poisson arrivals, half the offered load;
* ``batch`` -- heavy training/stencil jobs arriving in bursts (LLM
  Training, heat-3d), MMPP arrivals;
* ``analytics`` -- scan-style filter/encryption queries (XOR Filter,
  AES), Poisson arrivals.

Mixes are validated against the workload registry at construction so a
typo fails at definition time, not deep inside a sweep.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.serve.arrivals import arrival_process
from repro.workloads import WORKLOAD_REGISTRY


@dataclass(frozen=True)
class TenantSpec:
    """One tenant: name, workload mix, arrival process, load share."""

    name: str
    #: ``(workload registry name, positive weight)`` pairs.
    mix: Tuple[Tuple[str, float], ...]
    #: Registered arrival-process name (see :mod:`repro.serve.arrivals`).
    arrival: str = "poisson"
    #: Fraction of the fleet's offered load this tenant contributes.
    share: float = 1.0

    def __post_init__(self) -> None:
        if not self.mix:
            raise ValueError(f"tenant {self.name!r} has an empty mix")
        for workload, weight in self.mix:
            if workload not in WORKLOAD_REGISTRY:
                known = ", ".join(sorted(WORKLOAD_REGISTRY))
                raise ValueError(
                    f"tenant {self.name!r} mixes unknown workload "
                    f"{workload!r}; known: {known}")
            if weight <= 0.0:
                raise ValueError(
                    f"tenant {self.name!r} has non-positive weight "
                    f"{weight} for {workload!r}")
        if self.share <= 0.0:
            raise ValueError(
                f"tenant {self.name!r} has non-positive share {self.share}")
        arrival_process(self.arrival)  # fail fast on unknown names

    def workloads(self) -> Tuple[str, ...]:
        """The workload names this tenant draws from, in mix order."""
        return tuple(workload for workload, _ in self.mix)

    def normalized_mix(self) -> Tuple[Tuple[str, float], ...]:
        """The mix with weights normalized to sum to one."""
        total = sum(weight for _, weight in self.mix)
        return tuple((workload, weight / total)
                     for workload, weight in self.mix)

    def sample_workload(self, rng: random.Random) -> str:
        """Draw one workload name from the mix (one ``rng`` call)."""
        u = rng.random()
        acc = 0.0
        for workload, weight in self.normalized_mix():
            acc += weight
            if u < acc:
                return workload
        return self.mix[-1][0]  # float round-off: the draw hit 1.0


def validate_tenants(tenants: Sequence[TenantSpec]) -> Tuple[TenantSpec, ...]:
    """Check a tenant population is well-formed; returns it as a tuple.

    Names must be unique (they key the SLO tables) and shares must sum to
    roughly one -- the shares partition the offered load, so a population
    summing to 0.6 would silently serve 40% less traffic than reported.
    """
    population = tuple(tenants)
    if not population:
        raise ValueError("tenant population must not be empty")
    names = [tenant.name for tenant in population]
    if len(set(names)) != len(names):
        raise ValueError(f"duplicate tenant names in {names}")
    total_share = sum(tenant.share for tenant in population)
    if abs(total_share - 1.0) > 1e-6:
        raise ValueError(
            f"tenant shares must sum to 1.0 (they partition the offered "
            f"load), got {total_share}")
    return population


def fleet_workloads(tenants: Sequence[TenantSpec]) -> Tuple[str, ...]:
    """Every workload any tenant mixes, deduplicated in first-seen order."""
    seen: List[str] = []
    for tenant in tenants:
        for workload in tenant.workloads():
            if workload not in seen:
                seen.append(workload)
    return tuple(seen)


#: The default three-tenant population described in the module docstring.
DEFAULT_TENANTS: Tuple[TenantSpec, ...] = validate_tenants((
    TenantSpec(name="interactive",
               mix=(("LlaMA2 Inference", 3.0), ("jacobi-1d", 1.0)),
               arrival="poisson", share=0.5),
    TenantSpec(name="batch",
               mix=(("LLM Training", 1.0), ("heat-3d", 1.0)),
               arrival="mmpp", share=0.3),
    TenantSpec(name="analytics",
               mix=(("XOR Filter", 2.0), ("AES", 1.0)),
               arrival="poisson", share=0.2),
))
