"""Open-loop arrival processes for the fleet serving simulation.

Every closed-loop experiment in the repository drives the platform as fast
as it will go; a *serving* fleet instead faces an open-loop stream whose
arrival pattern it does not control.  Two canonical processes cover the
regimes the queueing literature (and every serving benchmark since
YCSB/TailBench) cares about:

* :class:`PoissonArrivals` -- memoryless arrivals at a constant rate, the
  baseline assumption of M/G/k analysis;
* :class:`MMPPArrivals` -- a two-state Markov-modulated Poisson process
  alternating between a calm and a burst state, the standard minimal model
  of bursty production traffic (diurnal spikes, batch-job frontiers).
  The calm-state rate is chosen so the *long-run average* equals the
  requested rate, which keeps Poisson and MMPP runs comparable at the same
  offered load: the burst process is a redistribution of the same demand,
  not extra demand.

Determinism is the contract of the whole serve layer: a process draws
exclusively from the :class:`random.Random` instance handed to
``generate``, so one seed fixes the entire request stream bit-exactly
(the serve experiment's tables must be reproducible and cache-safe like
every other experiment's).
"""

from __future__ import annotations

import random
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, List, Type

from repro.common import SimulationError


class ArrivalProcess:
    """Base class: generate arrival times (seconds) on ``[0, horizon_s)``.

    Subclasses implement :meth:`generate`; they must draw randomness only
    from the supplied ``rng`` and return a sorted list.
    """

    #: Registry name (``TenantSpec.arrival`` refers to processes by it).
    name = "base"

    def generate(self, rng: random.Random, rate_rps: float,
                 horizon_s: float) -> List[float]:
        raise NotImplementedError

    @staticmethod
    def _check(rate_rps: float, horizon_s: float) -> None:
        if rate_rps <= 0.0:
            raise SimulationError(
                f"arrival rate must be positive, got {rate_rps}")
        if horizon_s <= 0.0:
            raise SimulationError(
                f"arrival horizon must be positive, got {horizon_s}")


@dataclass(frozen=True)
class PoissonArrivals(ArrivalProcess):
    """Memoryless arrivals: exponential inter-arrival times."""

    name = "poisson"

    def generate(self, rng: random.Random, rate_rps: float,
                 horizon_s: float) -> List[float]:
        self._check(rate_rps, horizon_s)
        times: List[float] = []
        t = rng.expovariate(rate_rps)
        while t < horizon_s:
            times.append(t)
            t += rng.expovariate(rate_rps)
        return times


@dataclass(frozen=True)
class MMPPArrivals(ArrivalProcess):
    """Two-state Markov-modulated Poisson process (calm / burst).

    The process alternates exponential-length sojourns in a calm state and
    a burst state; within a sojourn, arrivals are Poisson at that state's
    rate.  ``burst_fraction`` is the long-run fraction of time spent
    bursting and ``burst_multiplier`` the burst-to-calm rate ratio; the
    calm rate is solved so the long-run average rate equals ``rate_rps``.
    ``mean_cycles`` sets how many calm+burst cycles fit the horizon in
    expectation, tying burst durations to the horizon rather than to an
    absolute wall-clock that would lose meaning across load levels.
    """

    name = "mmpp"

    burst_fraction: float = 0.2
    burst_multiplier: float = 4.0
    mean_cycles: float = 8.0

    def __post_init__(self) -> None:
        if not 0.0 < self.burst_fraction < 1.0:
            raise SimulationError(
                f"burst_fraction must be in (0, 1), got "
                f"{self.burst_fraction}")
        if self.burst_multiplier < 1.0:
            raise SimulationError(
                f"burst_multiplier must be >= 1, got "
                f"{self.burst_multiplier}")
        if self.mean_cycles <= 0.0:
            raise SimulationError(
                f"mean_cycles must be positive, got {self.mean_cycles}")

    def generate(self, rng: random.Random, rate_rps: float,
                 horizon_s: float) -> List[float]:
        self._check(rate_rps, horizon_s)
        # Long-run average: calm*(1-f) + calm*m*f == rate.
        calm_rate = rate_rps / (
            1.0 - self.burst_fraction
            + self.burst_multiplier * self.burst_fraction)
        burst_rate = calm_rate * self.burst_multiplier
        cycle_s = horizon_s / self.mean_cycles
        mean_burst_s = cycle_s * self.burst_fraction
        mean_calm_s = cycle_s - mean_burst_s
        times: List[float] = []
        t, bursting = 0.0, False
        while t < horizon_s:
            sojourn = rng.expovariate(
                1.0 / (mean_burst_s if bursting else mean_calm_s))
            end = min(t + sojourn, horizon_s)
            rate = burst_rate if bursting else calm_rate
            arrival = t + rng.expovariate(rate)
            while arrival < end:
                times.append(arrival)
                arrival += rng.expovariate(rate)
            t, bursting = end, not bursting
        return times


#: Registered arrival processes, keyed by ``name`` (registration order is
#: preserved for stable listings).
ARRIVAL_REGISTRY: "OrderedDict[str, ArrivalProcess]" = OrderedDict(
    (process.name, process)
    for process in (PoissonArrivals(), MMPPArrivals()))


def arrival_process(name: str) -> ArrivalProcess:
    """Look up a registered arrival process by name."""
    try:
        return ARRIVAL_REGISTRY[name]
    except KeyError:
        known = ", ".join(ARRIVAL_REGISTRY)
        raise ValueError(
            f"unknown arrival process {name!r}; known: {known}") from None


def register_arrival_process(process: ArrivalProcess, *,
                             overwrite: bool = False) -> ArrivalProcess:
    """Register an arrival process instance under its ``name``."""
    if not overwrite and process.name in ARRIVAL_REGISTRY:
        raise ValueError(
            f"arrival process {process.name!r} is already registered; "
            "pass overwrite=True to replace it")
    ARRIVAL_REGISTRY[process.name] = process
    return process
