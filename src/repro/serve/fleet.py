"""The fleet: N device instances, an admission + placement scheduler.

The closed-loop experiments simulate one :class:`~repro.core.platform.
SSDPlatform` cycle-approximately; a fleet serving millions of users cannot
afford a full platform simulation per request.  The serve layer therefore
splits the problem the way datacenter simulators (and the paper's own
cost model) do:

* **Calibration** -- each (workload, policy, platform) unit runs *once*
  through the existing sweep engine (and its on-disk cache); the measured
  :class:`~repro.core.metrics.ExecutionResult` becomes that request
  class's :class:`ServiceModel`: the base service time is the measured
  end-to-end run time, and the measured per-instruction p99/mean ratio
  parameterizes a heavy-tail service spike, so a workload whose
  instruction latencies are tail-heavy inside one device is also
  tail-heavy at the fleet level.
* **Fleet simulation** -- an open-loop discrete-event loop over the
  merged tenant arrival streams.  Each of the ``devices`` fleet members
  serves admitted requests FCFS (one platform executes one program at a
  time, exactly like every closed-loop run in this repository), and owns
  a :class:`~repro.core.contention.LinkContentionMonitor` -- the PR 5
  congestion machinery reused one level up: every completed request
  reports (estimated uncontended service, observed wait + service) under
  its workload's path, so a device's monitor accumulates exactly the
  overrun signal the offloader's monitor accumulates for operand paths.

The **scheduler** reads those monitors as its congestion signal: a
request is placed on the device minimizing ``predicted wait + estimated
service x monitor.overrun(workload)`` (absolute overrun, not the
relative form the intra-device cost model uses -- across devices there is
no shared source leg to cancel, the *absolute* queueing history is the
signal).  **Admission** rejects a request whose predicted wait exceeds
``admission_wait_factor`` mean service times: an overloaded open-loop
fleet must shed load or its queues (and every latency percentile) grow
without bound.

Determinism: all randomness flows from per-tenant
``random.Random(f"{seed}/{tenant}")`` streams consumed at *generation*
time (workload draw, service jitter, tail flag), so the request stream --
and therefore the whole simulation -- is a pure function of (tenants,
service models, offered rate, config).  Two fleets fed the same seed see
bit-identical arrival streams even when their service models differ,
which is what makes the host-only vs. offloaded comparison paired rather
than merely sampled.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.common import SimulationError
from repro.core.contention import LinkContentionMonitor
from repro.core.metrics import ExecutionResult
from repro.serve.arrivals import arrival_process
from repro.serve.tenants import TenantSpec, validate_tenants


@dataclass(frozen=True)
class ServiceModel:
    """Calibrated per-request service behaviour of one workload class."""

    #: Uncontended end-to-end service time of one request (ns); the
    #: calibrated run's total time.
    base_ns: float
    #: Heavy-tail spike multiplier (>= 1): the calibrated run's
    #: per-instruction p99 / mean latency ratio.  A tail-flagged request
    #: takes ``base_ns * jitter * tail_ratio``.
    tail_ratio: float = 1.0

    def __post_init__(self) -> None:
        if self.base_ns <= 0.0:
            raise SimulationError(
                f"service base_ns must be positive, got {self.base_ns}")
        if self.tail_ratio < 1.0:
            raise SimulationError(
                f"service tail_ratio must be >= 1, got {self.tail_ratio}")

    @classmethod
    def from_result(cls, result: ExecutionResult) -> "ServiceModel":
        """Calibrate from one closed-loop :class:`ExecutionResult`."""
        mean = result.mean_latency_ns()
        ratio = (result.p99_latency_ns / mean) if mean > 0 else 1.0
        return cls(base_ns=result.total_time_ns,
                   tail_ratio=max(1.0, ratio))

    def service_ns(self, jitter: float, tail: bool) -> float:
        """Service time of one request given its pre-drawn randomness."""
        ns = self.base_ns * jitter
        return ns * self.tail_ratio if tail else ns


@dataclass(frozen=True)
class FleetConfig:
    """Shape and budget of one fleet simulation."""

    #: Number of device instances behind the scheduler.
    devices: int = 4
    #: RNG seed fixing every random draw of the simulation.
    seed: int = 2026
    #: Requests generated per load level (the horizon follows from the
    #: offered rate: ``horizon_s = requests / offered_rps``).
    requests: int = 800
    #: Offered load levels as fractions of the *host-only* fleet's mean
    #: service capacity; values past 1.0 probe saturation behaviour.
    load_points: Tuple[float, ...] = (0.3, 0.5, 0.7, 0.85, 0.95, 1.1)
    #: Reject a request whose predicted queueing wait exceeds this many
    #: fleet-mean service times (open-loop overload must shed, not queue
    #: unboundedly).
    admission_wait_factor: float = 25.0
    #: Probability a request is a tail request (drawn at generation time,
    #: so the flag is shared across fleet modes).
    tail_probability: float = 0.02
    #: Service-time jitter band: a request's jitter is drawn uniformly
    #: from ``[1 - jitter, 1 + jitter]``.
    jitter: float = 0.1

    def __post_init__(self) -> None:
        if self.devices < 1:
            raise SimulationError(
                f"fleet needs >= 1 device, got {self.devices}")
        if self.requests < 1:
            raise SimulationError(
                f"fleet needs >= 1 request per level, got {self.requests}")
        if not self.load_points:
            raise SimulationError("fleet needs >= 1 load point")
        if any(load <= 0.0 for load in self.load_points):
            raise SimulationError(
                f"load points must be positive, got {self.load_points}")
        if not 0.0 <= self.tail_probability <= 1.0:
            raise SimulationError(
                f"tail probability must be in [0, 1], got "
                f"{self.tail_probability}")
        if not 0.0 <= self.jitter < 1.0:
            raise SimulationError(
                f"jitter must be in [0, 1), got {self.jitter}")
        if self.admission_wait_factor <= 0.0:
            raise SimulationError(
                f"admission_wait_factor must be positive, got "
                f"{self.admission_wait_factor}")


@dataclass(frozen=True)
class Request:
    """One generated request with all its randomness pre-drawn."""

    time_s: float
    tenant: str
    workload: str
    #: Multiplicative service jitter in ``[1 - jitter, 1 + jitter]``.
    jitter: float
    #: Whether this request hits the heavy-tail service spike.
    tail: bool


def generate_requests(tenants: Sequence[TenantSpec], offered_rps: float,
                      config: FleetConfig) -> List[Request]:
    """The merged, time-ordered request stream of one load level.

    Each tenant owns an independent ``Random(f"{seed}/{name}")`` stream
    (string seeding is deterministic across processes, unlike hash-based
    seeding), so adding or re-ordering tenants never perturbs another
    tenant's draws.  The merge tie-breaks on (time, tenant, index) to keep
    the stream fully ordered even under equal arrival times.
    """
    if offered_rps <= 0.0:
        raise SimulationError(
            f"offered rate must be positive, got {offered_rps}")
    horizon_s = config.requests / offered_rps
    merged: List[Tuple[float, str, int, Request]] = []
    for tenant in tenants:
        rng = random.Random(f"{config.seed}/{tenant.name}")
        process = arrival_process(tenant.arrival)
        times = process.generate(rng, offered_rps * tenant.share, horizon_s)
        for index, time_s in enumerate(times):
            workload = tenant.sample_workload(rng)
            jitter = 1.0 + config.jitter * (2.0 * rng.random() - 1.0)
            tail = rng.random() < config.tail_probability
            merged.append((time_s, tenant.name, index, Request(
                time_s=time_s, tenant=tenant.name, workload=workload,
                jitter=jitter, tail=tail)))
    merged.sort(key=lambda entry: entry[:3])
    return [request for _, _, _, request in merged]


class FleetDevice:
    """One serving device: a FCFS busy timeline plus a contention monitor."""

    def __init__(self, index: int) -> None:
        self.index = index
        self.busy_until_ns = 0.0
        self.monitor = LinkContentionMonitor()
        self.served = 0

    def predicted_finish_ns(self, now_ns: float, workload: str,
                            estimate_ns: float) -> float:
        """Scheduler score: predicted wait plus congestion-scaled service.

        The monitor's *absolute* overrun is the right cross-device signal:
        the relative (min-normalized) form the intra-device cost model
        uses cancels congestion common to all operand paths of one
        platform, but across devices there is no common leg -- a device
        whose requests have historically overrun is simply congested.
        """
        wait = max(0.0, self.busy_until_ns - now_ns)
        return wait + estimate_ns * self.monitor.overrun(workload)

    def execute(self, now_ns: float, workload: str, estimate_ns: float,
                service_ns: float) -> float:
        """Serve one request; returns its end-to-end latency (ns)."""
        start = max(self.busy_until_ns, now_ns)
        end = start + service_ns
        self.busy_until_ns = end
        self.served += 1
        observed = end - now_ns  # queueing wait + service
        self.monitor.observe_movement(workload, estimate_ns, observed)
        return observed


@dataclass
class TenantOutcome:
    """Raw per-tenant accounting of one simulated load level."""

    tenant: str
    arrival: str
    latencies_ns: List[float] = field(default_factory=list)
    admitted: int = 0
    rejected: int = 0

    @property
    def offered(self) -> int:
        return self.admitted + self.rejected


@dataclass
class FleetOutcome:
    """Everything one ``simulate`` call produced."""

    offered_rps: float
    horizon_s: float
    tenants: "Dict[str, TenantOutcome]"
    per_device_served: List[int]

    @property
    def admitted(self) -> int:
        return sum(outcome.admitted for outcome in self.tenants.values())

    @property
    def rejected(self) -> int:
        return sum(outcome.rejected for outcome in self.tenants.values())

    def all_latencies_ns(self) -> List[float]:
        """Every admitted request's latency, in tenant-then-arrival order."""
        return [latency for outcome in self.tenants.values()
                for latency in outcome.latencies_ns]


def mean_service_ns(tenants: Sequence[TenantSpec],
                    models: Mapping[str, ServiceModel],
                    config: FleetConfig) -> float:
    """Expected service time of one request under the tenant mixes.

    Includes the tail-spike expectation so the derived capacity matches
    what the simulation actually serves; the jitter band is symmetric and
    contributes nothing in expectation.
    """
    expected = 0.0
    for tenant in tenants:
        for workload, weight in tenant.normalized_mix():
            model = models[workload]
            per_request = model.base_ns * (
                1.0 + config.tail_probability * (model.tail_ratio - 1.0))
            expected += tenant.share * weight * per_request
    return expected


def fleet_capacity_rps(tenants: Sequence[TenantSpec],
                       models: Mapping[str, ServiceModel],
                       config: FleetConfig) -> float:
    """Mean-service throughput ceiling of the whole fleet (requests/s)."""
    return config.devices * 1e9 / mean_service_ns(tenants, models, config)


class FleetSimulator:
    """Open-loop discrete-event simulation of one fleet configuration."""

    def __init__(self, config: Optional[FleetConfig] = None) -> None:
        self.config = config or FleetConfig()

    def simulate(self, tenants: Sequence[TenantSpec],
                 models: Mapping[str, ServiceModel],
                 offered_rps: float) -> FleetOutcome:
        """Serve one load level; returns the per-tenant accounting.

        ``models`` must cover every workload any tenant mixes.  Requests
        are processed in arrival order: admission checks the best
        device's predicted wait against the admission budget, placement
        takes the device with the lowest predicted finish (ties broken by
        device index, so the loop is fully deterministic).
        """
        population = validate_tenants(tenants)
        for tenant in population:
            for workload in tenant.workloads():
                if workload not in models:
                    raise SimulationError(
                        f"no service model for workload {workload!r} "
                        f"(tenant {tenant.name!r})")
        config = self.config
        requests = generate_requests(population, offered_rps, config)
        devices = [FleetDevice(index) for index in range(config.devices)]
        wait_budget_ns = (config.admission_wait_factor *
                          mean_service_ns(population, models, config))
        outcomes: "Dict[str, TenantOutcome]" = {
            tenant.name: TenantOutcome(tenant=tenant.name,
                                       arrival=tenant.arrival)
            for tenant in population}
        for request in requests:
            now_ns = request.time_s * 1e9
            model = models[request.workload]
            estimate = model.base_ns
            best = min(devices, key=lambda device: (
                device.predicted_finish_ns(now_ns, request.workload,
                                           estimate), device.index))
            outcome = outcomes[request.tenant]
            if max(0.0, best.busy_until_ns - now_ns) > wait_budget_ns:
                outcome.rejected += 1
                continue
            latency = best.execute(
                now_ns, request.workload, estimate,
                model.service_ns(request.jitter, request.tail))
            outcome.admitted += 1
            outcome.latencies_ns.append(latency)
        return FleetOutcome(
            offered_rps=offered_rps,
            horizon_s=config.requests / offered_rps,
            tenants=outcomes,
            per_device_served=[device.served for device in devices])
