"""The ``serve`` experiment: load vs. tail latency, host-only vs. offloaded.

This is the first result no figure in the paper has: a *fleet* of SSD
platforms serving an open-loop, multi-tenant request stream, reported as
a requests/sec-vs-p99 curve for a host-only fleet (every request served
by the OSP CPU baseline) against an offloaded fleet (every request served
under the Conduit policy).

The experiment composes the existing machinery end to end:

* the **calibration sweep** is an ordinary (workloads x {CPU, Conduit} x
  platform-variant) cross-product through
  :func:`~repro.experiments.registry.run_experiment` -- sharded over the
  process pool and cached in the shared on-disk sweep cache like every
  other experiment;
* each calibrated :class:`~repro.core.metrics.ExecutionResult` becomes a
  :class:`~repro.serve.fleet.ServiceModel`;
* the :class:`~repro.serve.fleet.FleetSimulator` serves the default
  tenant population (:data:`~repro.serve.tenants.DEFAULT_TENANTS`) at a
  ladder of offered loads expressed as fractions of the *host-only*
  fleet's capacity, so both fleets face bit-identical request streams at
  every rung and the comparison is paired, not sampled.

Everything downstream of the calibration grid is a deterministic pure
function of (grid, fleet config, tenants, seed): two runs with the same
seed -- serial or sharded -- emit bit-identical tables.

Registered as the ``serve`` experiment
(``python -m repro run serve [--platform VARIANT] [--scale S]``).
"""

from __future__ import annotations

import dataclasses
from collections import OrderedDict
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.metrics import ExecutionResult
from repro.experiments.registry import (ExperimentContext, ExperimentDef,
                                        ExperimentResult, Rows,
                                        register_experiment, run_experiment)
from repro.experiments.runner import ExperimentConfig
from repro.serve.fleet import (FleetConfig, FleetOutcome, FleetSimulator,
                               ServiceModel, fleet_capacity_rps)
from repro.serve.slo import fleet_slo_row, tenant_slos
from repro.serve.tenants import (DEFAULT_TENANTS, TenantSpec,
                                 fleet_workloads, validate_tenants)

#: The two fleets of the headline comparison: every request of the
#: host-only fleet runs the OSP CPU baseline, every request of the
#: offloaded fleet runs under the Conduit policy.
SERVE_MODES: Tuple[Tuple[str, str], ...] = (("host-only", "CPU"),
                                            ("offloaded", "Conduit"))

#: The load rung (fraction of host-only capacity) the per-tenant section
#: and the headline report; must be one of ``FleetConfig.load_points``.
REFERENCE_LOAD = 0.85

#: Fleet shape used when the caller does not supply one.
DEFAULT_FLEET = FleetConfig()


def calibrate_service_models(
        grid: Dict[Tuple[str, str], ExecutionResult], policy: str,
        workloads: Sequence[str]) -> Dict[str, ServiceModel]:
    """Service models for ``workloads`` from one policy's grid column."""
    return {workload: ServiceModel.from_result(grid[(workload, policy)])
            for workload in workloads}


def simulate_modes(grid: Dict[Tuple[str, str], ExecutionResult],
                   fleet: FleetConfig, tenants: Sequence[TenantSpec]
                   ) -> "OrderedDict[str, Dict[float, FleetOutcome]]":
    """Run every (mode, load point) fleet simulation off one grid slice.

    The offered-rate ladder is shared: each load point is that fraction
    of the *host-only* fleet's mean-service capacity, so both modes see
    the same absolute requests/sec (and, by seed construction, the same
    request stream) at every rung.
    """
    population = validate_tenants(tenants)
    workloads = fleet_workloads(population)
    host_models = calibrate_service_models(grid, SERVE_MODES[0][1],
                                           workloads)
    capacity = fleet_capacity_rps(population, host_models, fleet)
    simulator = FleetSimulator(fleet)
    outcomes: "OrderedDict[str, Dict[float, FleetOutcome]]" = OrderedDict()
    for mode, policy in SERVE_MODES:
        models = calibrate_service_models(grid, policy, workloads)
        outcomes[mode] = {
            load: simulator.simulate(population, models, load * capacity)
            for load in fleet.load_points}
    return outcomes


def _curve_rows(outcomes: "OrderedDict[str, Dict[float, FleetOutcome]]"
                ) -> Rows:
    rows: Rows = []
    for mode, by_load in outcomes.items():
        for load, outcome in by_load.items():
            row: Dict[str, object] = {"fleet": mode, "load": load}
            row.update(fleet_slo_row(outcome))
            rows.append(row)
    return rows


def _tenant_rows(outcomes: "OrderedDict[str, Dict[float, FleetOutcome]]",
                 reference_load: float) -> Rows:
    rows: Rows = []
    for mode, by_load in outcomes.items():
        for slo in tenant_slos(by_load[reference_load]):
            rows.append({
                "fleet": mode, "tenant": slo.tenant,
                "arrival": slo.arrival, "demand_rps": slo.demand_rps,
                "achieved_rps": slo.achieved_rps, "p50_ms": slo.p50_ms,
                "p99_ms": slo.p99_ms, "p999_ms": slo.p999_ms,
                "rejected": slo.rejected,
            })
    return rows


def _reference_load(fleet: FleetConfig) -> float:
    """The reporting rung: ``REFERENCE_LOAD`` if swept, else the highest
    load point not exceeding it (custom ladders stay reportable)."""
    if REFERENCE_LOAD in fleet.load_points:
        return REFERENCE_LOAD
    below = [load for load in fleet.load_points if load <= REFERENCE_LOAD]
    return max(below) if below else min(fleet.load_points)


def _build(ctx: ExperimentContext, fleet: FleetConfig,
           tenants: Sequence[TenantSpec]) -> "OrderedDict[str, Rows]":
    sections: "OrderedDict[str, Rows]" = OrderedDict()
    multi = len(ctx.platform_names) > 1
    for name in ctx.platform_names:
        outcomes = simulate_modes(ctx.platform_grid(name), fleet, tenants)
        prefix = f"{name}/" if multi else ""
        sections[f"{prefix}serve"] = _curve_rows(outcomes)
        sections[f"{prefix}serve-tenants"] = _tenant_rows(
            outcomes, _reference_load(fleet))
    return sections


def _headline(ctx: ExperimentContext, fleet: FleetConfig,
              tenants: Sequence[TenantSpec]) -> List[str]:
    lines: List[str] = []
    reference = _reference_load(fleet)
    for name in ctx.platform_names:
        # Deterministic recomputation, not state smuggled from the build:
        # the fleet level is cheap (tens of thousands of events) next to
        # the calibration sweep, and purity keeps build/headline
        # independently testable.
        outcomes = simulate_modes(ctx.platform_grid(name), fleet, tenants)
        host = fleet_slo_row(outcomes["host-only"][reference])
        offl = fleet_slo_row(outcomes["offloaded"][reference])
        ratio = (host["p99_ms"] / offl["p99_ms"]
                 if offl["p99_ms"] > 0 else float("inf"))
        lines.append(
            f"[{name}] at {reference:.2f}x host-only capacity "
            f"({host['offered_rps']:.1f} rps offered, fleet of "
            f"{fleet.devices}): p99 {host['p99_ms']:.2f} ms host-only vs "
            f"{offl['p99_ms']:.2f} ms offloaded ({ratio:.2f}x), shed "
            f"{host['rejected_pct']:.1f}% vs {offl['rejected_pct']:.1f}%")
    return lines


def _serve_definition(fleet: FleetConfig, tenants: Sequence[TenantSpec],
                      workloads: Optional[Tuple[str, ...]]) -> ExperimentDef:
    return ExperimentDef(
        name="serve",
        title="Serve -- fleet-scale multi-tenant open-loop serving "
              "(load vs. tail latency)",
        description="An open-loop tenant mix (Poisson + bursty MMPP "
                    "arrivals) over a fleet of device instances with "
                    "contention-aware admission + placement: offered load "
                    "vs. p50/p99/p999 and per-tenant SLOs, host-only vs. "
                    "offloaded fleets.",
        policies=tuple(policy for _, policy in SERVE_MODES),
        workloads=workloads,
        build=lambda ctx: _build(ctx, fleet, tenants),
        headline=lambda ctx: _headline(ctx, fleet, tenants),
        paper_refs=("No paper counterpart: generalizes Fig. 8's tail "
                    "machinery to per-tenant fleet SLOs under open-loop "
                    "load.",),
    )


#: The registered default: the three-tenant population over all six
#: workloads, the default fleet shape, seeded RNG.
SERVE_DEF = register_experiment(
    _serve_definition(DEFAULT_FLEET, DEFAULT_TENANTS, workloads=None),
    overwrite=True)


def run_serve(config: Optional[ExperimentConfig] = None, *,
              fleet: Optional[FleetConfig] = None,
              tenants: Optional[Sequence[TenantSpec]] = None,
              platforms: Optional[Sequence[str]] = None,
              parallel: bool = True, workers: Optional[int] = None,
              cache_dir: Optional[str] = None) -> ExperimentResult:
    """Run the serve experiment, optionally with a custom fleet/tenants.

    A custom population narrows the calibration sweep to exactly the
    workloads its mixes reference; the default population covers all six
    registered workloads.  ``fleet.seed`` fixes every random draw, so two
    calls with equal arguments return bit-identical results regardless of
    ``parallel`` / ``workers`` (the calibration grid itself is
    serial==parallel bit-identical by the sweep engine's contract).
    """
    if fleet is None and tenants is None:
        definition = SERVE_DEF
    else:
        population = validate_tenants(tenants if tenants is not None
                                      else DEFAULT_TENANTS)
        definition = _serve_definition(
            fleet if fleet is not None else DEFAULT_FLEET, population,
            workloads=fleet_workloads(population))
    return run_experiment(definition, config, platforms=platforms,
                          parallel=parallel, workers=workers,
                          cache_dir=cache_dir)


def serve_sweep_config(fleet: FleetConfig,
                       **overrides) -> FleetConfig:
    """A copy of ``fleet`` with field overrides (tests tune budgets)."""
    return dataclasses.replace(fleet, **overrides)
