"""Fleet-scale multi-tenant serving simulation (the ``serve`` experiment).

An open-loop serving layer on top of the closed-loop platform/experiment
stack: arrival processes (:mod:`repro.serve.arrivals`), tenant workload
mixes (:mod:`repro.serve.tenants`), a contention-aware fleet scheduler
over N device instances (:mod:`repro.serve.fleet`), per-tenant SLO
accounting (:mod:`repro.serve.slo`) and the registered ``serve``
experiment definition (:mod:`repro.serve.experiment`).
"""

from repro.serve.arrivals import (ARRIVAL_REGISTRY, ArrivalProcess,
                                  MMPPArrivals, PoissonArrivals,
                                  arrival_process,
                                  register_arrival_process)
from repro.serve.experiment import (DEFAULT_FLEET, REFERENCE_LOAD,
                                    SERVE_DEF, SERVE_MODES,
                                    calibrate_service_models, run_serve,
                                    simulate_modes)
from repro.serve.fleet import (FleetConfig, FleetDevice, FleetOutcome,
                               FleetSimulator, Request, ServiceModel,
                               TenantOutcome, fleet_capacity_rps,
                               generate_requests, mean_service_ns)
from repro.serve.slo import (TenantSLO, fleet_slo_row, jain_fairness,
                             latency_percentile_ms, tenant_slos)
from repro.serve.tenants import (DEFAULT_TENANTS, TenantSpec,
                                 fleet_workloads, validate_tenants)

__all__ = [
    "ARRIVAL_REGISTRY", "ArrivalProcess", "MMPPArrivals",
    "PoissonArrivals", "arrival_process", "register_arrival_process",
    "DEFAULT_FLEET", "REFERENCE_LOAD", "SERVE_DEF", "SERVE_MODES",
    "calibrate_service_models", "run_serve", "simulate_modes",
    "FleetConfig", "FleetDevice", "FleetOutcome", "FleetSimulator",
    "Request", "ServiceModel", "TenantOutcome", "fleet_capacity_rps",
    "generate_requests", "mean_service_ns",
    "TenantSLO", "fleet_slo_row", "jain_fairness",
    "latency_percentile_ms", "tenant_slos",
    "DEFAULT_TENANTS", "TenantSpec", "fleet_workloads", "validate_tenants",
]
