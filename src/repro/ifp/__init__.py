"""In-flash processing (IFP): Flash-Cosmos bitwise + Ares-Flash arithmetic."""

from repro.ifp.aresflash import AresFlashOperation, AresFlashUnit
from repro.ifp.flashcosmos import FlashCosmosUnit, MWSOperation
from repro.ifp.isa import (ARES_FLASH_OPS, FLASH_COSMOS_OPS,
                           IFP_SUPPORTED_OPS, MAX_AND_OPERANDS_PER_BLOCK,
                           MAX_OR_OPERANDS_PER_PLANE, primitive)
from repro.ifp.unit import IFPBackend, IFPOperationTiming, IFPUnit

__all__ = [
    "AresFlashOperation", "AresFlashUnit", "FlashCosmosUnit", "MWSOperation",
    "ARES_FLASH_OPS", "FLASH_COSMOS_OPS", "IFP_SUPPORTED_OPS",
    "MAX_AND_OPERANDS_PER_BLOCK", "MAX_OR_OPERANDS_PER_PLANE", "primitive",
    "IFPBackend", "IFPOperationTiming", "IFPUnit",
]
