"""In-flash processing ISA.

IFP supports nine operations (Section 4.3.2): six bulk bitwise operations
(via Flash-Cosmos multi-wordline sensing, MWS) and three arithmetic
operations (via Ares-Flash latch manipulation and shift-and-add).  This
module defines the supported-operation sets and the native primitive each
Conduit operation translates to (used by the instruction transformation
unit).
"""

from __future__ import annotations

from typing import Dict, FrozenSet

from repro.common import OpType

#: Bulk bitwise operations executable with multi-wordline sensing.
FLASH_COSMOS_OPS: FrozenSet[OpType] = frozenset({
    OpType.AND, OpType.OR, OpType.NOT, OpType.NAND, OpType.NOR, OpType.XOR,
})

#: Arithmetic operations executable with Ares-Flash latch sequences.
ARES_FLASH_OPS: FrozenSet[OpType] = frozenset({
    OpType.ADD, OpType.SUB, OpType.MUL,
})

#: The full IFP-supported set (nine operations).
IFP_SUPPORTED_OPS: FrozenSet[OpType] = FLASH_COSMOS_OPS | ARES_FLASH_OPS

#: Native IFP primitive for each supported operation.
_PRIMITIVES: Dict[OpType, str] = {
    OpType.AND: "mws_and", OpType.OR: "mws_or", OpType.NOT: "mws_not",
    OpType.NAND: "mws_and+inv", OpType.NOR: "mws_or+inv",
    OpType.XOR: "mws_xor",
    OpType.ADD: "shift_and_add", OpType.SUB: "shift_and_add(neg)",
    OpType.MUL: "shift_and_add(loop)",
}

#: Flash-Cosmos operand-count constraints (Section 5.3): bitwise AND over up
#: to 48 operands within one block, bitwise OR over up to 4 operands in
#: different blocks of the same plane.
MAX_AND_OPERANDS_PER_BLOCK = 48
MAX_OR_OPERANDS_PER_PLANE = 4


def primitive(op: OpType) -> str:
    """Native IFP primitive name for a supported operation."""
    return _PRIMITIVES[op]
