"""Ares-Flash: in-flash integer arithmetic via page-buffer latches.

Ares-Flash extends in-flash processing with integer arithmetic by
manipulating the sensing and data latches (S-latch / D-latch) in the flash
die's peripheral circuitry and using a ``shift_and_add`` primitive
(Section 2.2 / 4.3.2).  Addition/subtraction are bit-serial over the operand
width using latch transfers; multiplication loops shift-and-add over all
operand bits and, critically, requires frequent operand transfers between
the flash controller and the flash chips -- the reason the paper's Fig. 9/10
analysis shows Conduit avoiding IFP for multiplication-heavy phases.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common import KIB, OpType, SimulationError
from repro.ifp.isa import ARES_FLASH_OPS
from repro.ssd.config import NANDConfig, SSDEnergyConfig


@dataclass
class AresFlashOperation:
    """One in-flash arithmetic operation."""

    op: OpType
    element_bits: int
    latch_steps: int
    controller_transfers: int
    latency_ns: float
    energy_nj: float


class AresFlashUnit:
    """Latency/energy model of Ares-Flash in-flash arithmetic."""

    def __init__(self, nand: NANDConfig = None,
                 energy: SSDEnergyConfig = None) -> None:
        self.nand = nand or NANDConfig()
        self.energy_config = energy or SSDEnergyConfig()
        self.operations = 0
        self.total_busy_ns = 0.0
        self.energy_nj = 0.0

    @staticmethod
    def supports(op: OpType) -> bool:
        return op in ARES_FLASH_OPS

    def _plan(self, op: OpType, element_bits: int) -> tuple:
        """Return (latch_steps, controller_transfers) for one page of data."""
        if not self.supports(op):
            raise SimulationError(f"Ares-Flash does not support {op.value}")
        if element_bits <= 0:
            raise SimulationError("element width must be positive")
        if op in (OpType.ADD, OpType.SUB):
            # Bit-serial ripple: sense both operands once, then one latch
            # AND/XOR pair plus a latch transfer per bit for carry logic.
            return 3 * element_bits, 0
        # MUL: shift-and-add over all bits; each partial product needs latch
        # work plus a page round-trip through the flash controller to shift.
        return 4 * element_bits * element_bits, element_bits

    def operation(self, op: OpType, element_bits: int = 8
                  ) -> AresFlashOperation:
        latch_steps, transfers = self._plan(op, element_bits)
        sensing = 2 * self.nand.read_latency_ns  # sense both operand pages
        latch_ns = latch_steps * (self.nand.latch_transfer_latency_ns +
                                  self.nand.and_or_latency_ns)
        transfer_ns = transfers * (self.nand.dma_latency_ns * 2)
        latency = sensing + latch_ns + transfer_ns
        page_kb = self.nand.page_size_bytes / KIB
        energy = (2 * self.energy_config.flash_read_nj_per_channel +
                  latch_steps *
                  self.energy_config.ifp_latch_transfer_nj_per_kb * page_kb +
                  transfers * 2 * self.energy_config.dma_nj_per_channel)
        return AresFlashOperation(op=op, element_bits=element_bits,
                                  latch_steps=latch_steps,
                                  controller_transfers=transfers,
                                  latency_ns=latency, energy_nj=energy)

    def execute(self, now: float, op: OpType,
                element_bits: int = 8) -> AresFlashOperation:
        descriptor = self.operation(op, element_bits)
        self.operations += 1
        self.total_busy_ns += descriptor.latency_ns
        self.energy_nj += descriptor.energy_nj
        return descriptor
