"""Flash-Cosmos: in-flash bulk bitwise operations via multi-wordline sensing.

Flash-Cosmos performs a bitwise AND of up to 48 operand pages stored in the
same block by simultaneously activating their wordlines during a single
sensing operation, and a bitwise OR of up to 4 operand pages in different
blocks of the same plane (Section 2.2 / 5.3).  The result lands in the page
buffer's sensing latch, so no page data crosses the flash channel.

Timing: one multi-wordline sensing costs a page read (tR, 22.5 us in SLC
mode) plus the MWS combination latency (tAND/OR = 20 ns; tXOR = 30 ns).
Energy: Eread per channel plus 10-20 nJ/KB for the bitwise combination
(Table 2).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.common import KIB, OpType, SimulationError
from repro.ifp.isa import (FLASH_COSMOS_OPS, MAX_AND_OPERANDS_PER_BLOCK,
                           MAX_OR_OPERANDS_PER_PLANE)
from repro.ssd.config import NANDConfig, SSDEnergyConfig


@dataclass
class MWSOperation:
    """One multi-wordline-sensing operation (for traces and tests)."""

    op: OpType
    operand_pages: int
    sensing_rounds: int
    latency_ns: float
    energy_nj: float


class FlashCosmosUnit:
    """Latency/energy model of Flash-Cosmos bulk bitwise operations."""

    def __init__(self, nand: NANDConfig = None,
                 energy: SSDEnergyConfig = None) -> None:
        self.nand = nand or NANDConfig()
        self.energy_config = energy or SSDEnergyConfig()
        self.operations = 0
        self.total_busy_ns = 0.0
        self.energy_nj = 0.0

    @staticmethod
    def supports(op: OpType) -> bool:
        return op in FLASH_COSMOS_OPS

    def sensing_rounds(self, op: OpType, operand_pages: int) -> int:
        """How many multi-wordline sensings an operation needs.

        AND combines up to 48 same-block operands per sensing; OR combines
        up to 4 same-plane operands per sensing; XOR/NOT need one sensing
        per operand pair (XOR is built from two sensings plus latch logic).
        """
        if not self.supports(op):
            raise SimulationError(f"Flash-Cosmos does not support {op.value}")
        operand_pages = max(1, operand_pages)
        if op in (OpType.AND, OpType.NAND):
            return max(1, math.ceil(operand_pages /
                                    MAX_AND_OPERANDS_PER_BLOCK))
        if op in (OpType.OR, OpType.NOR):
            return max(1, math.ceil(operand_pages /
                                    MAX_OR_OPERANDS_PER_PLANE))
        if op is OpType.XOR:
            return max(1, operand_pages - 1) * 2
        return 1  # NOT

    def _combination_latency(self, op: OpType) -> float:
        if op is OpType.XOR:
            return self.nand.xor_latency_ns
        return self.nand.and_or_latency_ns

    def operation(self, op: OpType, operand_pages: int = 2) -> MWSOperation:
        """Build the MWS operation descriptor (latency + energy)."""
        rounds = self.sensing_rounds(op, operand_pages)
        latency = rounds * (self.nand.read_latency_ns +
                            self._combination_latency(op))
        page_kb = self.nand.page_size_bytes / KIB
        if op is OpType.XOR:
            combine_nj = self.energy_config.ifp_xor_nj_per_kb * page_kb
        else:
            combine_nj = self.energy_config.ifp_and_or_nj_per_kb * page_kb
        energy = rounds * (self.energy_config.flash_read_nj_per_channel +
                           combine_nj)
        return MWSOperation(op=op, operand_pages=operand_pages,
                            sensing_rounds=rounds, latency_ns=latency,
                            energy_nj=energy)

    def execute(self, now: float, op: OpType,
                operand_pages: int = 2) -> MWSOperation:
        """Account for one executed MWS operation; returns its descriptor."""
        descriptor = self.operation(op, operand_pages)
        self.operations += 1
        self.total_busy_ns += descriptor.latency_ns
        self.energy_nj += descriptor.energy_nj
        return descriptor
