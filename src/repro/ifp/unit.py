"""Combined in-flash processing (IFP) unit.

Wraps the Flash-Cosmos bitwise model and the Ares-Flash arithmetic model
into one computation resource with the interface the runtime offloader
expects (``supports`` / ``operation_latency`` / ``operation_energy`` /
``execute``), matching the interfaces of :class:`repro.isp.EmbeddedCoreComplex`
and :class:`repro.dram.PuDUnit`.

Parallelism: every flash die can run an in-flash operation independently, so
a vector instruction that spans multiple pages spreads across dies.  The
platform layer models die contention through the IFP execution queue; this
unit reports the per-page latency and the die-level parallelism available.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from repro.common import DataLocation, OpType, ResourceLike, SimulationError
from repro.core.backends import ComputeBackend
from repro.ifp.aresflash import AresFlashUnit
from repro.ifp.flashcosmos import FlashCosmosUnit
from repro.ifp.isa import ARES_FLASH_OPS, FLASH_COSMOS_OPS, IFP_SUPPORTED_OPS
from repro.ssd.config import NANDConfig, SSDEnergyConfig


@dataclass
class IFPOperationTiming:
    start_ns: float
    end_ns: float
    pages: int
    waves: int

    @property
    def latency_ns(self) -> float:
        return self.end_ns - self.start_ns


class IFPUnit:
    """In-flash processing resource combining Flash-Cosmos and Ares-Flash."""

    def __init__(self, nand: NANDConfig = None,
                 energy: SSDEnergyConfig = None) -> None:
        self.nand = nand or NANDConfig()
        self.energy_config = energy or SSDEnergyConfig()
        self.flash_cosmos = FlashCosmosUnit(self.nand, self.energy_config)
        self.ares_flash = AresFlashUnit(self.nand, self.energy_config)
        self.operations = 0
        self.total_busy_ns = 0.0
        self.energy_nj = 0.0
        # Memoized per-page estimate points (pure in their arguments +
        # immutable config): the precomputed tables of Section 4.5.
        self._page_latency_table: dict = {}
        self._page_energy_table: dict = {}

    # -- Capability -----------------------------------------------------------

    @staticmethod
    def supports(op: OpType) -> bool:
        return op in IFP_SUPPORTED_OPS

    @property
    def page_bytes(self) -> int:
        """Data covered by one in-flash operation (one flash page)."""
        return self.nand.page_size_bytes

    @property
    def die_parallelism(self) -> int:
        """Dies that can execute in-flash operations concurrently."""
        return self.nand.channels * self.nand.dies_per_channel

    # -- Per-page latency and energy -------------------------------------------

    def page_operation_latency(self, op: OpType, element_bits: int,
                               operand_pages: int = 2) -> float:
        key = (op, element_bits, operand_pages)
        cached = self._page_latency_table.get(key)
        if cached is not None:
            return cached
        if op in FLASH_COSMOS_OPS:
            latency = self.flash_cosmos.operation(op, operand_pages).latency_ns
        elif op in ARES_FLASH_OPS:
            latency = self.ares_flash.operation(op, element_bits).latency_ns
        else:
            raise SimulationError(f"IFP does not support {op.value}")
        self._page_latency_table[key] = latency
        return latency

    def page_operation_energy(self, op: OpType, element_bits: int,
                              operand_pages: int = 2) -> float:
        key = (op, element_bits, operand_pages)
        cached = self._page_energy_table.get(key)
        if cached is not None:
            return cached
        if op in FLASH_COSMOS_OPS:
            energy = self.flash_cosmos.operation(op, operand_pages).energy_nj
        elif op in ARES_FLASH_OPS:
            energy = self.ares_flash.operation(op, element_bits).energy_nj
        else:
            raise SimulationError(f"IFP does not support {op.value}")
        self._page_energy_table[key] = energy
        return energy

    # -- Vector-level latency and energy ------------------------------------------

    def operation_latency(self, op: OpType, size_bytes: int,
                          element_bits: int, operand_pages: int = 2) -> float:
        """Latency of an operation over ``size_bytes`` of data.

        Pages are spread across dies; pages beyond the die count serialize
        in additional waves.
        """
        pages = max(1, math.ceil(size_bytes / self.page_bytes))
        waves = math.ceil(pages / self.die_parallelism)
        return waves * self.page_operation_latency(op, element_bits,
                                                   operand_pages)

    def operation_energy(self, op: OpType, size_bytes: int,
                         element_bits: int, operand_pages: int = 2) -> float:
        pages = max(1, math.ceil(size_bytes / self.page_bytes))
        return pages * self.page_operation_energy(op, element_bits,
                                                  operand_pages)

    # -- Execution ------------------------------------------------------------------

    def execute(self, now: float, op: OpType, size_bytes: int,
                element_bits: int, operand_pages: int = 2
                ) -> IFPOperationTiming:
        pages = max(1, math.ceil(size_bytes / self.page_bytes))
        waves = math.ceil(pages / self.die_parallelism)
        latency = self.operation_latency(op, size_bytes, element_bits,
                                         operand_pages)
        energy = self.operation_energy(op, size_bytes, element_bits,
                                       operand_pages)
        if op in FLASH_COSMOS_OPS:
            self.flash_cosmos.operations += pages
        else:
            self.ares_flash.operations += pages
        self.operations += 1
        self.total_busy_ns += latency
        self.energy_nj += energy
        return IFPOperationTiming(start_ns=now, end_ns=now + latency,
                                  pages=pages, waves=waves)


class IFPBackend(ComputeBackend):
    """Compute backend adapting :class:`IFPUnit`.

    Operands live in flash (in-place computation); the utilization
    snapshot is the flash-die pool, which in-flash operations share with
    regular reads/programs.  ``channels`` is the platform's
    :class:`~repro.ssd.flash_controller.FlashChannelSubsystem`.
    """

    def __init__(self, resource: ResourceLike, unit: IFPUnit,
                 channels) -> None:
        super().__init__(resource, DataLocation.FLASH,
                         unit.die_parallelism)
        self.unit = unit
        self.channels = channels

    @property
    def native_chunk_bytes(self) -> Optional[int]:
        return self.unit.page_bytes

    def supports(self, op: OpType) -> bool:
        return self.unit.supports(op)

    def operation_latency(self, op: OpType, size_bytes: int,
                          element_bits: int) -> float:
        return self.unit.operation_latency(op, size_bytes, element_bits)

    def operation_energy(self, op: OpType, size_bytes: int,
                         element_bits: int) -> float:
        return self.unit.operation_energy(op, size_bytes, element_bits)

    def execute(self, now: float, op: OpType, size_bytes: int,
                element_bits: int) -> IFPOperationTiming:
        return self.unit.execute(now, op, size_bytes, element_bits)

    def utilization(self, elapsed: float) -> float:
        return self.channels.die_utilization(elapsed)

    def execution_channel_bytes(self, op: OpType, size_bytes: int,
                                element_bits: int) -> float:
        """Flash-channel traffic an in-flash operation generates.

        Ares-Flash arithmetic (notably multiplication) shuttles partial
        products between the flash chips and the flash controller while
        it executes (Section 6.4): one page per partial product, i.e.
        ``element_bits`` page transfers for a multiply and one for an
        add/subtract.  Flash-Cosmos bitwise MWS needs no channel traffic
        beyond the command.
        """
        if op in (OpType.MUL, OpType.MAC):
            return float(element_bits * self.unit.page_bytes)
        if op in (OpType.ADD, OpType.SUB):
            return float(self.unit.page_bytes)
        return 0.0
