"""Link-contention feedback for the offload cost model.

The paper's cost function estimates data movement from the precomputed
*uncontended* latency table of Section 4.5.  That per-instruction greedy
estimate systematically mispredicts once a shared link congests: every
instruction is priced as if it were alone on the PCIe/CXL link, the SSD
DRAM bus and the flash channels, so the argmin keeps steering work onto an
overloaded path (the LLM-Training row of the roster ablation regresses
end-to-end on the ``cxl-pud`` platform while its per-instruction decisions
"improve").

:class:`LinkContentionMonitor` closes the loop with the one signal the
offloader can observe cheaply and without bias: how long reaching an
operand path *actually* took versus the uncontended estimate.  Every
completed operand movement reports ``(path, estimated_ns, observed_ns)``;
the overrun ratio ``observed / estimated`` is the queueing the movement
experienced on the shared links of that path plus any lazy-coherence
commits it had to wait for (operand ping-pong between homes surfaces as
commit delay, and attributing it to the path being entered is what lets
the feedback price write-sharing churn too).  The monitor keeps an
exponentially weighted moving average of the ratio per path; the feature
collector then scales each candidate's movement estimate by its path's
smoothed ratio, so a congested path prices future work at its observed
(not theoretical) cost -- and because an overpriced path stops attracting
work, its buses drain and its next observation pulls the average back
down: the feedback is self-balancing.

Backend-private links (the CXL command link) are sampled directly at
collection time via ``ComputeBackend.link_backlog_ns`` and charged on top.

The whole mechanism sits behind ``PlatformConfig.contention_feedback``
(default off).  With the flag off the monitor is never consulted, every
scale is exactly ``1.0`` and the uncorrected goldens stay bit-exact.
"""

from __future__ import annotations

from typing import Dict

from repro.common import SimulationError

#: Upper clamp on one observation's overrun ratio: a single pathological
#: movement (e.g. one that queued behind a burst of evictions) must not
#: price a path out of the argmin forever -- an unchosen path is never
#: re-observed, so an unbounded spike could never be corrected.
MAX_OVERRUN_RATIO = 10.0


class LinkContentionMonitor:
    """EWMA of observed movement overrun, per operand path.

    ``alpha`` is the usual EWMA smoothing factor (``1.0`` keeps only the
    latest sample); ``gain`` weights how much of the smoothed overrun is
    charged back into the estimates (``scale = 1 + gain * (ewma - 1)``).
    State is owned by one :class:`~repro.core.platform.SSDPlatform`
    instance, so every (workload, policy, platform) run starts from a
    clean monitor and sharded sweeps cannot leak feedback across runs.

    ``decay`` re-opens paths the argmin stopped choosing: an overpriced
    path attracts no work, so it is never re-observed and its stale
    penalty would otherwise persist forever.  On every observation, each
    *other* path's average relaxes toward 1.0 by the decay fraction
    (``v = 1 + (v - 1) * (1 - decay)``), so a once-penalized path drifts
    back into contention-free pricing and gets re-explored.  The default
    ``0.0`` keeps historical behavior bit-exact.
    """

    def __init__(self, alpha: float = 0.3, gain: float = 1.0,
                 decay: float = 0.0) -> None:
        if not 0.0 < alpha <= 1.0:
            raise SimulationError(
                f"contention EWMA alpha must be in (0, 1], got {alpha}")
        if gain < 0.0:
            raise SimulationError(
                f"contention gain must be non-negative, got {gain}")
        if not 0.0 <= decay <= 1.0:
            raise SimulationError(
                f"contention decay must be in [0, 1], got {decay}")
        self.alpha = alpha
        self.gain = gain
        self.decay = decay
        self._overrun: Dict[str, float] = {}
        self.samples = 0

    def observe_movement(self, path: str, estimated_ns: float,
                         observed_ns: float) -> None:
        """Fold one completed movement's estimate/actual pair into ``path``.

        Movements with no estimated cost carry no signal (nothing moved)
        and are ignored.  The overrun ratio is clamped to
        ``[1, MAX_OVERRUN_RATIO]``: a movement faster than the uncontended
        estimate (runs overlap their flash reads across channels) means
        *no* queueing, not negative queueing.  A path's first observation
        seeds its average directly (no warm-up lag).
        """
        if estimated_ns <= 0.0:
            return
        if observed_ns < 0.0:
            raise SimulationError(
                f"negative observed movement {observed_ns} on {path!r}")
        ratio = min(MAX_OVERRUN_RATIO, max(1.0, observed_ns / estimated_ns))
        if self.decay:
            keep = 1.0 - self.decay
            for other in self._overrun:
                if other != path:
                    self._overrun[other] = (
                        1.0 + (self._overrun[other] - 1.0) * keep)
        previous = self._overrun.get(path)
        self._overrun[path] = (
            ratio if previous is None
            else self.alpha * ratio + (1.0 - self.alpha) * previous)
        self.samples += 1

    def overrun(self, path: str) -> float:
        """Current EWMA overrun ratio of ``path`` (1.0 if never observed)."""
        return self._overrun.get(path, 1.0)

    def observed_paths(self) -> Dict[str, float]:
        """Snapshot of every observed path's EWMA overrun ratio.

        Read-only observability for experiment reports (e.g. how much of
        an aged drive's background GC traffic each operand path absorbed);
        the returned dict is a copy, so callers cannot perturb feedback
        state.
        """
        return dict(self._overrun)

    def relative_overrun(self, path: str) -> float:
        """``path``'s overrun relative to the least-congested observed path.

        Every operand path shares its source leg (operands stream out of
        flash in the steady state), so absolute overruns rise *together*
        when the flash channels congest -- which says nothing about which
        destination to prefer.  What separates the candidates is the
        path-specific excess over the best observed path; normalizing by
        the minimum cancels the common-leg congestion exactly.  A path
        that was never observed is assumed as good as the best one
        (optimism keeps unexplored paths explorable); with nothing
        observed at all every path reports ``1.0``.
        """
        if not self._overrun:
            return 1.0
        floor = min(self._overrun.values())
        return self._overrun.get(path, floor) / floor

    def scale(self, path: str) -> float:
        """Movement-estimate scale for ``path`` (>= 1).

        ``1 + gain * (relative_overrun - 1)``: exactly ``1.0`` for a
        never-observed path and under zero traffic, so feedback-on
        estimates equal feedback-off estimates until contention is
        actually observed.
        """
        relative = self.relative_overrun(path)
        if relative <= 1.0:
            return 1.0
        return 1.0 + self.gain * (relative - 1.0)
