"""Mapping of application arrays onto logical pages of the SSD.

Conduit addresses all data at logical-page granularity (Section 4.4): the
FTL's L2P table tracks where each page physically lives, and the offloader
reasons about operand locations in units of logical pages.  This module maps
the compiler-level view (arrays and element ranges) onto logical page
numbers so the runtime, the coherence directory and the data-movement engine
all speak the same address space.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, List, Tuple

from repro.common import SimulationError
from repro.core.compiler.ir import ArrayRef, ArraySpec


@dataclass(frozen=True)
class ArrayPlacement:
    """Placement of one array: base logical page and page count."""

    spec: ArraySpec
    base_lpa: int
    pages: int

    @property
    def end_lpa(self) -> int:
        return self.base_lpa + self.pages


class ArrayLayout:
    """Assigns logical page ranges to arrays and resolves operand pages."""

    def __init__(self, page_size_bytes: int, base_lpa: int = 0) -> None:
        if page_size_bytes <= 0:
            raise SimulationError("page size must be positive")
        self.page_size_bytes = page_size_bytes
        self._next_lpa = base_lpa
        self._placements: Dict[str, ArrayPlacement] = {}

    # -- Construction -----------------------------------------------------------

    def place(self, spec: ArraySpec) -> ArrayPlacement:
        """Allocate a contiguous logical page range for ``spec``."""
        if spec.name in self._placements:
            return self._placements[spec.name]
        pages = spec.pages(self.page_size_bytes)
        placement = ArrayPlacement(spec=spec, base_lpa=self._next_lpa,
                                   pages=pages)
        self._placements[spec.name] = placement
        self._next_lpa += pages
        return placement

    def place_all(self, specs: Iterable[ArraySpec]) -> None:
        for spec in specs:
            self.place(spec)

    # -- Queries ------------------------------------------------------------------

    def placement(self, array: str) -> ArrayPlacement:
        if array not in self._placements:
            raise SimulationError(f"array '{array}' has no placement")
        return self._placements[array]

    @property
    def total_pages(self) -> int:
        return sum(p.pages for p in self._placements.values())

    def all_lpas(self) -> List[int]:
        lpas: List[int] = []
        for placement in self._placements.values():
            lpas.extend(range(placement.base_lpa, placement.end_lpa))
        return lpas

    def pages_of(self, ref: ArrayRef, element_bits: int) -> List[int]:
        """Logical pages covered by an operand region."""
        placement = self.placement(ref.array)
        start_byte = ref.offset * element_bits // 8
        end_byte = ref.end * element_bits // 8
        first = start_byte // self.page_size_bytes
        last = max(first, math.ceil(end_byte / self.page_size_bytes) - 1)
        first = min(first, placement.pages - 1)
        last = min(last, placement.pages - 1)
        return [placement.base_lpa + page for page in range(first, last + 1)]

    def colocation_groups(self, pages_per_block: int
                          ) -> List[List[int]]:
        """Groups of logical pages that should share a flash block.

        Groups consecutive pages of each array into block-sized chunks so
        that in-flash bitwise operations over an array region find their
        operands colocated (Flash-Cosmos layout constraint, Section 4.4).
        """
        groups: List[List[int]] = []
        for placement in self._placements.values():
            lpas = list(range(placement.base_lpa, placement.end_lpa))
            for start in range(0, len(lpas), pages_per_block):
                group = lpas[start:start + pages_per_block]
                if len(group) > 1:
                    groups.append(group)
        return groups
