"""Mapping of application arrays onto logical pages of the SSD.

Conduit addresses all data at logical-page granularity (Section 4.4): the
FTL's L2P table tracks where each page physically lives, and the offloader
reasons about operand locations in units of logical pages.  This module maps
the compiler-level view (arrays and element ranges) onto logical page
numbers so the runtime, the coherence directory and the data-movement engine
all speak the same address space.

Arrays map to *contiguous* logical page ranges, so every operand region is
one contiguous LPA run.  :meth:`ArrayLayout.page_run_of` resolves an operand
to its ``(base_lpa, page_count)`` run -- the currency of the run-batched
data-movement engine -- and both it and :meth:`ArrayLayout.pages_of` are
memoized so the offloader, the feature collector and the runtimes never
rebuild per-instruction page lists for operands they have already seen.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, List, Tuple

from repro.common import SimulationError
from repro.core.compiler.ir import ArrayRef, ArraySpec


@dataclass(frozen=True)
class ArrayPlacement:
    """Placement of one array: base logical page and page count."""

    spec: ArraySpec
    base_lpa: int
    pages: int

    @property
    def end_lpa(self) -> int:
        return self.base_lpa + self.pages


class ArrayLayout:
    """Assigns logical page ranges to arrays and resolves operand pages."""

    def __init__(self, page_size_bytes: int, base_lpa: int = 0) -> None:
        if page_size_bytes <= 0:
            raise SimulationError("page size must be positive")
        self.page_size_bytes = page_size_bytes
        self._next_lpa = base_lpa
        self._placements: Dict[str, ArrayPlacement] = {}
        #: Memoized operand resolutions keyed by (ref, element_bits).
        self._run_cache: Dict[Tuple[ArrayRef, int], Tuple[int, int]] = {}

    # -- Construction -----------------------------------------------------------

    def place(self, spec: ArraySpec) -> ArrayPlacement:
        """Allocate a contiguous logical page range for ``spec``."""
        if spec.name in self._placements:
            return self._placements[spec.name]
        pages = spec.pages(self.page_size_bytes)
        placement = ArrayPlacement(spec=spec, base_lpa=self._next_lpa,
                                   pages=pages)
        self._placements[spec.name] = placement
        self._next_lpa += pages
        return placement

    def place_all(self, specs: Iterable[ArraySpec]) -> None:
        for spec in specs:
            self.place(spec)

    # -- Queries ------------------------------------------------------------------

    def placement(self, array: str) -> ArrayPlacement:
        if array not in self._placements:
            raise SimulationError(f"array '{array}' has no placement")
        return self._placements[array]

    @property
    def total_pages(self) -> int:
        return sum(p.pages for p in self._placements.values())

    def all_lpas(self) -> List[int]:
        lpas: List[int] = []
        for placement in self._placements.values():
            lpas.extend(range(placement.base_lpa, placement.end_lpa))
        return lpas

    def page_run_of(self, ref: ArrayRef, element_bits: int
                    ) -> Tuple[int, int]:
        """Contiguous LPA run ``(base_lpa, count)`` of an operand region.

        Arrays occupy contiguous logical page ranges, so a contiguous
        element region always resolves to one contiguous run.  Resolutions
        are memoized: repeated instructions over the same operand regions
        (the common case in vectorized loops) hit the cache.
        """
        key = (ref, element_bits)
        run = self._run_cache.get(key)
        if run is None:
            placement = self.placement(ref.array)
            start_byte = ref.offset * element_bits // 8
            end_byte = ref.end * element_bits // 8
            first = start_byte // self.page_size_bytes
            last = max(first, math.ceil(end_byte / self.page_size_bytes) - 1)
            first = min(first, placement.pages - 1)
            last = min(last, placement.pages - 1)
            run = (placement.base_lpa + first, last - first + 1)
            self._run_cache[key] = run
        return run

    def pages_of(self, ref: ArrayRef, element_bits: int) -> List[int]:
        """Logical pages covered by an operand region.

        The resolution itself is memoized through :meth:`page_run_of`; the
        returned list is freshly built, so callers may mutate it.  Hot-path
        consumers should use :meth:`page_run_of` directly and avoid
        materializing page lists at all.
        """
        base, count = self.page_run_of(ref, element_bits)
        return list(range(base, base + count))

    def colocation_groups(self, pages_per_block: int
                          ) -> List[List[int]]:
        """Groups of logical pages that should share a flash block.

        Groups consecutive pages of each array into block-sized chunks so
        that in-flash bitwise operations over an array region find their
        operands colocated (Flash-Cosmos layout constraint, Section 4.4).
        Chunks are sliced directly from each placement's LPA range, so no
        full per-array page list is materialized; single-page groups carry
        no colocation constraint and are skipped.
        """
        if pages_per_block <= 0:
            raise SimulationError("pages_per_block must be positive")
        groups: List[List[int]] = []
        for placement in self._placements.values():
            for start in range(placement.base_lpa, placement.end_lpa,
                               pages_per_block):
                end = min(start + pages_per_block, placement.end_lpa)
                if end - start > 1:
                    groups.append(list(range(start, end)))
        return groups
