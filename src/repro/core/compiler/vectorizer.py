"""Loop auto-vectorization pass.

Reproduces the compile-time preprocessing of Section 4.3.1:

* loops with computations are transformed into wide SIMD operations whose
  width matches the SSD's internal parallelism (``-force-vector-width=4096``
  with 32-bit operands = 16 KiB per vector operand, aligned to flash pages);
* ``-force-vector-interleave=1`` keeps one vector operation per original
  statement so offloading stays at instruction granularity;
* loops that cannot be fully vectorized (control flow, small trip counts)
  are *partially* vectorized via strip-mining, with predication (SELECT)
  inserted for if-converted branches;
* loops with loop-carried dependences or indirect accesses, and scalar
  sections, remain scalar and are emitted as aggregated SCALAR instructions
  that the runtime keeps on general-purpose cores;
* lightweight metadata (operation type, operand sizes, vector length) is
  embedded into each emitted instruction;
* the pass records per-loop remarks analogous to ``-Rpass=loop-vectorize``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.common import OpType, SimulationError
from repro.core.compiler.frontend import Loop, ScalarProgram, ScalarSection
from repro.core.compiler.ir import (ArrayRef, ArraySpec, Immediate,
                                     InstructionMetadata, VectorInstruction,
                                     VectorProgram, DEFAULT_VECTOR_WIDTH)
from repro.common import LatencyClass, OpClass


@dataclass(frozen=True)
class VectorizerConfig:
    """Compiler-flag equivalents."""

    vector_width: int = DEFAULT_VECTOR_WIDTH
    interleave: int = 1
    enable_partial_vectorization: bool = True
    #: Loops shorter than this are not worth vectorizing.
    min_trip_count: int = 64
    #: Effective width used when strip-mining partially vectorizable loops.
    partial_width_divisor: int = 8
    #: Dynamic scalar operations folded into one aggregated SCALAR
    #: instruction (keeps the emitted instruction count tractable while
    #: preserving total scalar work).
    scalar_chunk: int = 4096


@dataclass
class LoopRemark:
    """A per-loop vectorization remark (like ``-Rpass=loop-vectorize``)."""

    loop: str
    vectorized: bool
    partial: bool
    reason: str
    emitted_instructions: int = 0


@dataclass
class VectorizationReport:
    """Summary of one vectorization run."""

    program: str
    total_scalar_operations: int
    vectorized_scalar_operations: int
    total_static_operations: int = 0
    vectorized_static_operations: int = 0
    remarks: List[LoopRemark] = field(default_factory=list)

    @property
    def vectorizable_fraction(self) -> float:
        """Vectorizable code percentage (Table 3): a static-code metric."""
        if self.total_static_operations > 0:
            return (self.vectorized_static_operations /
                    self.total_static_operations)
        if self.total_scalar_operations == 0:
            return 0.0
        return (self.vectorized_scalar_operations /
                self.total_scalar_operations)

    @property
    def dynamic_vectorized_fraction(self) -> float:
        """Fraction of dynamic operations executed as SIMD instructions."""
        if self.total_scalar_operations == 0:
            return 0.0
        return (self.vectorized_scalar_operations /
                self.total_scalar_operations)


class _RegionDependencyTracker:
    """Tracks the last instruction that wrote each array region.

    Dependencies are resolved at vector-chunk granularity: an instruction
    reading a region depends on the most recent instruction that wrote an
    overlapping region (true data dependence).  This is what lets the
    runtime compute the data-dependence delay feature (Table 1).

    Regions are bucketed at a fixed element granularity so that lookups and
    updates stay O(region size / bucket size) even for programs with many
    thousands of emitted instructions.
    """

    BUCKET_ELEMENTS = 1024

    def __init__(self) -> None:
        self._last_writer: Dict[str, Dict[int, int]] = {}

    def _buckets(self, ref: ArrayRef) -> range:
        first = ref.offset // self.BUCKET_ELEMENTS
        last = max(first, (ref.end - 1) // self.BUCKET_ELEMENTS)
        return range(first, last + 1)

    def writers_of(self, ref: ArrayRef) -> List[int]:
        buckets = self._last_writer.get(ref.array)
        if not buckets:
            return []
        writers = {buckets[b] for b in self._buckets(ref) if b in buckets}
        return sorted(writers)

    def record_write(self, ref: ArrayRef, uid: int) -> None:
        buckets = self._last_writer.setdefault(ref.array, {})
        for bucket in self._buckets(ref):
            buckets[bucket] = uid


class AutoVectorizer:
    """The Conduit compile-time vectorization pass."""

    def __init__(self, config: Optional[VectorizerConfig] = None) -> None:
        self.config = config or VectorizerConfig()
        if self.config.vector_width <= 0:
            raise SimulationError("vector width must be positive")

    # -- Entry point -----------------------------------------------------------

    def vectorize(self, program: ScalarProgram
                  ) -> Tuple[VectorProgram, VectorizationReport]:
        """Vectorize ``program`` and return (optimized IR, report)."""
        ir = VectorProgram(program.name, program.arrays.values())
        report = VectorizationReport(
            program=program.name,
            total_scalar_operations=program.total_scalar_operations(),
            vectorized_scalar_operations=0,
            total_static_operations=program.total_static_operations(),
            vectorized_static_operations=0,
        )
        tracker = _RegionDependencyTracker()
        uid = 0
        for loop in program.loops:
            uid = self._emit_loop(ir, loop, tracker, report, uid)
        for section in program.scalar_sections:
            uid = self._emit_scalar_section(ir, section, report, uid)
        ir.validate()
        return ir, report

    # -- Loop handling -----------------------------------------------------------

    def _emit_loop(self, ir: VectorProgram, loop: Loop,
                   tracker: _RegionDependencyTracker,
                   report: VectorizationReport, uid: int) -> int:
        config = self.config
        if loop.is_fully_vectorizable(config.min_trip_count):
            remark = LoopRemark(loop=loop.name, vectorized=True,
                                partial=False,
                                reason="loop vectorized (width "
                                       f"{config.vector_width})")
            uid = self._emit_vector_chunks(ir, loop, config.vector_width,
                                           tracker, remark, uid,
                                           predicated=False)
            report.vectorized_scalar_operations += loop.scalar_operations
            report.vectorized_static_operations += loop.static_operations
        elif (config.enable_partial_vectorization
              and loop.is_partially_vectorizable(config.min_trip_count)):
            width = max(1, config.vector_width // config.partial_width_divisor)
            remark = LoopRemark(loop=loop.name, vectorized=True, partial=True,
                                reason="partially vectorized via "
                                       f"strip-mining (width {width})")
            uid = self._emit_vector_chunks(ir, loop, width, tracker, remark,
                                           uid, predicated=True)
            report.vectorized_scalar_operations += loop.scalar_operations
            report.vectorized_static_operations += loop.static_operations
        else:
            reason = self._failure_reason(loop)
            remark = LoopRemark(loop=loop.name, vectorized=False,
                                partial=False, reason=reason)
            uid = self._emit_scalar_loop(ir, loop, remark, uid)
        report.remarks.append(remark)
        return uid

    @staticmethod
    def _failure_reason(loop: Loop) -> str:
        if loop.loop_carried_dependence:
            return "not vectorized: loop-carried dependence"
        if loop.indirect_accesses:
            return "not vectorized: indirect (gather/scatter) accesses"
        if loop.complex_control_flow:
            return "not vectorized: complex control flow"
        return "not vectorized: trip count below threshold"

    def _emit_vector_chunks(self, ir: VectorProgram, loop: Loop, width: int,
                            tracker: _RegionDependencyTracker,
                            remark: LoopRemark, uid: int, *,
                            predicated: bool) -> int:
        # The configured width (4096) is defined for 32-bit operands, i.e.
        # one 16 KiB flash page per vector operand (Section 4.3.1).  Narrower
        # element types pack proportionally more elements per vector so each
        # instruction still covers one flash page.
        loop_bits = self._loop_element_bits(ir, loop)
        width = max(1, width * 32 // loop_bits)
        chunks = max(1, math.ceil(loop.trip_count / width))
        for _ in range(loop.repetitions):
            for chunk in range(chunks):
                offset = chunk * width
                length = min(width, loop.trip_count - offset)
                if length <= 0:
                    continue
                for statement in loop.body:
                    element_bits = self._element_bits(ir, statement.dest,
                                                      statement.sources)
                    sources: List[object] = []
                    depends: List[int] = []
                    for index, array in enumerate(statement.sources):
                        shift = 0
                        if index < len(statement.source_offsets):
                            shift = statement.source_offsets[index]
                        spec = ir.arrays[array]
                        start = min(max(0, offset + shift),
                                    max(0, spec.elements - length))
                        ref = ArrayRef(array, start, length)
                        sources.append(ref)
                        depends.extend(tracker.writers_of(ref))
                    if statement.uses_immediate:
                        sources.append(Immediate())
                    dest_ref = None
                    if statement.dest is not None:
                        dest_spec = ir.arrays[statement.dest]
                        start = min(offset, max(0, dest_spec.elements - length))
                        dest_ref = ArrayRef(statement.dest, start, length)
                    instruction = VectorInstruction(
                        uid=uid, op=statement.op, dest=dest_ref,
                        sources=tuple(sources), vector_length=length,
                        element_bits=element_bits,
                        depends_on=tuple(sorted(set(depends))),
                        metadata=InstructionMetadata(
                            op_class=OpClass.of(statement.op),
                            latency_class=LatencyClass.of(statement.op),
                            element_bits=element_bits, vector_length=length,
                            operand_bytes=length * element_bits // 8,
                            loop=loop.name,
                            partially_vectorized=predicated,
                        ),
                    )
                    ir.add(instruction)
                    if dest_ref is not None:
                        tracker.record_write(dest_ref, uid)
                    uid += 1
                    remark.emitted_instructions += 1
                if predicated:
                    # If-converted control flow adds a predication SELECT per
                    # chunk operating on the chunk's destination region.
                    last = ir.instructions[-1]
                    if last.dest is not None:
                        select = VectorInstruction(
                            uid=uid, op=OpType.SELECT, dest=last.dest,
                            sources=(last.dest, Immediate()),
                            vector_length=last.vector_length,
                            element_bits=last.element_bits,
                            depends_on=(last.uid,),
                            metadata=InstructionMetadata(
                                op_class=OpClass.PREDICATION,
                                latency_class=LatencyClass.MEDIUM,
                                element_bits=last.element_bits,
                                vector_length=last.vector_length,
                                operand_bytes=last.size_bytes,
                                loop=loop.name, partially_vectorized=True,
                            ),
                        )
                        ir.add(select)
                        tracker.record_write(last.dest, uid)
                        uid += 1
                        remark.emitted_instructions += 1
        return uid

    def _emit_scalar_loop(self, ir: VectorProgram, loop: Loop,
                          remark: LoopRemark, uid: int) -> int:
        """Emit aggregated SCALAR instructions for a non-vectorizable loop."""
        total_ops = loop.scalar_operations
        chunk = self.config.scalar_chunk
        chunks = max(1, math.ceil(total_ops / chunk))
        previous_uid: Optional[int] = None
        for index in range(chunks):
            ops = min(chunk, total_ops - index * chunk)
            depends = (previous_uid,) if previous_uid is not None else ()
            instruction = VectorInstruction(
                uid=uid, op=OpType.SCALAR, dest=None, sources=(),
                vector_length=max(1, ops), element_bits=32,
                depends_on=depends,
                metadata=InstructionMetadata(
                    op_class=OpClass.CONTROL,
                    latency_class=LatencyClass.MEDIUM,
                    element_bits=32, vector_length=max(1, ops),
                    operand_bytes=max(1, ops) * 4, loop=loop.name,
                ),
            )
            ir.add(instruction)
            previous_uid = uid
            uid += 1
            remark.emitted_instructions += 1
        return uid

    def _emit_scalar_section(self, ir: VectorProgram, section: ScalarSection,
                             report: VectorizationReport, uid: int) -> int:
        chunk = self.config.scalar_chunk
        chunks = max(1, math.ceil(section.operation_count / chunk))
        previous_uid: Optional[int] = None
        for index in range(chunks):
            ops = min(chunk, section.operation_count - index * chunk)
            depends = (previous_uid,) if previous_uid is not None else ()
            instruction = VectorInstruction(
                uid=uid, op=section.op, dest=None, sources=(),
                vector_length=max(1, ops), element_bits=32,
                depends_on=depends,
            )
            ir.add(instruction)
            previous_uid = uid
            uid += 1
        report.remarks.append(LoopRemark(
            loop=section.name, vectorized=False, partial=False,
            reason="scalar section (control-intensive code)",
            emitted_instructions=chunks))
        return uid

    # -- Helpers ----------------------------------------------------------------------

    @staticmethod
    def _element_bits(ir: VectorProgram, dest: Optional[str],
                      sources: Tuple[str, ...]) -> int:
        names = list(sources) + ([dest] if dest else [])
        for name in names:
            if name in ir.arrays:
                return ir.arrays[name].element_bits
        return 32

    def _loop_element_bits(self, ir: VectorProgram, loop: Loop) -> int:
        """Dominant element width of a loop (used to size vector chunks)."""
        for statement in loop.body:
            bits = self._element_bits(ir, statement.dest, statement.sources)
            if bits:
                return bits
        return 32
