"""Vector intermediate representation (IR).

Conduit's compile-time preprocessing transforms scalar application loops
into wide SIMD operations and embeds lightweight metadata (instruction type,
operand pointers, element sizes, vector length) into the optimized IR so
that the runtime offloader can make fast decisions without re-analysing the
code (Section 4.3.1).  This module defines that optimized IR:

* :class:`ArraySpec` / :class:`ArrayRef` -- application arrays stored as
  logical pages in the SSD and the regions instructions read/write.
* :class:`VectorInstruction` -- one SIMD operation with embedded metadata
  and explicit data dependencies.
* :class:`VectorProgram` -- the full optimized IR shipped to the SSD.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from repro.common import LatencyClass, OpClass, OpType, SimulationError

#: Default vector width used by the paper's compiler flags
#: (``-force-vector-width=4096`` for 32-bit operands -> 16 KiB vectors).
DEFAULT_VECTOR_WIDTH = 4096
DEFAULT_ELEMENT_BITS = 32


@dataclass(frozen=True)
class ArraySpec:
    """One application array resident in the SSD."""

    name: str
    elements: int
    element_bits: int = DEFAULT_ELEMENT_BITS

    @property
    def size_bytes(self) -> int:
        return self.elements * self.element_bits // 8

    def pages(self, page_size_bytes: int) -> int:
        return max(1, math.ceil(self.size_bytes / page_size_bytes))


@dataclass(frozen=True)
class ArrayRef:
    """A contiguous region of an array used as an operand."""

    array: str
    offset: int
    length: int

    def __post_init__(self) -> None:
        # References key the layout's memoized run resolutions, so their
        # hash is probed on every operand lookup; cache it (the value is
        # identical to the generated field-tuple hash).
        object.__setattr__(self, "_hash",
                           hash((self.array, self.offset, self.length)))

    def __hash__(self) -> int:
        return self._hash

    def __eq__(self, other: object) -> bool:
        # Same contract as the generated field-tuple __eq__, with an
        # identity fast path: layout-cache probes compare refs that are
        # usually the same object or differ in a trailing field.
        if self is other:
            return True
        if other.__class__ is ArrayRef:
            return (self.array == other.array
                    and self.offset == other.offset
                    and self.length == other.length)
        return NotImplemented

    def size_bytes(self, element_bits: int) -> int:
        return self.length * element_bits // 8

    @property
    def end(self) -> int:
        return self.offset + self.length

    def overlaps(self, other: "ArrayRef") -> bool:
        if self.array != other.array:
            return False
        return self.offset < other.end and other.offset < self.end


@dataclass(frozen=True)
class Immediate:
    """A constant operand (broadcast across the vector)."""

    value: float = 0.0


Operand = object  # ArrayRef | Immediate


@dataclass
class InstructionMetadata:
    """Metadata embedded at compile time to guide runtime offloading.

    The paper's Section 4.5 storage-overhead analysis lists exactly these
    fields: two bytes of operation type, four bits of operand location hint,
    element sizes, and the vector length.
    """

    op_class: OpClass
    latency_class: LatencyClass
    element_bits: int
    vector_length: int
    operand_bytes: int
    loop: str = ""
    partially_vectorized: bool = False

    def encoded_bytes(self) -> int:
        """Size of this metadata when packed into the optimized IR."""
        # op type (2) + operand-location hint (1) + element size (1)
        # + vector length (2) + operand size (4) + flags (1)
        return 11


@dataclass
class VectorInstruction:
    """One SIMD instruction in the optimized IR."""

    uid: int
    op: OpType
    dest: Optional[ArrayRef]
    sources: Tuple[Operand, ...]
    vector_length: int = DEFAULT_VECTOR_WIDTH
    element_bits: int = DEFAULT_ELEMENT_BITS
    depends_on: Tuple[int, ...] = ()
    metadata: Optional[InstructionMetadata] = None

    def __post_init__(self) -> None:
        if self.vector_length <= 0:
            raise SimulationError("vector length must be positive")
        if self.element_bits not in (8, 16, 32, 64):
            raise SimulationError(
                f"unsupported element width {self.element_bits}")
        # Operands and widths are fixed at construction, so the derived
        # operand size and source-reference list are materialized once
        # (the offloader reads both on every feature collection).
        self.size_bytes: int = self.vector_length * self.element_bits // 8
        self.array_sources: List[ArrayRef] = [
            s for s in self.sources if isinstance(s, ArrayRef)]
        if self.metadata is None:
            self.metadata = InstructionMetadata(
                op_class=OpClass.of(self.op),
                latency_class=LatencyClass.of(self.op),
                element_bits=self.element_bits,
                vector_length=self.vector_length,
                operand_bytes=self.size_bytes,
            )

    @property
    def is_vector(self) -> bool:
        return self.op not in (OpType.SCALAR, OpType.BRANCH, OpType.CALL)

    def touched_arrays(self) -> List[str]:
        arrays = [ref.array for ref in self.array_sources]
        if self.dest is not None:
            arrays.append(self.dest.array)
        return arrays


class VectorProgram:
    """The optimized IR for one application: arrays plus instructions."""

    def __init__(self, name: str,
                 arrays: Iterable[ArraySpec] = ()) -> None:
        self.name = name
        self.arrays: Dict[str, ArraySpec] = {a.name: a for a in arrays}
        self.instructions: List[VectorInstruction] = []
        #: Encoded-binary cache maintained by the binary encoder; any
        #: mutation of the program invalidates it.
        self._encoded_binary = None
        #: Canonical instance per distinct operand reference.  Interning at
        #: build time turns the layout cache's equality probes (one per
        #: operand per offload) into pure identity hits.
        self._ref_intern: Dict[ArrayRef, ArrayRef] = {}
        #: Wave-plan cache maintained by the batched offload engine's
        #: dependency slicer (:mod:`repro.core.compiler.waves`): one
        #: ``(key, plan)`` entry, invalidated on any program mutation.
        #: Array placement is deterministic per program, so the plan is
        #: reusable across every run of the same compiled program.
        self._wave_plan: Optional[tuple] = None

    def __len__(self) -> int:
        return len(self.instructions)

    def __iter__(self) -> Iterator[VectorInstruction]:
        return iter(self.instructions)

    # -- Construction -----------------------------------------------------------

    def declare_array(self, spec: ArraySpec) -> ArraySpec:
        self.arrays[spec.name] = spec
        self._encoded_binary = None
        self._wave_plan = None
        return spec

    def add(self, instruction: VectorInstruction) -> VectorInstruction:
        for ref in instruction.array_sources + (
                [instruction.dest] if instruction.dest else []):
            if ref.array not in self.arrays:
                raise SimulationError(
                    f"instruction {instruction.uid} references undeclared "
                    f"array '{ref.array}'")
        intern = self._ref_intern.setdefault
        if instruction.dest is not None:
            instruction.dest = intern(instruction.dest, instruction.dest)
        instruction.sources = tuple(
            intern(s, s) if s.__class__ is ArrayRef else s
            for s in instruction.sources)
        instruction.array_sources = [
            s for s in instruction.sources if s.__class__ is ArrayRef]
        self.instructions.append(instruction)
        self._encoded_binary = None
        self._wave_plan = None
        return instruction

    # -- Queries ------------------------------------------------------------------

    def instruction(self, uid: int) -> VectorInstruction:
        for instruction in self.instructions:
            if instruction.uid == uid:
                return instruction
        raise KeyError(uid)

    @property
    def vector_instructions(self) -> List[VectorInstruction]:
        return [i for i in self.instructions if i.is_vector]

    @property
    def scalar_instructions(self) -> List[VectorInstruction]:
        return [i for i in self.instructions if not i.is_vector]

    def total_data_bytes(self) -> int:
        return sum(spec.size_bytes for spec in self.arrays.values())

    def total_operand_bytes(self) -> int:
        total = 0
        for instruction in self.instructions:
            operands = len(instruction.array_sources)
            if instruction.dest is not None:
                operands += 1
            total += operands * instruction.size_bytes
        return total

    def op_histogram(self) -> Dict[OpType, int]:
        histogram: Dict[OpType, int] = {}
        for instruction in self.instructions:
            histogram[instruction.op] = histogram.get(instruction.op, 0) + 1
        return histogram

    def latency_class_mix(self) -> Dict[LatencyClass, float]:
        """Fraction of instructions in each latency class (Table 3)."""
        if not self.instructions:
            return {cls: 0.0 for cls in LatencyClass}
        counts = {cls: 0 for cls in LatencyClass}
        for instruction in self.instructions:
            counts[LatencyClass.of(instruction.op)] += 1
        total = len(self.instructions)
        return {cls: counts[cls] / total for cls in LatencyClass}

    def validate(self) -> None:
        """Check dependency references and array bounds."""
        seen = set()
        for instruction in self.instructions:
            for dep in instruction.depends_on:
                if dep not in seen:
                    raise SimulationError(
                        f"instruction {instruction.uid} depends on {dep}, "
                        f"which does not precede it")
            refs = list(instruction.array_sources)
            if instruction.dest is not None:
                refs.append(instruction.dest)
            for ref in refs:
                spec = self.arrays[ref.array]
                if ref.end > spec.elements:
                    raise SimulationError(
                        f"instruction {instruction.uid} accesses "
                        f"{ref.array}[{ref.offset}:{ref.end}] beyond "
                        f"{spec.elements} elements")
            seen.add(instruction.uid)
