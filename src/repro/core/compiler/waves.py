"""Dependency slicer: group the optimized IR into ready waves.

The wave-batched offload engine (``PlatformConfig.batched_offload``)
precollects offload-decision features for several instructions at once.
That is only sound when no instruction in the group can perturb another
group member's features before the member's own decision time, so the
slicer cuts the instruction stream into contiguous program-order *waves*
whose members are pairwise

* **dependence-free** -- no member names another member in its
  ``depends_on`` list (no member consumes another member's output), and
* **page-disjoint** -- no member's touched pages (source *and*
  destination runs, at LPA-run granularity) overlap another member's.
  Read-read sharing conflicts too: dispatching one reader *moves* the
  shared operand to the reader's home location, which would invalidate
  the other member's precollected location histogram.

Under these two conditions the only ways a member's dispatch can still
perturb a later member's features are capacity evictions (tracked by
``SSDPlatform.eviction_epoch``) and mapping-cache membership changes
(tracked by ``MappingCache.version``); the offloader revalidates both
snapshots before every member and falls back to the reference
per-instruction path on any hazard, which is what makes the wave engine
bit-exact by construction.

Plans are memoized on the program (:class:`VectorProgram` invalidates on
mutation): array placement is deterministic per program, so the layout
resolution and the O(waves x runs) overlap scan run once per compiled
program instead of once per sweep run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.core.compiler.ir import VectorProgram
from repro.core.layout import ArrayLayout

#: Upper bound on wave length.  Purely a working-set knob -- any value
#: yields bit-identical results (the precollected arrays just cover fewer
#: or more members) -- so it is a module constant, not a config field the
#: sweep cache would have to key or exempt.
MAX_WAVE = 32


@dataclass(frozen=True)
class WavePlan:
    """Waves plus the per-instruction operand-run resolutions they reuse."""

    #: Instruction indices (positions in ``program.instructions``), one
    #: tuple per wave, covering every instruction exactly once in program
    #: order.
    waves: Tuple[Tuple[int, ...], ...]
    #: Per instruction: the source operands' ``(base_lpa, count)`` runs.
    source_runs: Tuple[Tuple[Tuple[int, int], ...], ...]
    #: Per instruction: the destination run (``None`` when no dest).
    dest_runs: Tuple[Optional[Tuple[int, int]], ...]
    #: The three arrays above pre-sliced per wave, so the dispatch loop
    #: hands each wave's views straight to the collector instead of
    #: rebuilding member lists on every run of the (cached) plan.
    wave_instructions: Tuple[tuple, ...]
    wave_sources: Tuple[tuple, ...]
    wave_dests: Tuple[tuple, ...]


def wave_plan(program: VectorProgram, layout: ArrayLayout,
              max_wave: int = MAX_WAVE) -> WavePlan:
    """Slice ``program`` into ready waves under ``layout``'s placement."""
    key = (layout.page_size_bytes, max_wave)
    cached = program._wave_plan
    if cached is not None and cached[0] == key:
        return cached[1]

    run_of = layout.page_run_of
    source_runs: List[Tuple[Tuple[int, int], ...]] = []
    dest_runs: List[Optional[Tuple[int, int]]] = []
    waves: List[Tuple[int, ...]] = []
    current: List[int] = []
    current_uids: set = set()
    #: ``(base, end)`` LPA intervals touched by the current wave.
    intervals: List[Tuple[int, int]] = []
    for index, instruction in enumerate(program.instructions):
        element_bits = instruction.element_bits
        runs = tuple(run_of(ref, element_bits)
                     for ref in instruction.array_sources)
        dest = (run_of(instruction.dest, element_bits)
                if instruction.dest is not None else None)
        source_runs.append(runs)
        dest_runs.append(dest)
        touched = runs + ((dest,) if dest is not None else ())
        conflict = len(current) >= max_wave
        if not conflict:
            for dep in instruction.depends_on:
                if dep in current_uids:
                    conflict = True
                    break
        if not conflict:
            for base, count in touched:
                end = base + count
                for other_base, other_end in intervals:
                    if base < other_end and other_base < end:
                        conflict = True
                        break
                if conflict:
                    break
        if conflict and current:
            waves.append(tuple(current))
            current = []
            current_uids = set()
            intervals = []
        current.append(index)
        current_uids.add(instruction.uid)
        for base, count in touched:
            intervals.append((base, base + count))
    if current:
        waves.append(tuple(current))

    instructions = program.instructions
    plan = WavePlan(
        tuple(waves), tuple(source_runs), tuple(dest_runs),
        wave_instructions=tuple(
            tuple(instructions[i] for i in wave) for wave in waves),
        wave_sources=tuple(
            tuple(source_runs[i] for i in wave) for wave in waves),
        wave_dests=tuple(
            tuple(dest_runs[i] for i in wave) for wave in waves))
    program._wave_plan = (key, plan)
    return plan
