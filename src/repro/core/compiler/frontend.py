"""Scalar loop-program frontend.

Conduit is programmer transparent: the programmer writes ordinary loops and
the compiler pass decides what to vectorize.  Since this reproduction does
not ship an LLVM frontend, workloads describe themselves in a small explicit
loop IR -- the equivalent of the LLVM IR the paper's custom pass consumes --
consisting of arrays, loop nests with per-iteration statements, and
non-vectorizable scalar sections.

The frontend performs the legality analysis the paper's Section 7 discusses:
loops with loop-carried dependences, indirect accesses, complex control flow
or tiny trip counts are flagged so the vectorizer can fall back to partial
vectorization (strip-mining) or leave them scalar.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.common import OpType, SimulationError
from repro.core.compiler.ir import ArraySpec

#: IR-level operations one source statement lowers to (loads, address
#: arithmetic, the operation, stores, induction-variable updates).  Used to
#: express loop static code size in the same units as scalar sections.
STATIC_OPS_PER_STATEMENT = 16


@dataclass(frozen=True)
class ScalarStatement:
    """One statement of a loop body, executed once per iteration.

    ``dest`` and ``sources`` name arrays indexed by the loop induction
    variable (affine accesses); ``uses_immediate`` marks a constant operand.
    """

    op: OpType
    dest: Optional[str]
    sources: Tuple[str, ...] = ()
    uses_immediate: bool = False
    #: Element offset applied to the source index (e.g. stencil neighbours
    #: a[i-1], a[i+1]); non-zero offsets on the destination array create a
    #: loop-carried dependence.
    source_offsets: Tuple[int, ...] = ()


@dataclass
class Loop:
    """A (possibly only partially vectorizable) counted loop."""

    name: str
    trip_count: int
    body: List[ScalarStatement] = field(default_factory=list)
    #: True when an iteration reads values produced by earlier iterations
    #: of the same loop (e.g. a recurrence), which blocks full vectorization.
    loop_carried_dependence: bool = False
    #: True when the body has data-dependent branches with side effects or
    #: multiple exits; simple if-conversion is handled via SELECT statements.
    complex_control_flow: bool = False
    #: True when the body performs indirect (gather/scatter) accesses.
    indirect_accesses: bool = False
    #: Number of distinct time steps / outer repetitions of this loop.
    repetitions: int = 1

    def statement_count(self) -> int:
        return len(self.body)

    @property
    def scalar_operations(self) -> int:
        """Total dynamic scalar operations this loop performs."""
        return self.trip_count * len(self.body) * self.repetitions

    def is_fully_vectorizable(self, min_trip_count: int) -> bool:
        return (not self.loop_carried_dependence
                and not self.complex_control_flow
                and not self.indirect_accesses
                and self.trip_count >= min_trip_count)

    def is_partially_vectorizable(self, min_trip_count: int) -> bool:
        """Strip-mining applies when only control flow blocks vectorization."""
        if self.is_fully_vectorizable(min_trip_count):
            return False
        return (self.trip_count >= min_trip_count
                and not self.loop_carried_dependence)

    @property
    def static_operations(self) -> int:
        """Static code size of the loop body.

        Each source-level statement lowers to several IR-level operations
        (address computation, loads, the operation itself, stores, loop
        bookkeeping), so static size is counted in IR-operation units.
        """
        return len(self.body) * STATIC_OPS_PER_STATEMENT


@dataclass
class ScalarSection:
    """Non-loop, control-intensive code: always stays scalar.

    ``operation_count`` is the *dynamic* number of scalar operations the
    section executes, while ``static_operations`` is its static code size.
    The paper's "Vectorizable Code %" (Table 3) is a code-level metric, so
    workloads set ``static_operations`` to match it even though the dynamic
    execution is dominated by the vectorized loops.
    """

    name: str
    operation_count: int
    op: OpType = OpType.SCALAR
    static_operations: int = 0


class ScalarProgram:
    """The application as seen by Conduit's compiler pass."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.arrays: Dict[str, ArraySpec] = {}
        self.loops: List[Loop] = []
        self.scalar_sections: List[ScalarSection] = []

    # -- Construction -------------------------------------------------------------

    def declare_array(self, name: str, elements: int,
                      element_bits: int = 32) -> ArraySpec:
        if elements <= 0:
            raise SimulationError(f"array '{name}' must have > 0 elements")
        spec = ArraySpec(name=name, elements=elements,
                         element_bits=element_bits)
        self.arrays[name] = spec
        return spec

    def add_loop(self, loop: Loop) -> Loop:
        for statement in loop.body:
            for array in list(statement.sources) + (
                    [statement.dest] if statement.dest else []):
                if array not in self.arrays:
                    raise SimulationError(
                        f"loop '{loop.name}' references undeclared array "
                        f"'{array}'")
        self.loops.append(loop)
        return loop

    def add_scalar_section(self, section: ScalarSection) -> ScalarSection:
        self.scalar_sections.append(section)
        return section

    # -- Static characteristics ------------------------------------------------------

    def total_scalar_operations(self) -> int:
        loops = sum(loop.scalar_operations for loop in self.loops)
        sections = sum(s.operation_count for s in self.scalar_sections)
        return loops + sections

    def loop_operations(self) -> int:
        return sum(loop.scalar_operations for loop in self.loops)

    def total_static_operations(self) -> int:
        """Static code size: loop-body statements plus scalar-section code."""
        loops = sum(loop.static_operations for loop in self.loops)
        sections = sum(max(s.static_operations, 1)
                       for s in self.scalar_sections)
        return loops + sections

    def loop_static_operations(self) -> int:
        return sum(loop.static_operations for loop in self.loops)

    def footprint_bytes(self) -> int:
        return sum(spec.size_bytes for spec in self.arrays.values())

    def array(self, name: str) -> ArraySpec:
        return self.arrays[name]
