"""Conduit compile-time preprocessing: loop IR, auto-vectorizer, binary."""

from repro.core.compiler.binary import (BinaryDecoder, BinaryEncoder,
                                        ConduitBinary, estimate_binary_bytes,
                                        transfer_binary)
from repro.core.compiler.frontend import (Loop, ScalarProgram, ScalarSection,
                                          ScalarStatement)
from repro.core.compiler.ir import (ArrayRef, ArraySpec, Immediate,
                                    InstructionMetadata, VectorInstruction,
                                    VectorProgram, DEFAULT_ELEMENT_BITS,
                                    DEFAULT_VECTOR_WIDTH)
from repro.core.compiler.vectorizer import (AutoVectorizer, LoopRemark,
                                            VectorizationReport,
                                            VectorizerConfig)

__all__ = [
    "BinaryDecoder", "BinaryEncoder", "ConduitBinary",
    "estimate_binary_bytes", "transfer_binary", "Loop", "ScalarProgram",
    "ScalarSection", "ScalarStatement", "ArrayRef", "ArraySpec", "Immediate",
    "InstructionMetadata", "VectorInstruction", "VectorProgram",
    "DEFAULT_ELEMENT_BITS", "DEFAULT_VECTOR_WIDTH", "AutoVectorizer",
    "LoopRemark", "VectorizationReport", "VectorizerConfig",
]
