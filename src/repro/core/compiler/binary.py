"""Conduit binary packaging and transfer.

The optimized IR is compiled to an ARM binary on the host and shipped to the
SSD through the existing NVMe firmware-update admin commands, extended with
a flag that marks the payload as a Conduit binary (Section 4.3.1 / 4.4).

This module packages a :class:`VectorProgram` into a byte-level binary image
(a deterministic, self-describing encoding that round-trips), estimates its
size the way the runtime-overhead analysis needs, and drives the
``fw-download`` / ``fw-commit`` transfer against an :class:`NVMeInterface`.
"""

from __future__ import annotations

import json
import struct
import zlib
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.common import OpType, SimulationError
from repro.core.compiler.ir import (ArrayRef, ArraySpec, Immediate,
                                     VectorInstruction, VectorProgram)
from repro.ssd.nvme import NVMeInterface

_MAGIC = b"CNDT"
_VERSION = 1
#: Fixed encoded size of one instruction record: uid (4), op (2), element
#: bits (1), operand count (1), vector length (4), dependency count (2).
_INSTRUCTION_HEADER_BYTES = 14
#: Encoded size of one operand reference (array id 2, offset 4, length 4).
_OPERAND_BYTES = 10
_DEPENDENCY_BYTES = 4


@dataclass
class ConduitBinary:
    """An encoded Conduit binary image."""

    program_name: str
    image: bytes
    instruction_count: int

    @property
    def size_bytes(self) -> int:
        return len(self.image)

    @property
    def checksum(self) -> int:
        return zlib.crc32(self.image)


class BinaryEncoder:
    """Encodes a :class:`VectorProgram` into a Conduit binary image."""

    def encode(self, program: VectorProgram) -> ConduitBinary:
        # The encoding is deterministic and depends only on the program
        # contents, so one image per program object suffices; the program
        # invalidates the cache on mutation.
        cached = getattr(program, "_encoded_binary", None)
        if cached is not None:
            return cached
        binary = self._encode(program)
        program._encoded_binary = binary
        return binary

    def _encode(self, program: VectorProgram) -> ConduitBinary:
        arrays = sorted(program.arrays.values(), key=lambda a: a.name)
        array_ids = {spec.name: index for index, spec in enumerate(arrays)}
        header = {
            "name": program.name,
            "version": _VERSION,
            "arrays": [[a.name, a.elements, a.element_bits] for a in arrays],
        }
        header_bytes = json.dumps(header, sort_keys=True).encode("utf-8")
        ops = sorted(OpType, key=lambda o: o.value)
        op_ids = {op: index for index, op in enumerate(ops)}
        body = bytearray()
        for instruction in program.instructions:
            body.extend(self._encode_instruction(instruction, array_ids,
                                                 op_ids))
        image = bytearray()
        image.extend(_MAGIC)
        image.extend(struct.pack("<I", len(header_bytes)))
        image.extend(header_bytes)
        image.extend(struct.pack("<I", len(program.instructions)))
        image.extend(body)
        return ConduitBinary(program_name=program.name, image=bytes(image),
                             instruction_count=len(program.instructions))

    @staticmethod
    def _encode_instruction(instruction: VectorInstruction,
                            array_ids: Dict[str, int],
                            op_ids: Dict[OpType, int]) -> bytes:
        operands: List[Tuple[int, int, int]] = []
        refs = list(instruction.array_sources)
        if instruction.dest is not None:
            refs = [instruction.dest] + refs
        for ref in refs:
            operands.append((array_ids[ref.array], ref.offset, ref.length))
        record = bytearray()
        record.extend(struct.pack(
            "<IHBBIH", instruction.uid, op_ids[instruction.op],
            instruction.element_bits, len(operands),
            instruction.vector_length, len(instruction.depends_on)))
        for array_id, offset, length in operands:
            record.extend(struct.pack("<HII", array_id, offset, length))
        for dep in instruction.depends_on:
            record.extend(struct.pack("<I", dep))
        return bytes(record)


class BinaryDecoder:
    """Decodes a Conduit binary image back into a :class:`VectorProgram`.

    The SSD-side runtime uses this to rebuild the instruction stream after
    the firmware-download transfer; round-tripping also gives the tests a
    strong integrity check on the encoding.
    """

    def decode(self, binary: ConduitBinary) -> VectorProgram:
        image = binary.image
        if image[:4] != _MAGIC:
            raise SimulationError("not a Conduit binary (bad magic)")
        cursor = 4
        (header_len,) = struct.unpack_from("<I", image, cursor)
        cursor += 4
        header = json.loads(image[cursor:cursor + header_len].decode("utf-8"))
        cursor += header_len
        if header.get("version") != _VERSION:
            raise SimulationError("unsupported Conduit binary version")
        program = VectorProgram(header["name"])
        arrays: List[ArraySpec] = []
        for name, elements, element_bits in header["arrays"]:
            spec = ArraySpec(name=name, elements=elements,
                             element_bits=element_bits)
            arrays.append(spec)
            program.declare_array(spec)
        (instruction_count,) = struct.unpack_from("<I", image, cursor)
        cursor += 4
        ops = sorted(OpType, key=lambda o: o.value)
        for _ in range(instruction_count):
            cursor = self._decode_instruction(program, image, cursor, arrays,
                                              ops)
        return program

    @staticmethod
    def _decode_instruction(program: VectorProgram, image: bytes,
                            cursor: int, arrays: List[ArraySpec],
                            ops: List[OpType]) -> int:
        (uid, op_id, element_bits, operand_count, vector_length,
         dep_count) = struct.unpack_from("<IHBBIH", image, cursor)
        cursor += _INSTRUCTION_HEADER_BYTES
        refs: List[ArrayRef] = []
        for _ in range(operand_count):
            array_id, offset, length = struct.unpack_from("<HII", image,
                                                          cursor)
            cursor += _OPERAND_BYTES
            refs.append(ArrayRef(arrays[array_id].name, offset, length))
        depends: List[int] = []
        for _ in range(dep_count):
            (dep,) = struct.unpack_from("<I", image, cursor)
            cursor += _DEPENDENCY_BYTES
            depends.append(dep)
        dest = refs[0] if refs else None
        sources = tuple(refs[1:]) if len(refs) > 1 else ()
        program.add(VectorInstruction(
            uid=uid, op=ops[op_id], dest=dest, sources=sources,
            vector_length=vector_length, element_bits=element_bits,
            depends_on=tuple(depends)))
        return cursor


def estimate_binary_bytes(program: VectorProgram) -> int:
    """Closed-form size estimate without building the image."""
    size = len(_MAGIC) + 8 + 128  # magic + lengths + approximate header
    for instruction in program.instructions:
        operands = len(instruction.array_sources)
        if instruction.dest is not None:
            operands += 1
        size += (_INSTRUCTION_HEADER_BYTES + operands * _OPERAND_BYTES +
                 len(instruction.depends_on) * _DEPENDENCY_BYTES)
    return size


def transfer_binary(nvme: NVMeInterface, binary: ConduitBinary,
                    now: float = 0.0) -> float:
    """Ship a Conduit binary to the SSD via fw-download / fw-commit.

    Returns the virtual time at which the commit completes.
    """
    return nvme.download_binary(now, binary.size_bytes)
