"""Lazy coherence between SSD computation resources.

Conduit maintains coherence at logical-page granularity using lightweight
metadata stored alongside the L2P table in SSD DRAM (Section 4.4).  Each
logical page has three fields:

* **owner** -- the computation-resource location (flash, SSD DRAM, or
  controller SRAM) holding the latest version of the page;
* **state** -- clean or dirty;
* **version** -- a one-byte monotonically increasing counter used to order
  updates and detect stale copies.

Synchronisation is *lazy*: data is written back to flash only when another
computation resource (or the host) requests the page, when it must be
evicted to reuse the temporary location, on garbage collection, or on a
power cycle.  A strict flush-on-every-write policy is modelled as well so
the ablation benchmark can quantify why the paper rejects it.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

from repro.common import DataLocation, SimulationError

#: Size of the version counter in bits (stored as one byte; a 3-bit counter
#: would suffice for the evaluated workloads -- Section 4.4, footnote 4).
VERSION_BITS = 8
_VERSION_WRAP = 2 ** VERSION_BITS

#: Shared empty action list: returned (and never mutated) by the run-level
#: hooks when no synchronisation is needed, so clean-path calls allocate
#: nothing.
_NO_ACTIONS: List["SyncAction"] = []


class PageCoherenceState(enum.Enum):
    CLEAN = "clean"
    DIRTY = "dirty"


class CoherencePolicy(enum.Enum):
    """Lazy (paper) vs strict (ablation) synchronisation."""

    LAZY = "lazy"
    STRICT = "strict"


@dataclass(slots=True)
class CoherenceEntry:
    """Owner / state / version triple for one logical page."""

    owner: DataLocation = DataLocation.FLASH
    state: PageCoherenceState = PageCoherenceState.CLEAN
    version: int = 0

    #: Bytes this entry adds to the L2P table: owner (1) + state (1) +
    #: version (1).
    METADATA_BYTES = 3


@dataclass
class SyncAction:
    """One synchronisation the directory requests from the platform."""

    lpa: int
    from_location: DataLocation
    #: Commit target is always flash (the durable home of every page).
    to_location: DataLocation = DataLocation.FLASH
    reason: str = ""


class CoherenceDirectory:
    """Tracks owner/state/version for every logical page touched by NDP."""

    def __init__(self, policy: CoherencePolicy = CoherencePolicy.LAZY) -> None:
        self.policy = policy
        self._entries: Dict[int, CoherenceEntry] = {}
        #: Logical pages currently in the DIRTY state.  The run-granular
        #: entry points use this index to skip per-page scans of runs whose
        #: pages are all clean (the common case on the read path).
        self._dirty: set = set()
        self.flushes = 0
        self.version_wraps = 0

    # -- Entry access --------------------------------------------------------

    def entry(self, lpa: int) -> CoherenceEntry:
        if lpa not in self._entries:
            self._entries[lpa] = CoherenceEntry()
        return self._entries[lpa]

    def owner(self, lpa: int) -> DataLocation:
        return self.entry(lpa).owner

    def is_dirty(self, lpa: int) -> bool:
        return self.entry(lpa).state is PageCoherenceState.DIRTY

    def tracked_pages(self) -> int:
        return len(self._entries)

    def metadata_bytes(self) -> int:
        """Coherence metadata footprint in SSD DRAM."""
        return len(self._entries) * CoherenceEntry.METADATA_BYTES

    # -- Reads ------------------------------------------------------------------

    def on_read(self, lpa: int,
                reader_location: DataLocation) -> List[SyncAction]:
        """A computation resource (or the host) reads ``lpa``.

        If another resource holds a dirty copy, the lazy protocol commits the
        page to flash first (Section 4.4: "If another computation resource or
        the host requests the page, Conduit commits the updated page to the
        NAND flash chips, sets the owner field to flash, marks the state as
        clean, and resets the version").
        """
        entry = self.entry(lpa)
        actions: List[SyncAction] = []
        if (entry.state is PageCoherenceState.DIRTY
                and entry.owner is not reader_location):
            actions.append(SyncAction(lpa=lpa, from_location=entry.owner,
                                      reason="remote read of dirty page"))
            self._commit(lpa, entry)
        return actions

    def on_read_run(self, base_lpa: int, count: int,
                    reader_location: DataLocation) -> List[SyncAction]:
        """Run-granular :meth:`on_read` over ``[base_lpa, base_lpa+count)``.

        Equivalent to calling ``on_read`` for every page of the run in
        ascending order.  When no page of the run is dirty (checked against
        the dirty index without touching per-page entries), the scan reduces
        to materialising the run's tracking entries.
        """
        end = base_lpa + count
        dirty = self._dirty
        entries = self._entries
        if not dirty:
            # Clean run (the steady state): no commits are possible; only
            # the run's tracking entries are materialised.
            for lpa in range(base_lpa, end):
                if lpa not in entries:
                    entries[lpa] = CoherenceEntry()
            return _NO_ACTIONS
        if len(dirty) <= count:
            dirty_in_run = sorted(
                lpa for lpa in dirty if base_lpa <= lpa < end)
        else:
            dirty_in_run = [lpa for lpa in range(base_lpa, end)
                            if lpa in dirty]
        actions: List[SyncAction] = []
        # Only dirty pages can generate commits; visiting them in ascending
        # LPA order reproduces the per-page scan's action order.  (The list
        # is materialized first because committing mutates the dirty index.)
        for lpa in dirty_in_run:
            entry = entries[lpa]
            if entry.owner is not reader_location:
                actions.append(SyncAction(lpa=lpa, from_location=entry.owner,
                                          reason="remote read of dirty page"))
                self._commit(lpa, entry)
        for lpa in range(base_lpa, end):
            if lpa not in entries:
                entries[lpa] = CoherenceEntry()
        return actions

    # -- Writes -----------------------------------------------------------------

    def on_write(self, lpa: int,
                 writer_location: DataLocation) -> List[SyncAction]:
        """A computation resource produces a new version of ``lpa``."""
        entry = self.entry(lpa)
        actions: List[SyncAction] = []
        if (entry.state is PageCoherenceState.DIRTY
                and entry.owner is not writer_location):
            actions.append(SyncAction(lpa=lpa, from_location=entry.owner,
                                      reason="remote write of dirty page"))
            self._commit(lpa, entry)
        entry.owner = writer_location
        entry.state = PageCoherenceState.DIRTY
        self._dirty.add(lpa)
        entry.version += 1
        if entry.version >= _VERSION_WRAP:
            # Flush before the counter wraps (correctness rule, footnote 4).
            actions.append(SyncAction(lpa=lpa, from_location=entry.owner,
                                      reason="version counter wrap"))
            self._commit(lpa, entry)
            self.version_wraps += 1
        if self.policy is CoherencePolicy.STRICT:
            actions.append(SyncAction(lpa=lpa, from_location=writer_location,
                                      reason="strict coherence write-through"))
            self._commit(lpa, entry)
        return actions

    def on_write_run(self, base_lpa: int, count: int,
                     writer_location: DataLocation) -> List[SyncAction]:
        """Run-granular :meth:`on_write` (every write mutates its entry)."""
        if self.policy is not CoherencePolicy.LAZY:
            actions = []
            for lpa in range(base_lpa, base_lpa + count):
                actions.extend(self.on_write(lpa, writer_location))
            return actions
        # Inlined lazy-path :meth:`on_write` (no strict write-through).
        entries = self._entries
        dirty_add = self._dirty.add
        dirty_state = PageCoherenceState.DIRTY
        actions: Optional[List[SyncAction]] = None
        for lpa in range(base_lpa, base_lpa + count):
            entry = entries.get(lpa)
            if entry is None:
                entry = entries[lpa] = CoherenceEntry()
            if (entry.state is dirty_state
                    and entry.owner is not writer_location):
                if actions is None:
                    actions = []
                actions.append(SyncAction(
                    lpa=lpa, from_location=entry.owner,
                    reason="remote write of dirty page"))
                self._commit(lpa, entry)
            entry.owner = writer_location
            entry.state = dirty_state
            dirty_add(lpa)
            entry.version += 1
            if entry.version >= _VERSION_WRAP:
                if actions is None:
                    actions = []
                actions.append(SyncAction(
                    lpa=lpa, from_location=entry.owner,
                    reason="version counter wrap"))
                self._commit(lpa, entry)
                self.version_wraps += 1
        return _NO_ACTIONS if actions is None else actions

    # -- Evictions / maintenance -----------------------------------------------------

    def on_evict(self, lpa: int) -> List[SyncAction]:
        """The page's temporary location is being reclaimed."""
        entry = self.entry(lpa)
        if entry.state is PageCoherenceState.DIRTY:
            action = SyncAction(lpa=lpa, from_location=entry.owner,
                                reason="eviction from temporary location")
            self._commit(lpa, entry)
            return [action]
        entry.owner = DataLocation.FLASH
        return []

    def on_host_request(self, lpa: int) -> List[SyncAction]:
        return self.on_read(lpa, DataLocation.HOST)

    def on_gc(self, lpas: Iterable[int]) -> List[SyncAction]:
        """Garbage collection forces synchronisation of affected pages."""
        actions: List[SyncAction] = []
        for lpa in lpas:
            entry = self.entry(lpa)
            if entry.state is PageCoherenceState.DIRTY:
                actions.append(SyncAction(lpa=lpa, from_location=entry.owner,
                                          reason="garbage collection"))
                self._commit(lpa, entry)
        return actions

    def on_power_cycle(self) -> List[SyncAction]:
        actions: List[SyncAction] = []
        for lpa, entry in self._entries.items():
            if entry.state is PageCoherenceState.DIRTY:
                actions.append(SyncAction(lpa=lpa, from_location=entry.owner,
                                          reason="power cycle"))
                self._commit(lpa, entry)
        return actions

    # -- Internal ------------------------------------------------------------------------

    def _commit(self, lpa: int, entry: CoherenceEntry) -> None:
        entry.owner = DataLocation.FLASH
        entry.state = PageCoherenceState.CLEAN
        entry.version = 0
        self._dirty.discard(lpa)
        self.flushes += 1
