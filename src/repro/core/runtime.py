"""End-to-end execution engines.

Two engines live here:

* :class:`ConduitRuntime` -- the NDP path.  It places the dataset on flash,
  ships the Conduit binary to the SSD through the NVMe firmware-update
  commands, switches the SSD into computation mode, and then drives the SSD
  offloader over the instruction stream, respecting data dependencies and
  letting the per-resource execution queues, shared buses and coherence
  machinery determine timing.  This is the engine used by Conduit itself,
  the Ideal upper bound, BW-/DM-Offloading and the single-resource NDP
  baselines (they only differ in the offloading policy).
* :class:`HostRuntime` -- the outside-storage-processing (OSP) path used by
  the host CPU and GPU baselines: operands stream from the SSD to the host
  over NVMe/PCIe (through a capacity-limited host page cache) and compute
  runs on the analytical host models.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.common import DataLocation, Resource, SimulationError
from repro.core.compiler.binary import BinaryEncoder, transfer_binary
from repro.core.compiler.ir import VectorProgram
from repro.core.compiler.waves import wave_plan
from repro.core.layout import ArrayLayout
from repro.core.metrics import (ExecutionBreakdown, ExecutionResult,
                                InstructionRecord)
from repro.core.offload.offloader import OffloaderConfig, SSDOffloader
from repro.core.offload.policies import OffloadingPolicy
from repro.core.platform import PlatformConfig, SSDPlatform
from repro.ssd.events import Server


@dataclass(frozen=True)
class RuntimeConfig:
    """Configuration of the execution engines."""

    offloader: OffloaderConfig = field(default_factory=OffloaderConfig)
    #: Whether to model the one-time binary download over NVMe.
    transfer_binary: bool = True
    #: Whether to place operand arrays colocated per block so in-flash
    #: bitwise operations find their operands in one block (Section 4.4).
    colocate_for_ifp: bool = True


class ConduitRuntime:
    """Executes a vectorized program on the NDP-capable SSD platform."""

    def __init__(self, platform: Optional[SSDPlatform] = None,
                 config: Optional[RuntimeConfig] = None) -> None:
        self.platform = platform or SSDPlatform()
        self.config = config or RuntimeConfig()

    # -- Setup helpers -----------------------------------------------------------

    def _build_layout(self, program: VectorProgram) -> ArrayLayout:
        layout = ArrayLayout(self.platform.page_size)
        layout.place_all(sorted(program.arrays.values(),
                                key=lambda spec: spec.name))
        return layout

    def _place_dataset(self, layout: ArrayLayout) -> None:
        groups = None
        if self.config.colocate_for_ifp:
            pages_per_block = self.platform.config.ssd.nand.pages_per_block
            groups = layout.colocation_groups(pages_per_block)
        self.platform.setup_dataset(layout.all_lpas(),
                                    colocated_groups=groups)

    def _ship_binary(self, program: VectorProgram) -> float:
        if not self.config.transfer_binary:
            return 0.0
        binary = BinaryEncoder().encode(program)
        return transfer_binary(self.platform.ssd.nvme, binary, now=0.0)

    # -- Execution ----------------------------------------------------------------

    def execute(self, program: VectorProgram, policy: OffloadingPolicy,
                workload_name: Optional[str] = None) -> ExecutionResult:
        """Execute ``program`` under ``policy``; return the full result."""
        if not program.instructions:
            raise SimulationError("cannot execute an empty program")
        platform = self.platform
        layout = self._build_layout(program)
        self._place_dataset(layout)
        start_ns = self._ship_binary(program)
        platform.ssd.enter_computation_mode()

        offloader = SSDOffloader(platform, layout, policy,
                                 self.config.offloader)
        records: List[InstructionRecord] = []
        if platform.config.batched_offload:
            makespan = self._drive_waves(program, layout, offloader, records,
                                         start_ns)
        else:
            makespan = self._drive_reference(program, offloader, records,
                                             start_ns)

        platform.ssd.enter_regular_io_mode()
        energy_config = platform.config.ssd.energy
        platform.energy.charge_static(
            makespan - start_ns,
            energy_config.ssd_active_power_w + energy_config.host_idle_power_w,
            label="system-static")
        movement = platform.movement
        breakdown = ExecutionBreakdown(
            compute_ns=sum(record.compute_ns for record in records),
            host_data_movement_ns=movement.host_latency_ns,
            internal_data_movement_ns=max(
                0.0, movement.internal_latency_ns -
                movement.flash_read_latency_ns),
            flash_read_ns=movement.flash_read_latency_ns)
        return ExecutionResult(
            workload=workload_name or program.name, policy=policy.name,
            total_time_ns=makespan - start_ns, records=records,
            energy=platform.energy.breakdown(), breakdown=breakdown,
            offload_overhead_avg_ns=offloader.average_overhead_ns,
            offload_overhead_max_ns=offloader.max_overhead_ns,
            maintenance=platform.maintenance_stats())

    # -- Dispatch loops ------------------------------------------------------------

    def _drive_reference(self, program: VectorProgram,
                         offloader: SSDOffloader,
                         records: List[InstructionRecord],
                         start_ns: float) -> float:
        """The golden per-instruction dispatch loop."""
        platform = self.platform
        completion: Dict[int, float] = {}
        outstanding: List[float] = []  # completion times, kept as a heap
        max_outstanding = self.config.offloader.max_outstanding
        makespan = start_ns
        completion_get = completion.get
        dispatch_core = platform.dispatch_core
        offload = offloader.offload
        heappush, heappop = heapq.heappush, heapq.heappop
        append_record = records.append
        for instruction in program.instructions:
            deps_ready = start_ns
            for d in instruction.depends_on:
                t = completion_get(d)
                if t is not None and t > deps_ready:
                    deps_ready = t
            # The offloader core issues instructions in order; its current
            # position in virtual time is when this instruction arrives.
            free_at = dispatch_core._free_at
            arrival = start_ns if start_ns >= free_at else free_at
            # The dispatch window bounds how far issue runs ahead of
            # execution: once it is full, dispatch stalls until the oldest
            # outstanding instruction completes.
            while len(outstanding) >= max_outstanding:
                oldest = heappop(outstanding)
                if oldest > arrival:
                    arrival = oldest
            decision = offload(instruction, arrival_ns=arrival,
                               deps_ready_ns=deps_ready,
                               elapsed_ns=makespan if makespan > 1.0 else 1.0)
            end_ns = decision.end_ns
            heappush(outstanding, end_ns)
            completion[instruction.uid] = end_ns
            if end_ns > makespan:
                makespan = end_ns
            append_record(InstructionRecord(
                instruction.uid, instruction.op, decision.resource,
                decision.dispatch_ns, decision.ready_ns, decision.start_ns,
                end_ns, decision.compute_ns, decision.data_movement_ns,
                decision.overhead_ns))
        return makespan

    def _drive_waves(self, program: VectorProgram, layout: ArrayLayout,
                     offloader: SSDOffloader,
                     records: List[InstructionRecord],
                     start_ns: float) -> float:
        """Wave-batched dispatch (``PlatformConfig.batched_offload``).

        Same in-order, windowed issue semantics as
        :meth:`_drive_reference`; the only difference is that feature
        collection is front-loaded per dependence-free, page-disjoint wave
        (:func:`wave_plan`) and each member decides from the precollected
        batch, which :meth:`SSDOffloader.offload_member` keeps
        bit-identical to the reference (hazard-counter fallback included).
        """
        platform = self.platform
        plan = wave_plan(program, layout)
        completion: Dict[int, float] = {}
        outstanding: List[float] = []
        max_outstanding = self.config.offloader.max_outstanding
        makespan = start_ns
        completion_get = completion.get
        dispatch_core = platform.dispatch_core
        begin_wave = offloader.begin_wave
        offload_member = offloader.offload_member
        heappush, heappop = heapq.heappush, heapq.heappop
        append_record = records.append
        wave_sources = plan.wave_sources
        wave_dests = plan.wave_dests
        for wave_index, members in enumerate(plan.wave_instructions):
            batch = begin_wave(members, wave_sources[wave_index],
                               wave_dests[wave_index])
            for pos, instruction in enumerate(members):
                deps_ready = start_ns
                for d in instruction.depends_on:
                    t = completion_get(d)
                    if t is not None and t > deps_ready:
                        deps_ready = t
                free_at = dispatch_core._free_at
                arrival = start_ns if start_ns >= free_at else free_at
                while len(outstanding) >= max_outstanding:
                    oldest = heappop(outstanding)
                    if oldest > arrival:
                        arrival = oldest
                decision = offload_member(
                    batch, pos, instruction, arrival_ns=arrival,
                    deps_ready_ns=deps_ready,
                    elapsed_ns=makespan if makespan > 1.0 else 1.0)
                end_ns = decision.end_ns
                heappush(outstanding, end_ns)
                completion[instruction.uid] = end_ns
                if end_ns > makespan:
                    makespan = end_ns
                append_record(InstructionRecord(
                    instruction.uid, instruction.op, decision.resource,
                    decision.dispatch_ns, decision.ready_ns,
                    decision.start_ns, end_ns, decision.compute_ns,
                    decision.data_movement_ns, decision.overhead_ns))
        return makespan


class HostRuntime:
    """Executes a vectorized program on the host CPU or GPU (OSP baseline)."""

    def __init__(self, platform: Optional[SSDPlatform] = None,
                 config: Optional[RuntimeConfig] = None) -> None:
        self.platform = platform or SSDPlatform()
        self.config = config or RuntimeConfig()

    def execute(self, program: VectorProgram, device: Resource,
                workload_name: Optional[str] = None) -> ExecutionResult:
        if device not in (Resource.HOST_CPU, Resource.HOST_GPU):
            raise SimulationError(f"{device} is not a host device")
        if not program.instructions:
            raise SimulationError("cannot execute an empty program")
        platform = self.platform
        layout = ArrayLayout(platform.page_size)
        layout.place_all(sorted(program.arrays.values(),
                                key=lambda spec: spec.name))
        platform.setup_dataset(layout.all_lpas())

        compute_server = Server(f"{device.value}-pipeline")
        completion: Dict[int, float] = {}
        records: List[InstructionRecord] = []
        makespan = 0.0
        run_of = layout.page_run_of
        completion_get = completion.get
        ensure_runs_at = platform.ensure_runs_at
        backend = platform.backends._backends[device]
        host = DataLocation.HOST
        on_write_run = platform.coherence.on_write_run
        mark_produced_run = platform.mark_produced_run
        reserve = compute_server.reserve
        append_record = records.append
        for instruction in program.instructions:
            deps_ready = 0.0
            for d in instruction.depends_on:
                t = completion_get(d)
                if t is not None and t > deps_ready:
                    deps_ready = t
            element_bits = instruction.element_bits
            # Stream operand runs to host memory over NVMe / PCIe.
            runs = [run_of(ref, element_bits)
                    for ref in instruction.array_sources]
            dm_end = ensure_runs_at(deps_ready, runs, host)
            op = instruction.op
            size_bytes = instruction.size_bytes
            compute = backend.operation_latency(op, size_bytes, element_bits)
            reservation = reserve(
                dm_end if dm_end >= deps_ready else deps_ready, compute)
            backend.execute(reservation.start, op, size_bytes, element_bits)
            platform.energy.add_compute(device, backend.operation_energy(
                op, size_bytes, element_bits))
            if instruction.dest is not None:
                dest_run = run_of(instruction.dest, element_bits)
                on_write_run(dest_run[0], dest_run[1], host)
                mark_produced_run(reservation.end, (dest_run,), host)
            end_ns = reservation.end
            completion[instruction.uid] = end_ns
            if end_ns > makespan:
                makespan = end_ns
            append_record(InstructionRecord(
                instruction.uid, op, device, deps_ready, dm_end,
                reservation.start, end_ns, compute, dm_end - deps_ready,
                0.0))

        platform.energy.charge_static(
            makespan, platform.config.ssd.energy.ssd_active_power_w,
            label="ssd-static")
        movement = platform.movement
        breakdown = ExecutionBreakdown(
            compute_ns=sum(record.compute_ns for record in records),
            host_data_movement_ns=movement.host_latency_ns,
            internal_data_movement_ns=max(
                0.0, movement.internal_latency_ns -
                movement.flash_read_latency_ns),
            flash_read_ns=movement.flash_read_latency_ns)
        name = "CPU" if device is Resource.HOST_CPU else "GPU"
        return ExecutionResult(
            workload=workload_name or program.name, policy=name,
            total_time_ns=makespan, records=records,
            energy=platform.energy.breakdown(), breakdown=breakdown,
            maintenance=platform.maintenance_stats())
