"""End-to-end execution engines.

Two engines live here:

* :class:`ConduitRuntime` -- the NDP path.  It places the dataset on flash,
  ships the Conduit binary to the SSD through the NVMe firmware-update
  commands, switches the SSD into computation mode, and then drives the SSD
  offloader over the instruction stream, respecting data dependencies and
  letting the per-resource execution queues, shared buses and coherence
  machinery determine timing.  This is the engine used by Conduit itself,
  the Ideal upper bound, BW-/DM-Offloading and the single-resource NDP
  baselines (they only differ in the offloading policy).
* :class:`HostRuntime` -- the outside-storage-processing (OSP) path used by
  the host CPU and GPU baselines: operands stream from the SSD to the host
  over NVMe/PCIe (through a capacity-limited host page cache) and compute
  runs on the analytical host models.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.common import DataLocation, Resource, SimulationError
from repro.core.compiler.binary import BinaryEncoder, transfer_binary
from repro.core.compiler.ir import VectorProgram
from repro.core.layout import ArrayLayout
from repro.core.metrics import (ExecutionBreakdown, ExecutionResult,
                                InstructionRecord)
from repro.core.offload.offloader import OffloaderConfig, SSDOffloader
from repro.core.offload.policies import OffloadingPolicy
from repro.core.platform import PlatformConfig, SSDPlatform
from repro.ssd.events import Server


@dataclass(frozen=True)
class RuntimeConfig:
    """Configuration of the execution engines."""

    offloader: OffloaderConfig = field(default_factory=OffloaderConfig)
    #: Whether to model the one-time binary download over NVMe.
    transfer_binary: bool = True
    #: Whether to place operand arrays colocated per block so in-flash
    #: bitwise operations find their operands in one block (Section 4.4).
    colocate_for_ifp: bool = True


class ConduitRuntime:
    """Executes a vectorized program on the NDP-capable SSD platform."""

    def __init__(self, platform: Optional[SSDPlatform] = None,
                 config: Optional[RuntimeConfig] = None) -> None:
        self.platform = platform or SSDPlatform()
        self.config = config or RuntimeConfig()

    # -- Setup helpers -----------------------------------------------------------

    def _build_layout(self, program: VectorProgram) -> ArrayLayout:
        layout = ArrayLayout(self.platform.page_size)
        layout.place_all(sorted(program.arrays.values(),
                                key=lambda spec: spec.name))
        return layout

    def _place_dataset(self, layout: ArrayLayout) -> None:
        groups = None
        if self.config.colocate_for_ifp:
            pages_per_block = self.platform.config.ssd.nand.pages_per_block
            groups = layout.colocation_groups(pages_per_block)
        self.platform.setup_dataset(layout.all_lpas(),
                                    colocated_groups=groups)

    def _ship_binary(self, program: VectorProgram) -> float:
        if not self.config.transfer_binary:
            return 0.0
        binary = BinaryEncoder().encode(program)
        return transfer_binary(self.platform.ssd.nvme, binary, now=0.0)

    # -- Execution ----------------------------------------------------------------

    def execute(self, program: VectorProgram, policy: OffloadingPolicy,
                workload_name: Optional[str] = None) -> ExecutionResult:
        """Execute ``program`` under ``policy``; return the full result."""
        if not program.instructions:
            raise SimulationError("cannot execute an empty program")
        platform = self.platform
        layout = self._build_layout(program)
        self._place_dataset(layout)
        start_ns = self._ship_binary(program)
        platform.ssd.enter_computation_mode()

        offloader = SSDOffloader(platform, layout, policy,
                                 self.config.offloader)
        completion: Dict[int, float] = {}
        records: List[InstructionRecord] = []
        outstanding: List[float] = []  # completion times, kept as a heap
        max_outstanding = self.config.offloader.max_outstanding
        makespan = start_ns
        for instruction in program.instructions:
            deps_ready = max((completion[d] for d in instruction.depends_on
                              if d in completion), default=start_ns)
            # The offloader core issues instructions in order; its current
            # position in virtual time is when this instruction arrives.
            arrival = max(start_ns, platform.dispatch_core.free_at)
            # The dispatch window bounds how far issue runs ahead of
            # execution: once it is full, dispatch stalls until the oldest
            # outstanding instruction completes.
            while len(outstanding) >= max_outstanding:
                arrival = max(arrival, heapq.heappop(outstanding))
            decision = offloader.offload(instruction, arrival_ns=arrival,
                                         deps_ready_ns=deps_ready,
                                         elapsed_ns=max(makespan, 1.0))
            heapq.heappush(outstanding, decision.end_ns)
            completion[instruction.uid] = decision.end_ns
            makespan = max(makespan, decision.end_ns)
            records.append(InstructionRecord(
                uid=instruction.uid, op=instruction.op,
                resource=decision.resource,
                dispatch_ns=decision.dispatch_ns, ready_ns=decision.ready_ns,
                start_ns=decision.start_ns, end_ns=decision.end_ns,
                compute_ns=decision.compute_ns,
                data_movement_ns=decision.data_movement_ns,
                overhead_ns=decision.overhead_ns))

        platform.ssd.enter_regular_io_mode()
        energy_config = platform.config.ssd.energy
        platform.energy.charge_static(
            makespan - start_ns,
            energy_config.ssd_active_power_w + energy_config.host_idle_power_w,
            label="system-static")
        movement = platform.movement
        breakdown = ExecutionBreakdown(
            compute_ns=sum(record.compute_ns for record in records),
            host_data_movement_ns=movement.host_latency_ns,
            internal_data_movement_ns=max(
                0.0, movement.internal_latency_ns -
                movement.flash_read_latency_ns),
            flash_read_ns=movement.flash_read_latency_ns)
        return ExecutionResult(
            workload=workload_name or program.name, policy=policy.name,
            total_time_ns=makespan - start_ns, records=records,
            energy=platform.energy.breakdown(), breakdown=breakdown,
            offload_overhead_avg_ns=offloader.average_overhead_ns,
            offload_overhead_max_ns=offloader.max_overhead_ns)


class HostRuntime:
    """Executes a vectorized program on the host CPU or GPU (OSP baseline)."""

    def __init__(self, platform: Optional[SSDPlatform] = None,
                 config: Optional[RuntimeConfig] = None) -> None:
        self.platform = platform or SSDPlatform()
        self.config = config or RuntimeConfig()

    def execute(self, program: VectorProgram, device: Resource,
                workload_name: Optional[str] = None) -> ExecutionResult:
        if device not in (Resource.HOST_CPU, Resource.HOST_GPU):
            raise SimulationError(f"{device} is not a host device")
        if not program.instructions:
            raise SimulationError("cannot execute an empty program")
        platform = self.platform
        layout = ArrayLayout(platform.page_size)
        layout.place_all(sorted(program.arrays.values(),
                                key=lambda spec: spec.name))
        platform.setup_dataset(layout.all_lpas())

        compute_server = Server(f"{device.value}-pipeline")
        completion: Dict[int, float] = {}
        records: List[InstructionRecord] = []
        makespan = 0.0
        run_of = layout.page_run_of
        for instruction in program.instructions:
            deps_ready = max((completion[d] for d in instruction.depends_on
                              if d in completion), default=0.0)
            # Stream operand runs to host memory over NVMe / PCIe.
            runs = [run_of(ref, instruction.element_bits)
                    for ref in instruction.array_sources]
            dm_start = deps_ready
            dm_end = platform.ensure_runs_at(dm_start, runs,
                                             DataLocation.HOST)
            compute = platform.compute_latency(device, instruction.op,
                                               instruction.size_bytes,
                                               instruction.element_bits)
            reservation = compute_server.reserve(max(dm_end, deps_ready),
                                                 compute)
            platform.record_compute(reservation.start, device,
                                    instruction.op, instruction.size_bytes,
                                    instruction.element_bits)
            if instruction.dest is not None:
                dest_base, dest_count = run_of(instruction.dest,
                                               instruction.element_bits)
                platform.coherence.on_write_run(dest_base, dest_count,
                                                DataLocation.HOST)
                platform.mark_produced_run(reservation.end,
                                           ((dest_base, dest_count),),
                                           DataLocation.HOST)
            completion[instruction.uid] = reservation.end
            makespan = max(makespan, reservation.end)
            records.append(InstructionRecord(
                uid=instruction.uid, op=instruction.op, resource=device,
                dispatch_ns=dm_start, ready_ns=dm_end,
                start_ns=reservation.start, end_ns=reservation.end,
                compute_ns=compute, data_movement_ns=dm_end - dm_start,
                overhead_ns=0.0))

        platform.energy.charge_static(
            makespan, platform.config.ssd.energy.ssd_active_power_w,
            label="ssd-static")
        movement = platform.movement
        breakdown = ExecutionBreakdown(
            compute_ns=sum(record.compute_ns for record in records),
            host_data_movement_ns=movement.host_latency_ns,
            internal_data_movement_ns=max(
                0.0, movement.internal_latency_ns -
                movement.flash_read_latency_ns),
            flash_read_ns=movement.flash_read_latency_ns)
        name = "CPU" if device is Resource.HOST_CPU else "GPU"
        return ExecutionResult(
            workload=workload_name or program.name, policy=name,
            total_time_ns=makespan, records=records,
            energy=platform.energy.breakdown(), breakdown=breakdown)
