"""Execution metrics and result containers.

Everything the evaluation section reports is derived from the structures in
this module: total execution time and speedups (Fig. 5 / 7a), energy split
into data movement and computation (Fig. 7b), per-instruction latency
distributions and tails (Fig. 8), per-resource offloading fractions
(Fig. 9), and the instruction-to-resource timeline (Fig. 10).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.common import OpType, Resource, ResourceLike, SSD_RESOURCES
from repro.energy.model import EnergyBreakdown
from repro.ssd.lifetime.engine import MaintenanceStats


@dataclass(slots=True)
class InstructionRecord:
    """Timing of one executed instruction."""

    uid: int
    op: OpType
    resource: ResourceLike
    dispatch_ns: float
    ready_ns: float
    start_ns: float
    end_ns: float
    compute_ns: float
    data_movement_ns: float
    overhead_ns: float

    @property
    def latency_ns(self) -> float:
        """End-to-end latency from dispatch to completion."""
        return self.end_ns - self.dispatch_ns

    @property
    def queue_wait_ns(self) -> float:
        return max(0.0, self.start_ns - self.ready_ns)


@dataclass
class ExecutionBreakdown:
    """Where execution time went (Fig. 4 categories)."""

    compute_ns: float = 0.0
    host_data_movement_ns: float = 0.0
    internal_data_movement_ns: float = 0.0
    flash_read_ns: float = 0.0

    def as_dict(self) -> Dict[str, float]:
        return {
            "compute": self.compute_ns,
            "host_data_movement": self.host_data_movement_ns,
            "internal_data_movement": self.internal_data_movement_ns,
            "flash_read": self.flash_read_ns,
        }

    def normalized(self) -> Dict[str, float]:
        total = sum(self.as_dict().values())
        if total <= 0:
            return {key: 0.0 for key in self.as_dict()}
        return {key: value / total for key, value in self.as_dict().items()}


@dataclass
class ExecutionResult:
    """The outcome of executing one workload under one policy."""

    workload: str
    policy: str
    total_time_ns: float
    records: List[InstructionRecord]
    energy: EnergyBreakdown
    breakdown: ExecutionBreakdown
    offload_overhead_avg_ns: float = 0.0
    offload_overhead_max_ns: float = 0.0
    #: Device-lifetime view of the run: background GC/WL traffic, wear
    #: statistics and write amplification (``None`` only for results
    #: pickled before the lifetime subsystem existed).
    maintenance: Optional[MaintenanceStats] = None

    # -- Derived metrics ----------------------------------------------------------

    @property
    def instructions(self) -> int:
        return len(self.records)

    @property
    def total_energy_nj(self) -> float:
        return self.energy.total_nj

    def resource_fractions(self) -> Dict[ResourceLike, float]:
        """Fraction of instructions executed on each backend (Fig. 9)."""
        if not self.records:
            return {}
        counts: Dict[ResourceLike, int] = {}
        for record in self.records:
            counts[record.resource] = counts.get(record.resource, 0) + 1
        total = len(self.records)
        return {resource: count / total for resource, count in counts.items()}

    def ssd_resource_fractions(self) -> Dict[ResourceLike, float]:
        """Fractions restricted to the in-SSD backends (Fig. 9).

        The canonical trio is always present (zero when unused); backends
        a registry-grown platform added (per-core ISP queues, extra PuD
        tiers) appear under their own identities.
        """
        fractions = self.resource_fractions()
        ssd_only: Dict[ResourceLike, float] = {
            r: fractions.get(r, 0.0) for r in SSD_RESOURCES}
        for resource, value in fractions.items():
            if resource.is_in_ssd and resource not in ssd_only:
                ssd_only[resource] = value
        total = sum(ssd_only.values())
        if total <= 0:
            return ssd_only
        return {r: value / total for r, value in ssd_only.items()}

    def kind_fractions(self) -> Dict[Resource, float]:
        """In-SSD fractions aggregated by resource family.

        Folds registry-grown backends into their canonical family (all
        ``isp[i]`` cores count as ISP, every PuD tier as PuD-SSD), which
        is what roster ablations compare across platform shapes.
        """
        fractions = self.ssd_resource_fractions()
        by_kind: Dict[Resource, float] = {r: 0.0 for r in SSD_RESOURCES}
        for resource, value in fractions.items():
            by_kind[resource.kind] = by_kind.get(resource.kind, 0.0) + value
        return by_kind

    def latency_percentile(self, percentile: float) -> float:
        """Per-instruction latency percentile in nanoseconds (Fig. 8)."""
        if not self.records:
            return 0.0
        latencies = np.array([record.latency_ns for record in self.records])
        return float(np.percentile(latencies, percentile))

    @property
    def p99_latency_ns(self) -> float:
        return self.latency_percentile(99.0)

    @property
    def p9999_latency_ns(self) -> float:
        return self.latency_percentile(99.99)

    def mean_latency_ns(self) -> float:
        if not self.records:
            return 0.0
        return float(np.mean([record.latency_ns for record in self.records]))

    def timeline(self, limit: Optional[int] = None
                 ) -> List[Dict[str, object]]:
        """Instruction-to-resource mapping over time (Fig. 10)."""
        records = self.records[:limit] if limit else self.records
        return [
            {"index": index, "uid": record.uid, "op": record.op.value,
             "resource": record.resource.value, "start_ns": record.start_ns,
             "end_ns": record.end_ns}
            for index, record in enumerate(records)
        ]


def speedup(baseline: ExecutionResult, candidate: ExecutionResult) -> float:
    """Speedup of ``candidate`` over ``baseline`` (>1 means faster)."""
    if candidate.total_time_ns <= 0:
        return float("inf")
    return baseline.total_time_ns / candidate.total_time_ns


def energy_reduction(baseline: ExecutionResult,
                     candidate: ExecutionResult) -> float:
    """Fractional energy reduction of ``candidate`` versus ``baseline``."""
    if baseline.total_energy_nj <= 0:
        return 0.0
    return 1.0 - candidate.total_energy_nj / baseline.total_energy_nj


def geometric_mean(values: Sequence[float]) -> float:
    """Geometric mean used for the GMEAN columns of Fig. 5 / 7."""
    array = np.asarray([v for v in values if v > 0], dtype=float)
    if array.size == 0:
        return 0.0
    return float(np.exp(np.mean(np.log(array))))
