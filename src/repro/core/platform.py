"""The NDP-capable SSD platform.

Composes every substrate into the system the paper simulates: the NAND SSD
(storage, FTL, channels), the SSD-internal DRAM with its PuD compute
capability, the controller cores (ISP), the in-flash processing unit (IFP),
per-resource execution queues, the host CPU/GPU used by the OSP baselines,
the energy account, the lazy-coherence directory, and the data-movement
engine that shuttles logical pages between flash, SSD DRAM, controller SRAM
and the host.

The runtime offloader (:mod:`repro.core.offload`) asks this platform three
kinds of questions:

* *Where is this operand?* (``location_of`` / ``locations_of_pages``)
* *What would it cost to move it / compute it there?*
  (``estimate_move_latency`` / ``compute_latency`` -- the precomputed
  latency tables of Section 4.5)
* *Actually do it* (``ensure_runs_at`` / ``record_compute``), reserving the
  shared buses and execution sub-units so contention emerges naturally.

Data movement is *run batched*: operands arrive as contiguous LPA runs
(arrays map to contiguous page ranges, Section 4.4), and
:meth:`SSDPlatform.ensure_runs_at` splits each run into maximal segments of
equal current residence.  A segment already at the destination refreshes its
LRU positions in bulk; a moving segment issues one sized reservation per
shared bus (DRAM data bus, PCIe) while flash channels and DRAM banks keep
their exact per-page reservation sequence (runs are striped across
channels/banks).  Segments whose insertion would evict pages from the
destination's capacity window fall back to the per-page reference path
(:meth:`SSDPlatform.ensure_pages_at`), because evicted pages' write-backs
interleave with the segment's own transfers on the shared buses.  The
batched and per-page paths therefore produce identical simulated timings,
energy and movement counters; ``PlatformConfig.batched_movement`` selects
between them so the golden-equivalence test can compare both.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

import numpy as np

from repro.common import (BackendId, DataLocation, MIB, OpType, Resource,
                          ResourceLike, SimulationError)
from repro.core.backends import BackendRegistry
from repro.core.coherence import CoherenceDirectory, CoherencePolicy
from repro.core.contention import LinkContentionMonitor
from repro.dram.config import DRAMConfig
from repro.dram.cxl import CXLPuDBackend, CXLPuDConfig
from repro.dram.dram import DRAMDevice
from repro.dram.pud import PuDBackend, PuDUnit
from repro.energy.model import EnergyAccount
from repro.host.config import HostCPUConfig, HostGPUConfig, HostMemoryConfig
from repro.host.cpu import HostCPU, HostCPUBackend
from repro.host.gpu import HostGPU, HostGPUBackend
from repro.ifp.unit import IFPBackend, IFPUnit
from repro.isp.core import EmbeddedCoreComplex, ISPBackend
from repro.ssd.config import SSDConfig
from repro.ssd.events import Server, sequential_sum
from repro.ssd.lifetime import (BackgroundFlashEngine, LifetimeConfig,
                                MaintenanceStats, apply_drive_age)
from repro.ssd.queues import ResourceQueueSet
from repro.ssd.ssd import SSD


@dataclass(frozen=True)
class PlatformConfig:
    """Configuration of the full NDP platform."""

    ssd: SSDConfig = field(default_factory=SSDConfig)
    dram: DRAMConfig = field(default_factory=DRAMConfig)
    host_cpu: HostCPUConfig = field(default_factory=HostCPUConfig)
    host_gpu: HostGPUConfig = field(default_factory=HostGPUConfig)
    host_memory: HostMemoryConfig = field(default_factory=HostMemoryConfig)

    #: Portion of SSD DRAM usable as PuD compute operand space; the rest
    #: holds FTL metadata and the page cache (Section 2.2).  Dirty operands
    #: are lazily flushed to flash when evicted from this window.
    dram_compute_window_bytes: int = 64 * MIB
    #: Controller SRAM / register space usable for ISP operands.
    sram_window_bytes: int = 8 * MIB
    #: Host page-cache budget for SSD-resident data (OSP baselines).
    host_cache_bytes: int = 128 * MIB

    coherence_policy: CoherencePolicy = CoherencePolicy.LAZY

    # -- Contention-aware cost model (link-utilization feedback) ------------

    #: Correct the cost model's data-movement estimates with live
    #: link-contention feedback: every completed movement reports its
    #: observed time against the uncontended table estimate, the overrun
    #: (the queueing experienced on the path's shared buses -- flash
    #: channels, SSD DRAM bus, PCIe) is EWMA-smoothed per operand path,
    #: and each candidate's future estimates are scaled by its path's
    #: smoothed overrun (plus the live backlog of backend-private links
    #: such as the CXL command link).  This closes the greedy
    #: per-instruction argmin's blindness to global link contention; see
    #: :mod:`repro.core.contention`.  Off by default so the pinned
    #: goldens keep reproducing the paper's uncorrected cost model
    #: bit-exactly.
    contention_feedback: bool = False
    #: EWMA smoothing factor of the movement-overrun samples (1.0 keeps
    #: only the latest sample).
    contention_ewma_alpha: float = 0.3
    #: Gain weighting the smoothed relative overrun charged back to an
    #: estimate (``scale = 1 + gain * (relative_overrun - 1)``).
    contention_gain: float = 2.0
    #: Per-observation decay pulling *unobserved* paths' smoothed overruns
    #: back toward 1.0 (no contention), so a once-penalized path whose
    #: traffic has since drained is re-explored instead of being avoided
    #: forever on stale feedback.  ``0.0`` (the default) preserves the
    #: original never-forgets behavior bit-exactly.
    contention_decay: float = 0.0

    #: Move operands as contiguous LPA runs (one sized bus reservation per
    #: run segment).  ``False`` selects the per-page reference path, kept
    #: for the golden-equivalence test of the batched engine.
    batched_movement: bool = True

    #: Drive the run-batched movement engine through numpy flat-array
    #: timelines: residence/segmentation as int-code arrays, reservation
    #: chains as sequential-accumulate array ops, DRAM bank / flash
    #: channel / PCIe legs and energy settled on whole arrays.  Builds on
    #: ``batched_movement`` (ignored when that is off) and is bit-exact
    #: with the object engine by construction -- the object engine remains
    #: the golden reference, mirroring the ``batched_movement`` pattern.
    vectorized_movement: bool = True

    #: Drive offload decisions wave-by-wave: a dependency slicer groups
    #: the compiled IR into ready waves (page-disjoint, dependence-free
    #: program-order blocks), the feature collector precollects each
    #: wave's operand locations, L2P probes and movement-table sums in
    #: one pass, and Conduit's argmin runs on packed scalars without
    #: per-instruction feature objects.  Bit-exact with the
    #: per-instruction path by construction: identical per-component
    #: latencies are charged (Section 4.5's overhead reproduction is
    #: unchanged), mapping-cache LRU refreshes are replayed at each
    #: member's decision time, and any mid-wave residence or
    #: mapping-cache hazard falls back to the reference path.  The
    #: per-instruction engine remains the golden reference, mirroring
    #: the ``batched_movement`` / ``vectorized_movement`` pattern.
    batched_offload: bool = True

    # -- Backend roster (the platform's compute shape is data, not code) ----

    #: Number of ISP compute-core backends to register.  ``1`` (the paper's
    #: configuration) registers a single backend for the controller's
    #: compute-core pool; ``n > 1`` registers per-core backends
    #: ``isp[0..n)``, each with its own execution queue, so the cost
    #: function sees (and balances) per-core contention.  On a per-core
    #: roster the pooled ``Resource.ISP`` identity is *not* registered --
    #: identity lookups for it fail loudly; discover the cores via
    #: ``platform.backends.backends_of_kind(Resource.ISP)``.
    isp_cores: int = 1

    #: Opt-in CXL-attached PuD tier with its own latency/energy/bandwidth
    #: point (see :mod:`repro.dram.cxl`).  ``None`` disables the tier.
    cxl_pud: Optional[CXLPuDConfig] = None

    #: Device-lifetime axis (see :mod:`repro.ssd.lifetime`): drive-age
    #: profile applied at construction and the background GC/wear engine
    #: that turns maintenance into live traffic on the shared flash
    #: channels.  The default (engine off, no profile) is bit-identical
    #: to the fresh-drive seed behavior.
    lifetime: LifetimeConfig = field(default_factory=LifetimeConfig)


#: Integer location codes of the vectorized movement engine's flat
#: residence array.  Flash is 0 so the lazily-grown array's zero-fill
#: means "on flash", exactly like absence from the residence dict.
LOCATION_CODES: Dict[DataLocation, int] = {
    DataLocation.FLASH: 0,
    DataLocation.SSD_DRAM: 1,
    DataLocation.CTRL_SRAM: 2,
    DataLocation.HOST: 3,
}

#: Inverse of :data:`LOCATION_CODES` (code -> location).
CODE_LOCATIONS: Tuple[DataLocation, ...] = tuple(
    sorted(LOCATION_CODES, key=LOCATION_CODES.get))

#: Runs shorter than this keep the scalar dict/loop bookkeeping even when
#: the vectorized engine is on: a numpy kernel launch costs roughly a
#: microsecond, so flat-array segmentation only pays off once a run spans
#: enough pages to amortise it.
_VECTOR_MIN_RUN = 64

#: Same crossover for one moving segment's bus/flash/DRAM leg: below this
#: the object engine's per-page loop beats the array path's fixed setup.
_VECTOR_MIN_SEGMENT = 16

#: Memoized uniform byte runs (one per location code and short-run length)
#: used to compare and overwrite code-array slices in one C-level call.
_CODE_RUN_CACHE: Dict[Tuple[int, int], bytes] = {}


def _code_run(code: int, count: int) -> bytes:
    key = (code, count)
    run = _CODE_RUN_CACHE.get(key)
    if run is None:
        run = _CODE_RUN_CACHE[key] = bytes([code]) * count
    return run


class _LocationWindow:
    """LRU-managed capacity window for a temporary operand location."""

    def __init__(self, name: str, capacity_pages: int) -> None:
        if capacity_pages <= 0:
            raise SimulationError(f"{name}: capacity must be positive")
        self.name = name
        self.capacity_pages = capacity_pages
        self._pages: "OrderedDict[int, bool]" = OrderedDict()
        self.evictions = 0

    def __contains__(self, lpa: int) -> bool:
        return lpa in self._pages

    def __len__(self) -> int:
        return len(self._pages)

    def touch(self, lpa: int) -> None:
        if lpa in self._pages:
            self._pages.move_to_end(lpa)

    def add(self, lpa: int) -> List[int]:
        """Insert a page; return the pages evicted to make room."""
        evicted: List[int] = []
        if lpa in self._pages:
            self._pages.move_to_end(lpa)
            return evicted
        self._pages[lpa] = True
        while len(self._pages) > self.capacity_pages:
            victim, _ = self._pages.popitem(last=False)
            evicted.append(victim)
            self.evictions += 1
        return evicted

    def remove(self, lpa: int) -> None:
        self._pages.pop(lpa, None)

    @property
    def free_capacity(self) -> int:
        """Pages that can be inserted before an eviction becomes necessary."""
        return self.capacity_pages - len(self._pages)

    def touch_many(self, lpas: Iterable[int]) -> None:
        """Refresh LRU positions of resident pages, in order."""
        pages = self._pages
        move = pages.move_to_end
        for lpa in lpas:
            if lpa in pages:
                move(lpa)

    def add_many(self, lpas: Iterable[int]) -> List[int]:
        """Insert pages in MRU order, then evict once for the whole batch.

        Equivalent to per-page :meth:`add` calls: new pages join the MRU
        end, so batch insertion followed by a single eviction sweep pops
        the same victims in the same order as interleaved add/evict.
        """
        pages = self._pages
        move = pages.move_to_end
        for lpa in lpas:
            if lpa in pages:
                move(lpa)
            else:
                pages[lpa] = True
        evicted: List[int] = []
        while len(pages) > self.capacity_pages:
            victim, _ = pages.popitem(last=False)
            evicted.append(victim)
            self.evictions += 1
        return evicted

    def remove_many(self, lpas: Iterable[int]) -> None:
        pop = self._pages.pop
        for lpa in lpas:
            pop(lpa, None)

    def extend_new(self, lpas: Iterable[int]) -> None:
        """:meth:`add_many` for pages known absent and fitting in capacity.

        Callers must have established that no page is resident and that the
        batch fits in :attr:`free_capacity`; the insertion then reduces to
        appending at the MRU end in order, which a single C-level dict
        update performs with the same final LRU order as the per-page loop.
        """
        self._pages.update(dict.fromkeys(lpas, True))


@dataclass
class DataMovementStats:
    """Aggregate data-movement accounting used by Fig. 4 and Fig. 7(b)."""

    flash_to_dram_pages: int = 0
    flash_to_sram_pages: int = 0
    dram_to_sram_pages: int = 0
    sram_to_dram_pages: int = 0
    writeback_pages: int = 0
    host_pages: int = 0
    internal_latency_ns: float = 0.0
    host_latency_ns: float = 0.0
    flash_read_latency_ns: float = 0.0

    @property
    def internal_pages(self) -> int:
        return (self.flash_to_dram_pages + self.flash_to_sram_pages +
                self.dram_to_sram_pages + self.sram_to_dram_pages +
                self.writeback_pages)


def backend_roster(config: PlatformConfig) -> Tuple[str, ...]:
    """Backend identities a configuration will register, in order.

    Computable without building a platform (the sweep cache folds this
    roster into its keys, so entries recorded on a differently-shaped
    platform can never be served).  :meth:`SSDPlatform._build_backends`
    verifies its registry against this prediction on every construction,
    so a roster knob added to one but not the other fails loudly for any
    shape -- the cache guarantee is enforced structurally, not by
    convention.
    """
    roster: List[str] = []
    if config.isp_cores <= 1:
        roster.append(Resource.ISP.value)
    else:
        roster.extend(f"isp[{core}]" for core in range(config.isp_cores))
    roster.append(Resource.PUD.value)
    roster.append(Resource.IFP.value)
    if config.cxl_pud is not None:
        roster.append("cxl-pud")
    roster.append(Resource.HOST_CPU.value)
    roster.append(Resource.HOST_GPU.value)
    return tuple(roster)


class SSDPlatform:
    """The complete simulated system."""

    def __init__(self, config: Optional[PlatformConfig] = None) -> None:
        self.config = config or PlatformConfig()
        if self.config.isp_cores < 1:
            raise SimulationError("PlatformConfig.isp_cores must be >= 1")
        ssd_config = self.config.ssd
        self.ssd = SSD(ssd_config)
        self.dram = DRAMDevice(self.config.dram)
        self.pud = PuDUnit(self.dram)
        self.isp = EmbeddedCoreComplex(ssd_config.controller,
                                       ssd_config.energy)
        self.ifp = IFPUnit(ssd_config.nand, ssd_config.energy)
        self.host_cpu = HostCPU(self.config.host_cpu)
        self.host_gpu = HostGPU(self.config.host_gpu)
        self.energy = EnergyAccount(ssd_config.energy,
                                    self.config.host_memory)
        lifetime = self.config.lifetime
        if lifetime.drive_age is not None:
            # Zero-time pre-history: fragments the array and seeds wear
            # before the dataset is placed, so allocation and GC see an
            # aged drive from the first write.
            apply_drive_age(self.ssd, lifetime.drive_age)
        if lifetime.background_flash:
            self.ssd.attach_background_engine(
                BackgroundFlashEngine(self.ssd, lifetime, self.energy))
        self.coherence = CoherenceDirectory(self.config.coherence_policy)
        #: Every compute engine of the system, keyed by identity; the
        #: offload stack discovers its candidates here.
        self.backends = self._build_backends()
        #: Aggregate view over the backends' execution queues.
        self.queues = ResourceQueueSet(self.backends.queues())
        #: The controller core running the SSD offloader itself.
        self.dispatch_core = Server("offloader-core")

        page = ssd_config.nand.page_size_bytes
        self._page_size = page
        self._dram_window = _LocationWindow(
            "ssd-dram", max(1, self.config.dram_compute_window_bytes // page))
        self._sram_window = _LocationWindow(
            "ctrl-sram", max(1, self.config.sram_window_bytes // page))
        self._host_window = _LocationWindow(
            "host-cache", max(1, self.config.host_cache_bytes // page))
        self._windows: Dict[DataLocation, _LocationWindow] = {
            DataLocation.SSD_DRAM: self._dram_window,
            DataLocation.CTRL_SRAM: self._sram_window,
            DataLocation.HOST: self._host_window,
        }
        self._residence: Dict[int, DataLocation] = {}
        #: Bumped on every eviction-driven residence change -- the only
        #: way one instruction's dispatch can move *another* page-disjoint
        #: instruction's operands.  The wave-batched offload engine
        #: snapshots it to prove its precollected operand locations are
        #: still live at each member's decision time.
        self.eviction_epoch = 0
        self.movement = DataMovementStats()
        self._move_table = self._build_move_table()
        #: EWMA monitor of observed movement overrun per operand path,
        #: fed only when ``config.contention_feedback`` is enabled (see
        #: :mod:`repro.core.contention`).  Owned per platform, so every
        #: run starts from clean feedback state.
        self.contention = LinkContentionMonitor(
            self.config.contention_ewma_alpha, self.config.contention_gain,
            decay=self.config.contention_decay)
        #: The vectorized engine needs batched runs to vectorize over.
        self._vectorized = (self.config.vectorized_movement
                            and self.config.batched_movement)
        #: Flat residence mirror for the vectorized engine: one int8
        #: location code per LPA (0 = flash), grown lazily to the touched
        #: LPA range and kept in sync with ``_residence`` on every
        #: mutation.  ``None`` when the vectorized engine is off.  The
        #: ndarray is a zero-copy view over ``_codes_bytes`` so large runs
        #: get numpy kernels while short runs use C-level ``bytes``
        #: slicing/counting without a kernel launch.
        self._codes_bytes: Optional[bytearray] = (
            bytearray(1024) if self._vectorized else None)
        self._codes: Optional[np.ndarray] = (
            np.frombuffer(self._codes_bytes, dtype=np.int8)
            if self._vectorized else None)

    # ------------------------------------------------------------------------
    # Backend registry (the platform's compute shape, grown from config)
    # ------------------------------------------------------------------------

    def _build_backends(self) -> BackendRegistry:
        """Register one backend per configured compute engine.

        Registration order is the stable candidate/tie-break order of the
        offload stack; it must match :func:`backend_roster`.
        """
        config = self.config
        ssd_config = config.ssd
        registry = BackendRegistry()
        if config.isp_cores <= 1:
            registry.register(ISPBackend(Resource.ISP, self.isp))
        else:
            for core in range(config.isp_cores):
                registry.register(ISPBackend(
                    BackendId(f"isp[{core}]", Resource.ISP),
                    EmbeddedCoreComplex(ssd_config.controller,
                                        ssd_config.energy),
                    queue_parallelism=1))
        registry.register(PuDBackend(Resource.PUD, self.pud))
        registry.register(IFPBackend(Resource.IFP, self.ifp,
                                     self.ssd.channels))
        if config.cxl_pud is not None:
            registry.register(CXLPuDBackend(
                BackendId("cxl-pud", Resource.PUD), config.cxl_pud))
        registry.register(HostCPUBackend(Resource.HOST_CPU, self.host_cpu,
                                         self.ssd.nvme.pcie))
        registry.register(HostGPUBackend(Resource.HOST_GPU, self.host_gpu,
                                         self.ssd.nvme.pcie))
        expected = backend_roster(config)
        if registry.roster() != expected:
            raise SimulationError(
                f"backend registry {registry.roster()} diverged from "
                f"backend_roster() prediction {expected}; update both when "
                "adding a roster knob (the sweep cache keys on the "
                "prediction)")
        return registry

    def offload_candidates(self) -> Tuple[ResourceLike, ...]:
        """Identities the SSD offloader may target (registration order)."""
        return self.backends.offload_candidates()

    # ------------------------------------------------------------------------
    # Dataset placement
    # ------------------------------------------------------------------------

    @property
    def page_size(self) -> int:
        return self._page_size

    def setup_dataset(self, lpas: Iterable[int], *,
                      colocated_groups: Optional[List[List[int]]] = None
                      ) -> None:
        """Place the application dataset on flash (zero-time setup)."""
        self.ssd.populate(lpas, colocated_groups=colocated_groups)

    # ------------------------------------------------------------------------
    # Operand locations
    # ------------------------------------------------------------------------

    def location_of(self, lpa: int) -> DataLocation:
        return self._residence.get(lpa, DataLocation.FLASH)

    @property
    def residence(self) -> Dict[int, DataLocation]:
        """Residence index: LPA -> current location (flash if absent).

        Exposed (read-only by convention) so the feature collector can
        histogram operand runs in a single pass without a method call per
        page.
        """
        return self._residence

    def locations_of_pages(self, lpas: Iterable[int]
                           ) -> Dict[DataLocation, int]:
        """Histogram of locations for a set of pages."""
        histogram: Dict[DataLocation, int] = {}
        for lpa in lpas:
            location = self.location_of(lpa)
            histogram[location] = histogram.get(location, 0) + 1
        return histogram

    def _window_for(self, location: DataLocation) -> Optional[_LocationWindow]:
        return self._windows.get(location)

    # ------------------------------------------------------------------------
    # Flat residence codes (vectorized movement engine)
    # ------------------------------------------------------------------------

    def _codes_for(self, end_lpa: int) -> np.ndarray:
        """The residence-code array, grown (by doubling) to cover ``end_lpa``.

        New cells are zero-filled: code 0 is flash, exactly the meaning of
        absence from the residence dict.
        """
        codes = self._codes
        if end_lpa > len(codes):
            size = len(codes)
            while size < end_lpa:
                size *= 2
            grown = bytearray(size)
            grown[:len(codes)] = self._codes_bytes
            self._codes_bytes = grown
            self._codes = codes = np.frombuffer(grown, dtype=np.int8)
        return codes

    def _set_code(self, lpa: int, location: DataLocation) -> None:
        """Mirror one residence-dict write into the flat code array."""
        if self._codes is not None:
            self._codes_for(lpa + 1)[lpa] = LOCATION_CODES[location]

    # ------------------------------------------------------------------------
    # Precomputed data-movement latency table (Section 4.5)
    # ------------------------------------------------------------------------

    def _build_move_table(self) -> Dict[Tuple[DataLocation, DataLocation],
                                        float]:
        nand = self.config.ssd.nand
        channels = self.ssd.channels
        dram = self.dram
        nvme = self.ssd.nvme
        page = self._page_size
        flash_out = channels.uncontended_read_latency(transfer_out=True)
        flash_program = channels.uncontended_program_latency()
        dram_access = dram.uncontended_access_latency(page)
        pcie = nvme.host_transfer_latency(page)
        table = {
            (DataLocation.FLASH, DataLocation.SSD_DRAM):
                flash_out + dram_access,
            (DataLocation.FLASH, DataLocation.CTRL_SRAM): flash_out,
            (DataLocation.FLASH, DataLocation.HOST): flash_out + pcie,
            (DataLocation.SSD_DRAM, DataLocation.CTRL_SRAM): dram_access,
            (DataLocation.CTRL_SRAM, DataLocation.SSD_DRAM): dram_access,
            (DataLocation.SSD_DRAM, DataLocation.FLASH):
                dram_access + flash_program,
            (DataLocation.CTRL_SRAM, DataLocation.FLASH): flash_program,
            (DataLocation.SSD_DRAM, DataLocation.HOST): dram_access + pcie,
            (DataLocation.CTRL_SRAM, DataLocation.HOST): pcie,
            (DataLocation.HOST, DataLocation.FLASH): pcie + flash_program,
            (DataLocation.HOST, DataLocation.SSD_DRAM): pcie + dram_access,
            (DataLocation.HOST, DataLocation.CTRL_SRAM): pcie,
        }
        for location in DataLocation:
            table[(location, location)] = 0.0
        return table

    def estimate_move_latency(self, source: DataLocation,
                              destination: DataLocation,
                              pages: int = 1) -> float:
        """Uncontended latency to move ``pages`` pages (lookup table)."""
        per_page = self._move_table[(source, destination)]
        return per_page * max(0, pages)

    def move_table_lookup_latency_ns(self) -> float:
        """Latency of one lookup of the precomputed table (Section 4.5)."""
        return 100.0

    # ------------------------------------------------------------------------
    # Data movement (reserves buses, charges energy)
    # ------------------------------------------------------------------------

    def ensure_pages_at(self, now: float, lpas: Iterable[int],
                        destination: DataLocation) -> float:
        """Move every page in ``lpas`` to ``destination``; return finish time.

        Pages already resident at the destination only refresh their LRU
        position.  Dirty pages owned elsewhere are committed to flash first
        (lazy coherence).  Evictions caused by capacity pressure consume
        channel bandwidth but are written back asynchronously, so they do
        not extend the returned finish time.
        """
        finish = now
        for lpa in lpas:
            finish = max(finish, self._move_page(now, lpa, destination))
        return finish

    def ensure_runs_at(self, now: float, runs: Iterable[Tuple[int, int]],
                       destination: DataLocation) -> float:
        """Move contiguous LPA runs to ``destination``; return finish time.

        ``runs`` is an iterable of ``(base_lpa, count)`` pairs, processed in
        order.  Each run is split lazily into maximal segments of equal
        current residence (lazily, because an earlier segment's evictions
        can push a later page of the same operand back to flash): resident
        segments refresh their LRU position in bulk, moving segments go
        through the run transfer engine.  Timing, energy and statistics are
        identical to per-page :meth:`ensure_pages_at` over the same pages.
        """
        if not self.config.batched_movement:
            finish = now
            for base, count in runs:
                finish = max(finish, self.ensure_pages_at(
                    now, range(base, base + count), destination))
            return finish
        if self._vectorized:
            return self._ensure_runs_at_vectorized(now, runs, destination)
        finish = now
        get = self._residence.get
        flash = DataLocation.FLASH
        destination_window = self._window_for(destination)
        for base, count in runs:
            index = base
            end = base + count
            while index < end:
                source = get(index, flash)
                stop = index + 1
                while stop < end and get(stop, flash) is source:
                    stop += 1
                if source is destination:
                    if destination_window is not None:
                        destination_window.touch_many(range(index, stop))
                else:
                    segment_end = self._transfer_segment(
                        now, index, stop - index, source, destination,
                        destination_window)
                    if segment_end > finish:
                        finish = segment_end
                index = stop
        return finish

    def _ensure_runs_at_vectorized(self, now: float,
                                   runs: Iterable[Tuple[int, int]],
                                   destination: DataLocation) -> float:
        """:meth:`ensure_runs_at` segmented over the flat code array.

        Same lazy maximal-segment walk as the object engine -- the codes
        are re-read after every transferred segment because a fallback
        segment's evictions can push later pages of the same run back to
        flash -- but each segment boundary is found with one vectorized
        comparison instead of a per-page dict probe.
        """
        finish = now
        dest_code = LOCATION_CODES[destination]
        destination_window = self._window_for(destination)
        for base, count in runs:
            end = base + count
            index = base
            if count < _VECTOR_MIN_RUN:
                # Tiny runs: a numpy kernel launch per segment costs more
                # than it saves; instead compare the run's byte slice
                # against a memoized uniform run (one C call resolves the
                # everything-already-resident steady state) and walk the
                # bytes scalar-wise otherwise.  Same segmentation, same
                # transfers as the object engine's dict walk.
                self._codes_for(end)
                codes_bytes = self._codes_bytes
                run_codes = codes_bytes[base:end]
                if run_codes == _code_run(dest_code, count):
                    if destination_window is not None:
                        destination_window.touch_many(range(base, end))
                    continue
                offset = 0
                while offset < count:
                    source_code = run_codes[offset]
                    stop = offset + 1
                    while (stop < count
                           and run_codes[stop] == source_code):
                        stop += 1
                    if source_code == dest_code:
                        if destination_window is not None:
                            destination_window.touch_many(
                                range(base + offset, base + stop))
                    else:
                        segment_end = self._transfer_segment(
                            now, base + offset, stop - offset,
                            CODE_LOCATIONS[source_code], destination,
                            destination_window)
                        if segment_end > finish:
                            finish = segment_end
                        # The transfer (or its eviction fallback) may have
                        # rewritten later codes of this run -- and growing
                        # may have replaced the buffer -- so re-slice
                        # before the next boundary search.
                        codes_bytes = self._codes_bytes
                        run_codes = codes_bytes[base:end]
                    offset = stop
                continue
            codes = self._codes_for(end)
            while index < end:
                segment = codes[index:end]
                source_code = segment[0]
                breaks = np.flatnonzero(segment != source_code)
                stop = end if len(breaks) == 0 else index + int(breaks[0])
                if source_code == dest_code:
                    if destination_window is not None:
                        destination_window.touch_many(range(index, stop))
                else:
                    segment_end = self._transfer_segment(
                        now, index, stop - index,
                        CODE_LOCATIONS[int(source_code)], destination,
                        destination_window)
                    if segment_end > finish:
                        finish = segment_end
                    # The segment (or its eviction fallback) may have grown
                    # or replaced the code array; re-fetch before re-slicing.
                    codes = self._codes_for(end)
                index = stop
        return finish

    def _transfer_segment(self, now: float, base: int, count: int,
                          source: DataLocation, destination: DataLocation,
                          destination_window: Optional[_LocationWindow]
                          ) -> float:
        """Move one same-residence segment; dispatch to the best strategy.

        A segment can only be batch-transferred when inserting it into the
        destination window evicts nothing: an eviction's write-back shares
        buses with the segment's own transfers, and the per-page path
        interleaves them, so eviction-heavy segments (and writes back to
        flash, which are striped and trigger per-page maintenance) use the
        exact per-page reference path.
        """
        if ((destination_window is not None
                and count > destination_window.free_capacity)
                or destination is DataLocation.FLASH):
            return self.ensure_pages_at(now, range(base, base + count),
                                        destination)
        if source is DataLocation.FLASH:
            finish = self._transfer_run_from_flash(now, base, count,
                                                   destination)
        else:
            finish = self._transfer_run_internal(now, base, count, source,
                                                 destination)
        source_window = self._window_for(source)
        if source_window is not None:
            source_window.remove_many(range(base, base + count))
        residence = self._residence
        if self._vectorized:
            residence.update(dict.fromkeys(range(base, base + count),
                                           destination))
            self._codes_for(base + count)
            if count < _VECTOR_MIN_SEGMENT:
                self._codes_bytes[base:base + count] = _code_run(
                    LOCATION_CODES[destination], count)
            else:
                self._codes[base:base + count] = LOCATION_CODES[destination]
        else:
            for lpa in range(base, base + count):
                residence[lpa] = destination
        if destination_window is not None:
            victims = destination_window.add_many(range(base, base + count))
            # The free-capacity guard above makes batch insertion
            # eviction-free; an eviction here would have skipped the
            # per-page bus interleaving that timing equivalence requires.
            assert not victims, "batched segment insertion evicted pages"
        return finish

    def _transfer_run_from_flash(self, now: float, base: int, count: int,
                                 destination: DataLocation) -> float:
        """Stream a contiguous run out of flash (reads stay per page).

        Flash reads are striped over channels and dies, so every page keeps
        its own channel/die reservations and L2P translation; the
        destination leg (DRAM bus or PCIe) is reserved once for the run,
        and energy is settled with one bulk charge.
        """
        if self._vectorized and count >= _VECTOR_MIN_SEGMENT:
            return self._transfer_run_from_flash_vectorized(now, base, count,
                                                            destination)
        stats = self.movement
        page = self._page_size
        timings = self.ssd.read_run(now, base, count, transfer_out=True)
        flash_latency = 0.0
        flash_finish = now
        for timing in timings:
            flash_latency += timing.end_ns - now
            if timing.end_ns > flash_finish:
                flash_finish = timing.end_ns
        stats.flash_read_latency_ns += flash_latency
        if destination is DataLocation.SSD_DRAM:
            arrivals = [timing.end_ns for timing in timings]
            addresses = [self._dram_address(lpa)
                         for lpa in range(base, base + count)]
            ends = self.dram.access_run(arrivals, addresses, page,
                                        is_write=True)
            self.energy.charge_run(flash_read_pages=count, dma_pages=count,
                                   dram_bytes=page * count)
            stats.flash_to_dram_pages += count
            internal = 0.0
            for end in ends:
                internal += end - now
            stats.internal_latency_ns += internal
            return ends[-1]
        if destination is DataLocation.CTRL_SRAM:
            self.energy.charge_run(flash_read_pages=count, dma_pages=count)
            stats.flash_to_sram_pages += count
            stats.internal_latency_ns += flash_latency
            return flash_finish
        # destination is HOST
        arrivals = [timing.end_ns for timing in timings]
        ends = self.ssd.nvme.host_transfer_run(arrivals, page, "ssd-to-host")
        self.energy.charge_run(flash_read_pages=count, dma_pages=count,
                               pcie_bytes=page * count,
                               host_dram_bytes=page * count)
        stats.host_pages += count
        host_latency = 0.0
        for end in ends:
            host_latency += end - now
        stats.host_latency_ns += host_latency
        return ends[-1]

    def _transfer_run_from_flash_vectorized(self, now: float, base: int,
                                            count: int,
                                            destination: DataLocation
                                            ) -> float:
        """Array-timeline variant of :meth:`_transfer_run_from_flash`.

        Same reservations, energy and statistics bit-exactly: the per-page
        flash timings arrive as one ndarray, the destination leg books on
        whole arrays, and the sequentially accumulated latency counters use
        :func:`repro.ssd.events.sequential_sum` (element-by-element
        accumulation, not pairwise reduction) to match the object engine's
        running ``+=`` loops to the last ULP.
        """
        stats = self.movement
        page = self._page_size
        flash_ends = self.ssd.read_run_array(now, base, count,
                                             transfer_out=True)
        flash_latency = sequential_sum(0.0, flash_ends - now)
        stats.flash_read_latency_ns += flash_latency
        if destination is DataLocation.SSD_DRAM:
            ends = self.dram.access_run_array(
                flash_ends, self._dram_addresses(base, count), page,
                is_write=True)
            self.energy.charge_run(flash_read_pages=count, dma_pages=count,
                                   dram_bytes=page * count)
            stats.flash_to_dram_pages += count
            stats.internal_latency_ns += sequential_sum(0.0, ends - now)
            return float(ends[-1])
        if destination is DataLocation.CTRL_SRAM:
            self.energy.charge_run(flash_read_pages=count, dma_pages=count)
            stats.flash_to_sram_pages += count
            stats.internal_latency_ns += flash_latency
            return max(float(np.max(flash_ends)), now)
        # destination is HOST
        ends = self.ssd.nvme.host_transfer_run_array(flash_ends, page,
                                                     "ssd-to-host")
        self.energy.charge_run(flash_read_pages=count, dma_pages=count,
                               pcie_bytes=page * count,
                               host_dram_bytes=page * count)
        stats.host_pages += count
        stats.host_latency_ns += sequential_sum(0.0, ends - now)
        return float(ends[-1])

    def _transfer_run_internal(self, now: float, base: int, count: int,
                               source: DataLocation,
                               destination: DataLocation) -> float:
        """Move a run between DRAM, SRAM and the host (no flash involved)."""
        if self._vectorized and count >= _VECTOR_MIN_SEGMENT:
            return self._transfer_run_internal_vectorized(
                now, base, count, source, destination)
        stats = self.movement
        page = self._page_size
        if DataLocation.HOST in (source, destination):
            direction = ("ssd-to-host" if destination is DataLocation.HOST
                         else "host-to-ssd")
            ends = self.ssd.nvme.host_transfer_run([now] * count, page,
                                                   direction)
            self.energy.charge_run(pcie_bytes=page * count)
            stats.host_pages += count
            host_latency = 0.0
            for end in ends:
                host_latency += end - now
            stats.host_latency_ns += host_latency
            return ends[-1]
        addresses = [self._dram_address(lpa)
                     for lpa in range(base, base + count)]
        ends = self.dram.access_run([now] * count, addresses, page,
                                    is_write=False)
        self.energy.charge_run(dram_bytes=page * count)
        if destination is DataLocation.CTRL_SRAM:
            stats.dram_to_sram_pages += count
        else:
            stats.sram_to_dram_pages += count
        internal = 0.0
        for end in ends:
            internal += end - now
        stats.internal_latency_ns += internal
        return ends[-1]

    def _transfer_run_internal_vectorized(self, now: float, base: int,
                                          count: int, source: DataLocation,
                                          destination: DataLocation) -> float:
        """Array-timeline variant of :meth:`_transfer_run_internal`."""
        stats = self.movement
        page = self._page_size
        arrivals = np.full(count, now, dtype=np.float64)
        if DataLocation.HOST in (source, destination):
            direction = ("ssd-to-host" if destination is DataLocation.HOST
                         else "host-to-ssd")
            ends = self.ssd.nvme.host_transfer_run_array(arrivals, page,
                                                         direction)
            self.energy.charge_run(pcie_bytes=page * count)
            stats.host_pages += count
            stats.host_latency_ns += sequential_sum(0.0, ends - now)
            return float(ends[-1])
        ends = self.dram.access_run_array(
            arrivals, self._dram_addresses(base, count), page, is_write=False)
        self.energy.charge_run(dram_bytes=page * count)
        if destination is DataLocation.CTRL_SRAM:
            stats.dram_to_sram_pages += count
        else:
            stats.sram_to_dram_pages += count
        stats.internal_latency_ns += sequential_sum(0.0, ends - now)
        return float(ends[-1])

    def _move_page(self, now: float, lpa: int,
                   destination: DataLocation) -> float:
        source = self.location_of(lpa)
        if source is destination:
            window = self._window_for(destination)
            if window is not None:
                window.touch(lpa)
            return now
        finish = self._transfer_page(now, lpa, source, destination)
        self._set_residence(lpa, source, destination, now)
        return finish

    def _set_residence(self, lpa: int, source: DataLocation,
                       destination: DataLocation, now: float) -> None:
        source_window = self._window_for(source)
        if source_window is not None:
            source_window.remove(lpa)
        self._residence[lpa] = destination
        self._set_code(lpa, destination)
        destination_window = self._window_for(destination)
        if destination_window is None:
            return
        for victim in destination_window.add(lpa):
            self._evict_page(now, victim)

    def mark_produced(self, now: float, lpas: Iterable[int],
                      location: DataLocation) -> None:
        """Record that ``lpas`` were just produced at ``location``.

        Used after a computation resource writes its destination pages: the
        pages now reside at the resource's home location (dirty, per the
        coherence directory) and occupy its capacity window, possibly
        evicting older pages.
        """
        window = self._window_for(location)
        for lpa in lpas:
            source_window = self._window_for(self.location_of(lpa))
            if source_window is not None and source_window is not window:
                source_window.remove(lpa)
            self._residence[lpa] = location
            self._set_code(lpa, location)
            if window is not None:
                for victim in window.add(lpa):
                    self._evict_page(now, victim)

    def mark_produced_run(self, now: float, runs: Iterable[Tuple[int, int]],
                          location: DataLocation) -> None:
        """Run-batched :meth:`mark_produced` for contiguous LPA runs.

        Destination runs are contiguous, so occupancy of the producing
        resource's window is updated with one bulk insertion per run; runs
        whose insertion must evict fall back to the per-page path (the
        evicted pages' write-backs interleave on the shared buses).
        """
        if not self.config.batched_movement:
            for base, count in runs:
                self.mark_produced(now, range(base, base + count), location)
            return
        if self._vectorized:
            self._mark_produced_run_vectorized(now, runs, location)
            return
        window = self._window_for(location)
        residence = self._residence
        flash = DataLocation.FLASH
        for base, count in runs:
            lpas = range(base, base + count)
            if window is not None:
                new_pages = sum(1 for lpa in lpas if lpa not in window)
                if new_pages > window.free_capacity:
                    self.mark_produced(now, lpas, location)
                    continue
            for lpa in lpas:
                source_window = self._window_for(residence.get(lpa, flash))
                if source_window is not None and source_window is not window:
                    source_window.remove(lpa)
                residence[lpa] = location
            if window is not None:
                victims = window.add_many(lpas)
                # Guarded by the new_pages <= free_capacity check above.
                assert not victims, "batched mark_produced evicted pages"

    def _mark_produced_run_vectorized(self, now: float,
                                      runs: Iterable[Tuple[int, int]],
                                      location: DataLocation) -> None:
        """:meth:`mark_produced_run` over the flat code array.

        Windows and the residence dict are kept consistent by every
        mutation path, so window membership equals residence equality and
        the occupancy guard reduces to one vectorized histogram of the
        run's codes; runs of entirely-new pages append to the window with
        one bulk insertion.
        """
        window = self._window_for(location)
        location_code = LOCATION_CODES[location]
        residence = self._residence
        windows_get = self._windows.get
        for base, count in runs:
            end = base + count
            lpas = range(base, end)
            if count < _VECTOR_MIN_RUN:
                # Window membership equals residence equality (the
                # invariant the large-run branch already leans on), so the
                # run's byte slice answers both the occupancy guard (one C
                # count) and each page's source window.
                self._codes_for(end)
                codes_bytes = self._codes_bytes
                run_codes = codes_bytes[base:end]
                resident = run_codes.count(location_code)
                if resident == count:
                    # Steady state: every page already lives here; only
                    # LRU recency changes.
                    if window is not None:
                        window.touch_many(lpas)
                    continue
                if window is not None:
                    pages = window._pages
                    free = window.capacity_pages - len(pages)
                    if count - resident > free:
                        # Insertion would evict: fall back before
                        # mutating anything.
                        self.mark_produced(now, lpas, location)
                        continue
                    # One fused pass: resident pages refresh LRU recency,
                    # new pages leave their source window and append at
                    # the MRU end -- identical final order to the
                    # membership / source-removal / add_many three-pass
                    # it replaces, and the occupancy guard above keeps
                    # the eviction sweep empty.
                    move = pages.move_to_end
                    for offset in range(count):
                        lpa = base + offset
                        code = run_codes[offset]
                        if code == location_code:
                            move(lpa)
                        else:
                            source_window = windows_get(
                                CODE_LOCATIONS[code])
                            if source_window is not None:
                                source_window.remove(lpa)
                            pages[lpa] = True
                        residence[lpa] = location
                    assert len(pages) <= window.capacity_pages, \
                        "batched mark_produced evicted pages"
                else:
                    # Producing to flash: only source windows and the
                    # residence index change.
                    for offset in range(count):
                        code = run_codes[offset]
                        if code != location_code:
                            source_window = windows_get(
                                CODE_LOCATIONS[code])
                            if source_window is not None:
                                source_window.remove(base + offset)
                        residence[base + offset] = location
                codes_bytes[base:end] = _code_run(location_code, count)
                continue
            segment = self._codes_for(end)[base:end]
            resident = int(np.count_nonzero(segment == location_code))
            if window is not None and count - resident > window.free_capacity:
                self.mark_produced(now, lpas, location)
                continue
            for code, other in enumerate(CODE_LOCATIONS):
                if other is location or other is DataLocation.FLASH:
                    continue
                positions = np.flatnonzero(segment == code)
                if len(positions):
                    self._window_for(other).remove_many(
                        (base + positions).tolist())
            residence.update(dict.fromkeys(lpas, location))
            segment[:] = location_code
            if window is not None:
                if resident == 0:
                    window.extend_new(lpas)
                else:
                    victims = window.add_many(lpas)
                    # Guarded by the occupancy check above.
                    assert not victims, \
                        "batched mark_produced evicted pages"

    def _evict_page(self, now: float, lpa: int) -> None:
        """Evict a page from a temporary location back to flash."""
        location = self.location_of(lpa)
        if location is DataLocation.FLASH:
            return
        self.eviction_epoch += 1
        actions = self.coherence.on_evict(lpa)
        if actions:
            # Dirty page: asynchronous write-back consumes flash bandwidth.
            self._transfer_page(now, lpa, location, DataLocation.FLASH,
                                writeback=True)
        self._residence[lpa] = DataLocation.FLASH
        self._set_code(lpa, DataLocation.FLASH)

    def _dram_address(self, lpa: int) -> int:
        """Spread logical pages across DRAM banks for realistic parallelism."""
        span = self.config.dram.capacity_bytes - self._page_size
        return (lpa * self._page_size) % max(self._page_size, span)

    def _dram_addresses(self, base: int, count: int) -> np.ndarray:
        """Vectorized :meth:`_dram_address` over a contiguous run."""
        page = self._page_size
        span = self.config.dram.capacity_bytes - page
        lpas = np.arange(base, base + count, dtype=np.int64)
        return (lpas * page) % max(page, span)

    def _transfer_page(self, now: float, lpa: int, source: DataLocation,
                       destination: DataLocation, *,
                       writeback: bool = False) -> float:
        """Reserve the buses needed to move one page; charge energy."""
        stats = self.movement
        finish = now
        if source is DataLocation.FLASH:
            access = self.ssd.read_page(now, lpa, transfer_out=True)
            self.energy.charge_flash_read()
            self.energy.charge_channel_dma()
            finish = access.end_ns
            stats.flash_read_latency_ns += finish - now
            if destination is DataLocation.SSD_DRAM:
                dram_access = self.dram.write(
                    finish, self._dram_address(lpa), self._page_size)
                self.energy.charge_dram_access(self._page_size)
                finish = dram_access.end_ns
                stats.flash_to_dram_pages += 1
            elif destination is DataLocation.CTRL_SRAM:
                stats.flash_to_sram_pages += 1
            elif destination is DataLocation.HOST:
                transfer = self.ssd.nvme.host_transfer(finish,
                                                       self._page_size,
                                                       "ssd-to-host")
                self.energy.charge_pcie(self._page_size)
                self.energy.charge_host_dram(self._page_size)
                finish = transfer.end_ns
                stats.host_pages += 1
                stats.host_latency_ns += finish - now
        elif destination is DataLocation.FLASH:
            if source is DataLocation.SSD_DRAM:
                read = self.dram.read(now, self._dram_address(lpa),
                                      self._page_size)
                self.energy.charge_dram_access(self._page_size)
                finish = read.end_ns
            elif source is DataLocation.HOST:
                transfer = self.ssd.nvme.host_transfer(now, self._page_size,
                                                       "host-to-ssd")
                self.energy.charge_pcie(self._page_size)
                finish = transfer.end_ns
            access = self.ssd.write_page(finish, lpa)
            self.energy.charge_flash_program()
            self.energy.charge_channel_dma()
            finish = access.end_ns
            stats.writeback_pages += 1
        else:
            # DRAM <-> SRAM <-> host transfers go over the SSD DRAM bus
            # and/or PCIe.
            if DataLocation.HOST in (source, destination):
                transfer = self.ssd.nvme.host_transfer(
                    now, self._page_size,
                    "ssd-to-host" if destination is DataLocation.HOST
                    else "host-to-ssd")
                self.energy.charge_pcie(self._page_size)
                finish = transfer.end_ns
                stats.host_pages += 1
                stats.host_latency_ns += finish - now
            else:
                access = self.dram.read(now, self._dram_address(lpa),
                                        self._page_size)
                self.energy.charge_dram_access(self._page_size)
                finish = access.end_ns
                if destination is DataLocation.CTRL_SRAM:
                    stats.dram_to_sram_pages += 1
                else:
                    stats.sram_to_dram_pages += 1
        if not writeback and DataLocation.HOST not in (source, destination):
            stats.internal_latency_ns += finish - now
        return finish

    # ------------------------------------------------------------------------
    # Computation latency / energy / execution
    # ------------------------------------------------------------------------

    def supports(self, resource: ResourceLike, op: OpType) -> bool:
        return self.backends[resource].supports(op)

    def compute_latency(self, resource: ResourceLike, op: OpType,
                        size_bytes: int, element_bits: int) -> float:
        """Expected computation latency of one instruction on ``resource``."""
        return self.backends[resource].operation_latency(op, size_bytes,
                                                         element_bits)

    def compute_energy(self, resource: ResourceLike, op: OpType,
                       size_bytes: int, element_bits: int) -> float:
        return self.backends[resource].operation_energy(op, size_bytes,
                                                        element_bits)

    def record_compute(self, now: float, resource: ResourceLike, op: OpType,
                       size_bytes: int, element_bits: int) -> float:
        """Record execution on the compute backend; returns its latency."""
        backend = self.backends[resource]
        timing = backend.execute(now, op, size_bytes, element_bits)
        self.energy.add_compute(
            resource, backend.operation_energy(op, size_bytes, element_bits))
        return timing.latency_ns

    # ------------------------------------------------------------------------
    # Utilization snapshot (BW-Offloading input)
    # ------------------------------------------------------------------------

    def bandwidth_utilization(self, resource: ResourceLike,
                              elapsed: float) -> float:
        """Approximate bandwidth utilization of a backend's data path."""
        if elapsed <= 0:
            return 0.0
        return self.backends[resource].utilization(elapsed)

    # ------------------------------------------------------------------------
    # Contention feedback (the cost model's link-utilization input)
    # ------------------------------------------------------------------------

    def movement_path(self, resource: ResourceLike) -> str:
        """Monitor key of the operand path feeding one offload candidate.

        Candidates sharing a home location share the shared-bus path
        (flash channels plus the destination leg: SSD DRAM bus or PCIe),
        so the overrun observed for one backend's movements reprices every
        backend on the same path.
        """
        return self.backends[resource].home_location.value

    def maintenance_stats(self) -> MaintenanceStats:
        """Device-lifetime snapshot of the run (GC/WL pressure and wear).

        Aggregates the background engine's counters (or, with the engine
        off, the legacy synchronous GC/WL counters) with the NAND array's
        erase-count statistics and the FTL's write-amplification view.
        Attached to every :class:`~repro.core.metrics.ExecutionResult`.
        """
        ssd = self.ssd
        lifetime = self.config.lifetime
        engine = ssd.background
        minimum, mean, maximum = ssd.array.erase_count_stats()
        ftl_stats = ssd.ftl.stats
        amplification = 1.0
        if ftl_stats.host_writes:
            amplification = 1.0 + (ftl_stats.relocated_pages /
                                   ftl_stats.host_writes)
        if lifetime.drive_age is not None:
            # The profile's pre-history WA is a floor: an aged drive never
            # reports better amplification than the state it arrived in.
            amplification = max(amplification,
                                lifetime.drive_age.prior_write_amplification)
        stats = MaintenanceStats(
            background_enabled=engine is not None,
            drive_age=(lifetime.drive_age.name if lifetime.drive_age
                       else "fresh"),
            free_block_fraction=ssd.ftl.free_block_fraction(),
            erase_count_min=minimum,
            erase_count_mean=mean,
            erase_count_max=maximum,
            erase_count_variance=ssd.array.erase_count_variance(),
            wear_imbalance=ssd.wear_leveler.imbalance(),
            write_amplification=amplification,
            contention_samples=self.contention.samples)
        if engine is not None:
            stats.gc_steps = engine.gc_steps
            stats.gc_relocated_pages = engine.gc_relocated_pages
            stats.gc_erased_blocks = engine.gc_erased_blocks
            stats.wl_runs = engine.wl_runs
            stats.wl_migrated_pages = engine.wl_migrated_pages
            stats.wl_erased_blocks = engine.wl_erased_blocks
            stats.background_busy_ns = engine.busy_ns
            stats.foreground_stall_ns = engine.foreground_stall_ns
        else:
            stats.gc_steps = ssd.gc.invocations
            stats.gc_relocated_pages = ssd.gc.total_relocated
            stats.gc_erased_blocks = ssd.gc.total_erased
            stats.wl_runs = ssd.wear_leveler.invocations
            stats.wl_migrated_pages = ssd.wear_leveler.total_migrated
            stats.foreground_stall_ns = ssd.stats.maintenance_latency_ns
        return stats

    def observe_movement_contention(self, resource: ResourceLike,
                                    estimated_ns: float,
                                    observed_ns: float) -> None:
        """Feed one completed movement's estimate/actual pair back.

        Called by the offloader's dispatch loop after every operand
        movement; the overrun versus the uncontended table estimate is the
        queueing the movement experienced on its path's shared links
        (:mod:`repro.core.contention`).  A no-op unless
        ``contention_feedback`` is enabled -- feedback-off runs never
        touch the monitor and stay bit-exact.
        """
        if not self.config.contention_feedback:
            return
        self.contention.observe_movement(self.movement_path(resource),
                                         estimated_ns, observed_ns)

    def contention_penalty_ns(self, resource: ResourceLike, op: OpType,
                              size_bytes: int, element_bits: int,
                              movement_ns: float, now: float) -> float:
        """Expected extra delay from link contention for one candidate.

        Three terms, all exactly ``0.0`` with feedback disabled:

        * ``movement_ns`` (the candidate's uncontended movement estimate)
          scaled by the EWMA-observed overrun of its operand path, plus
          the live backlog of any backend-private link on that path (the
          CXL command link) -- a candidate moving nothing pays neither
          (its tier's busy-ness is already the queueing-delay feature);
        * the shared flash-channel occupancy the candidate's *execution*
          would impose (Ares-Flash partial-product shuttling), priced at
          the channels' uncontended transfer time.  This traffic never
          extends the instruction's own latency, so without feedback it
          is a free externality on every flash-bound movement.
        """
        if not self.config.contention_feedback:
            return 0.0
        backend = self.backends[resource]
        penalty = 0.0
        if movement_ns > 0.0:
            # Private-link backlog rides with the movement term: a
            # zero-movement candidate's busy tier is already priced by
            # the queueing-delay feature (its execution queue is a
            # per-candidate cost input), so charging the link again
            # there double-counts and measurably over-deters.
            scale = self.contention.scale(self.movement_path(resource))
            penalty += (movement_ns * (scale - 1.0) +
                        backend.link_backlog_ns(now))
        if self.contention.samples > 0:
            # The externality price activates with the feedback loop's
            # first observation: under provably zero traffic (nothing
            # moved yet) feedback-on estimates must equal feedback-off.
            channel_bytes = backend.execution_channel_bytes(op, size_bytes,
                                                            element_bits)
            if channel_bytes > 0.0:
                penalty += self.ssd.channels.channels.transfer_time(
                    channel_bytes)
        return penalty

    # ------------------------------------------------------------------------
    # Home locations
    # ------------------------------------------------------------------------

    def home_location(self, resource: ResourceLike) -> DataLocation:
        """Where operands must reside for ``resource`` to compute."""
        return self.backends[resource].home_location
