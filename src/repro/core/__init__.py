"""Conduit core: compiler, offloading runtime, coherence, platform, metrics."""

from repro.core.backends import BackendRegistry, ComputeBackend
from repro.core.coherence import (CoherenceDirectory, CoherenceEntry,
                                  CoherencePolicy, PageCoherenceState,
                                  SyncAction)
from repro.core.layout import ArrayLayout, ArrayPlacement
from repro.core.metrics import (ExecutionBreakdown, ExecutionResult,
                                InstructionRecord, energy_reduction,
                                geometric_mean, speedup)
from repro.core.platform import (DataMovementStats, PlatformConfig,
                                 SSDPlatform, backend_roster)
from repro.core.runtime import ConduitRuntime, HostRuntime, RuntimeConfig

__all__ = [
    "BackendRegistry", "ComputeBackend", "backend_roster",
    "CoherenceDirectory", "CoherenceEntry", "CoherencePolicy",
    "PageCoherenceState", "SyncAction", "ArrayLayout", "ArrayPlacement",
    "ExecutionBreakdown", "ExecutionResult", "InstructionRecord",
    "energy_reduction", "geometric_mean", "speedup", "DataMovementStats",
    "PlatformConfig", "SSDPlatform", "ConduitRuntime", "HostRuntime",
    "RuntimeConfig",
]
