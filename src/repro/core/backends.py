"""The pluggable compute-backend layer.

The paper's cost function (Eqns. 1-2) argmins over the SSD's computation
resources.  Rather than baking the trio (ISP, PuD-SSD, IFP) into every
layer, the platform builds a :class:`BackendRegistry` of
:class:`ComputeBackend` objects from its configuration, and the whole
offload stack -- feature collection, cost model, policies, transformation,
dispatch -- discovers its candidates from the registry.  Adding a compute
tier (per-core ISP queues, a CXL-attached PuD device, ...) is then a
configuration entry plus one adapter class next to its device model; the
offloader and cost model are untouched.

A backend bundles everything the runtime offloader asks about one
computation resource:

* ``resource`` -- its identity (a :class:`~repro.common.Resource` member for
  the default roster, a :class:`~repro.common.BackendId` for dynamically
  registered backends);
* ``kind`` -- the canonical resource family, which selects the native ISA
  and the Fig. 9 grouping;
* ``home_location`` -- where operands must reside for it to compute
  (drives the data-movement feature and the platform's movement engine);
* ``supports`` / ``operation_latency`` / ``operation_energy`` -- the
  precomputed per-op capability/latency/energy points (Section 4.5);
* ``execute`` -- actually run an operation, reserving the backend's
  execution sub-units so contention emerges naturally;
* ``utilization`` -- the bandwidth-utilization snapshot consumed by the
  BW-Offloading baseline;
* ``link_backlog_ns`` / ``execution_channel_bytes`` -- backlog of any
  backend-private link (e.g. the CXL command link) and shared
  flash-channel traffic imposed by execution itself (Ares-Flash partial
  products), consumed by the contention-aware cost model when
  ``PlatformConfig.contention_feedback`` is enabled (the offloader also
  reserves the declared execution traffic on the channel group);
* ``queue`` -- the backend's execution queue (Section 5.1, "NDP
  Extensions"), whose running latency counter is the queueing-delay
  feature.
"""

from __future__ import annotations

import abc
from typing import Dict, Iterator, List, Optional, Tuple

from repro.common import (DataLocation, OpType, Resource, ResourceLike,
                          SimulationError)
from repro.ssd.queues import ExecutionQueue


class ComputeBackend(abc.ABC):
    """One computation resource the SSD offloader can target.

    Concrete backends live next to the device model they wrap
    (:mod:`repro.isp.core`, :mod:`repro.dram.pud`, :mod:`repro.dram.cxl`,
    :mod:`repro.ifp.unit`, :mod:`repro.host.cpu`, :mod:`repro.host.gpu`).
    """

    #: Whether the SSD offloader may pick this backend (Eqn. 2 candidates).
    #: Host engines are modelled as backends too -- the OSP baselines run
    #: through the same interface -- but are not offload candidates.
    offloadable: bool = True

    def __init__(self, resource: ResourceLike, home_location: DataLocation,
                 queue_parallelism: int = 1) -> None:
        self.resource = resource
        self.home_location = home_location
        self.queue = ExecutionQueue(resource, queue_parallelism)

    @property
    def kind(self) -> Resource:
        """Canonical resource family of this backend."""
        return self.resource.kind

    @property
    def native_chunk_bytes(self) -> Optional[int]:
        """Largest chunk one native operation covers (``None``: page-sized).

        Used by the instruction transformer to split the compile-time
        vector width into resource-sized sub-operations.
        """
        return None

    # -- Capability / estimation -------------------------------------------

    @abc.abstractmethod
    def supports(self, op: OpType) -> bool:
        """Whether this backend has a native implementation of ``op``."""

    @abc.abstractmethod
    def operation_latency(self, op: OpType, size_bytes: int,
                          element_bits: int) -> float:
        """Uncontended latency of ``op`` over ``size_bytes`` (ns)."""

    @abc.abstractmethod
    def operation_energy(self, op: OpType, size_bytes: int,
                         element_bits: int) -> float:
        """Energy of ``op`` over ``size_bytes`` (nJ)."""

    # -- Execution ----------------------------------------------------------

    @abc.abstractmethod
    def execute(self, now: float, op: OpType, size_bytes: int,
                element_bits: int):
        """Execute ``op``, reserving sub-units; returns a timing object
        exposing ``latency_ns``."""

    # -- Utilization snapshot (BW-Offloading input) --------------------------

    @abc.abstractmethod
    def utilization(self, elapsed: float) -> float:
        """Approximate utilization of this backend's data path in [0, 1]."""

    # -- Contention feedback (cost-model input, Section 4.5 extension) -------

    def link_backlog_ns(self, now: float) -> float:
        """Queueing delay of backend-private links, in nanoseconds.

        The platform's shared buses (flash channels, SSD DRAM bus, PCIe)
        are observed through the movement-overrun feedback; a backend that
        owns an extra link on its operand path (the CXL-attached PuD
        tier's CXL link) reports that link's backlog here so the
        contention-aware cost model
        (``PlatformConfig.contention_feedback``) can fold it into the
        candidate's movement penalty.  Backends without private links
        report ``0.0``.
        """
        return 0.0

    def execution_channel_bytes(self, op: OpType, size_bytes: int,
                                element_bits: int) -> float:
        """Shared flash-channel traffic executing ``op`` would generate.

        In-flash arithmetic (Ares-Flash) shuttles partial products between
        the flash chips and the controller while it runs, occupying the
        shared channels (Section 6.4); every other backend computes out of
        its home location and reports ``0``.  The offloader reserves this
        traffic on the channel group during execution, and the
        contention-aware cost model charges the candidate its occupancy --
        the traffic does not extend the instruction's own latency, so
        without feedback it is an unpriced externality on every
        flash-bound movement.
        """
        return 0.0


class BackendRegistry:
    """Ordered registry of the platform's compute backends.

    Registration order is semantically meaningful: it defines the stable
    tie-break order of the cost function's argmin and the candidate
    iteration order of every policy, independent of enum definition order.
    """

    def __init__(self) -> None:
        self._backends: "Dict[ResourceLike, ComputeBackend]" = {}
        self._candidates: Optional[Tuple[ResourceLike, ...]] = None

    # -- Registration --------------------------------------------------------

    def register(self, backend: ComputeBackend) -> ComputeBackend:
        key = backend.resource
        if key in self._backends:
            raise SimulationError(
                f"compute backend {key!r} is already registered")
        self._backends[key] = backend
        self._candidates = None
        return backend

    # -- Lookup --------------------------------------------------------------

    def __getitem__(self, resource: ResourceLike) -> ComputeBackend:
        try:
            return self._backends[resource]
        except KeyError:
            known = ", ".join(str(key) for key in self._backends)
            raise SimulationError(
                f"no compute backend registered for {resource!r}; "
                f"registered backends: {known}") from None

    def __contains__(self, resource: ResourceLike) -> bool:
        return resource in self._backends

    def __iter__(self) -> Iterator[ComputeBackend]:
        return iter(self._backends.values())

    def __len__(self) -> int:
        return len(self._backends)

    def ids(self) -> Tuple[ResourceLike, ...]:
        """All backend identities, in registration order."""
        return tuple(self._backends)

    def roster(self) -> Tuple[str, ...]:
        """Human-readable backend identities, in registration order."""
        return tuple(key.value for key in self._backends)

    # -- Candidate discovery -------------------------------------------------

    def offload_candidates(self) -> Tuple[ResourceLike, ...]:
        """Identities of the backends the SSD offloader may target.

        The tuple is cached (and invalidated on registration): the feature
        collector asks once per instruction.
        """
        candidates = self._candidates
        if candidates is None:
            candidates = tuple(key for key, backend in self._backends.items()
                               if backend.offloadable)
            self._candidates = candidates
        return candidates

    def backends_of_kind(self, kind: Resource) -> List[ComputeBackend]:
        """All registered backends of one resource family."""
        return [backend for backend in self._backends.values()
                if backend.kind is kind]

    def queues(self) -> "Dict[ResourceLike, ExecutionQueue]":
        """Backend identity -> execution queue, in registration order."""
        return {key: backend.queue
                for key, backend in self._backends.items()}
