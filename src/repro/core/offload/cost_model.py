"""Conduit's holistic cost function (Equations 1 and 2).

For every instruction the cost function computes, per SSD computation
resource *i*::

    total_latency_resource_i = latency_comp + latency_dm
                               + max(delay_dd, delay_queue)

and selects::

    offloading_target = argmin(total_latency_ISP,
                               total_latency_PuD_SSD,
                               total_latency_IFP)

The maximum of the data-dependence and queueing delays is used because the
two overlap: an instruction starts only when both its operands and the
chosen resource are ready.  Ablation switches (sum instead of max, dropping
individual features) are exposed for the design-choice benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.common import ResourceLike, SimulationError
from repro.core.offload.features import InstructionFeatures, ResourceFeatures


@dataclass(frozen=True)
class CostModelConfig:
    """Ablation switches for the cost function."""

    combine_delays_with_max: bool = True
    include_data_movement: bool = True
    include_queueing_delay: bool = True
    include_dependence_delay: bool = True
    include_compute_latency: bool = True


@dataclass(slots=True)
class CostEstimate:
    """Per-backend cost of one instruction."""

    resource: ResourceLike
    total_latency_ns: float
    compute_ns: float
    data_movement_ns: float
    overlap_delay_ns: float
    supported: bool


class CostFunction:
    """Implements Eqn. 1 / Eqn. 2 with optional ablations."""

    def __init__(self, config: Optional[CostModelConfig] = None) -> None:
        self.config = config or CostModelConfig()
        self.evaluations = 0

    def estimate(self, features: ResourceFeatures) -> CostEstimate:
        """Equation 1 for one resource.

        The movement term is the contention-corrected estimate: the raw
        uncontended table lookup scaled by the EWMA-observed overrun of
        the candidate's operand path (exactly the raw lookup when
        ``PlatformConfig.contention_feedback`` is off).
        """
        config = self.config
        compute = (features.expected_compute_latency_ns
                   if config.include_compute_latency else 0.0)
        movement = (features.contended_data_movement_latency_ns
                    if config.include_data_movement else 0.0)
        dependence = (features.dependence_delay_ns
                      if config.include_dependence_delay else 0.0)
        queueing = (features.queueing_delay_ns
                    if config.include_queueing_delay else 0.0)
        overlap = (max(dependence, queueing)
                   if config.combine_delays_with_max
                   else dependence + queueing)
        total = compute + movement + overlap
        if not features.supported:
            total = float("inf")
        return CostEstimate(resource=features.resource,
                            total_latency_ns=total, compute_ns=compute,
                            data_movement_ns=movement,
                            overlap_delay_ns=overlap,
                            supported=features.supported)

    def estimate_all(self, features: InstructionFeatures
                     ) -> Dict[ResourceLike, CostEstimate]:
        """Equation 1 for every offload candidate the platform registered."""
        return {resource: self.estimate(features.feature(resource))
                for resource in features.candidates}

    def select(self, features: InstructionFeatures
               ) -> Tuple[ResourceLike, Dict[ResourceLike, CostEstimate]]:
        """Equation 2: argmin over the registered offload candidates.

        Exact-cost ties break by backend *registration order*, which is
        stable for dynamically registered backends (an enum-value
        tie-break would silently depend on enum definition order and has
        no meaning for registry-minted identities).
        """
        self.evaluations += 1
        estimate = self.estimate
        estimates: Dict[ResourceLike, CostEstimate] = {}
        target: Optional[ResourceLike] = None
        best = float("inf")
        # One pass in registration order; a strict < keeps the first
        # minimum, which is exactly the registration-order tie-break.
        for resource, feature in features.per_resource.items():
            cost = estimates[resource] = estimate(feature)
            if cost.supported and cost.total_latency_ns < best:
                target = resource
                best = cost.total_latency_ns
        if target is None:
            raise SimulationError(
                f"no SSD resource supports operation {features.op.value}")
        return target, estimates

    def select_batch(self, features_list: Sequence[InstructionFeatures]
                     ) -> Tuple[List[ResourceLike], np.ndarray]:
        """Vectorized Equation 2 over N instructions.

        Builds the ``(candidates x instructions)`` total-latency matrix --
        each element evaluated with exactly :meth:`estimate`'s expression
        order, unsupported candidates pinned to ``inf`` -- and takes
        ``np.argmin`` along the candidate axis.  ``np.argmin`` returns the
        *first* minimum, which is precisely the strict-``<``
        registration-order tie-break of N sequential :meth:`select` calls,
        so the two are provably identical (pinned by
        ``tests/test_batched_offload.py``).  All instructions must share
        one candidate roster (one platform).  Returns the selected
        resources (one per instruction) and the matrix.
        """
        count = len(features_list)
        if count == 0:
            return [], np.empty((0, 0), dtype=np.float64)
        config = self.config
        include_compute = config.include_compute_latency
        include_movement = config.include_data_movement
        include_dependence = config.include_dependence_delay
        include_queueing = config.include_queueing_delay
        combine_max = config.combine_delays_with_max
        candidates = list(features_list[0].per_resource)
        inf = float("inf")
        totals = np.empty((len(candidates), count), dtype=np.float64)
        for column, features in enumerate(features_list):
            for row, feature in enumerate(features.per_resource.values()):
                if not feature.supported:
                    totals[row, column] = inf
                    continue
                compute = (feature.expected_compute_latency_ns
                           if include_compute else 0.0)
                movement = (feature.contended_data_movement_latency_ns
                            if include_movement else 0.0)
                dependence = (feature.dependence_delay_ns
                              if include_dependence else 0.0)
                queueing = (feature.queueing_delay_ns
                            if include_queueing else 0.0)
                overlap = (max(dependence, queueing) if combine_max
                           else dependence + queueing)
                totals[row, column] = compute + movement + overlap
        self.evaluations += count
        winners = np.argmin(totals, axis=0)
        selected: List[ResourceLike] = []
        for column, row in enumerate(winners):
            if totals[row, column] == inf:
                raise SimulationError(
                    f"no SSD resource supports operation "
                    f"{features_list[column].op.value}")
            selected.append(candidates[row])
        return selected, totals
