"""Conduit's holistic cost function (Equations 1 and 2).

For every instruction the cost function computes, per SSD computation
resource *i*::

    total_latency_resource_i = latency_comp + latency_dm
                               + max(delay_dd, delay_queue)

and selects::

    offloading_target = argmin(total_latency_ISP,
                               total_latency_PuD_SSD,
                               total_latency_IFP)

The maximum of the data-dependence and queueing delays is used because the
two overlap: an instruction starts only when both its operands and the
chosen resource are ready.  Ablation switches (sum instead of max, dropping
individual features) are exposed for the design-choice benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.common import ResourceLike, SimulationError
from repro.core.offload.features import InstructionFeatures, ResourceFeatures


@dataclass(frozen=True)
class CostModelConfig:
    """Ablation switches for the cost function."""

    combine_delays_with_max: bool = True
    include_data_movement: bool = True
    include_queueing_delay: bool = True
    include_dependence_delay: bool = True
    include_compute_latency: bool = True


@dataclass(slots=True)
class CostEstimate:
    """Per-backend cost of one instruction."""

    resource: ResourceLike
    total_latency_ns: float
    compute_ns: float
    data_movement_ns: float
    overlap_delay_ns: float
    supported: bool


class CostFunction:
    """Implements Eqn. 1 / Eqn. 2 with optional ablations."""

    def __init__(self, config: Optional[CostModelConfig] = None) -> None:
        self.config = config or CostModelConfig()
        self.evaluations = 0

    def estimate(self, features: ResourceFeatures) -> CostEstimate:
        """Equation 1 for one resource.

        The movement term is the contention-corrected estimate: the raw
        uncontended table lookup scaled by the EWMA-observed overrun of
        the candidate's operand path (exactly the raw lookup when
        ``PlatformConfig.contention_feedback`` is off).
        """
        config = self.config
        compute = (features.expected_compute_latency_ns
                   if config.include_compute_latency else 0.0)
        movement = (features.contended_data_movement_latency_ns
                    if config.include_data_movement else 0.0)
        dependence = (features.dependence_delay_ns
                      if config.include_dependence_delay else 0.0)
        queueing = (features.queueing_delay_ns
                    if config.include_queueing_delay else 0.0)
        overlap = (max(dependence, queueing)
                   if config.combine_delays_with_max
                   else dependence + queueing)
        total = compute + movement + overlap
        if not features.supported:
            total = float("inf")
        return CostEstimate(resource=features.resource,
                            total_latency_ns=total, compute_ns=compute,
                            data_movement_ns=movement,
                            overlap_delay_ns=overlap,
                            supported=features.supported)

    def estimate_all(self, features: InstructionFeatures
                     ) -> Dict[ResourceLike, CostEstimate]:
        """Equation 1 for every offload candidate the platform registered."""
        return {resource: self.estimate(features.feature(resource))
                for resource in features.candidates}

    def select(self, features: InstructionFeatures
               ) -> Tuple[ResourceLike, Dict[ResourceLike, CostEstimate]]:
        """Equation 2: argmin over the registered offload candidates.

        Exact-cost ties break by backend *registration order*, which is
        stable for dynamically registered backends (an enum-value
        tie-break would silently depend on enum definition order and has
        no meaning for registry-minted identities).
        """
        self.evaluations += 1
        estimate = self.estimate
        estimates: Dict[ResourceLike, CostEstimate] = {}
        target: Optional[ResourceLike] = None
        best = float("inf")
        # One pass in registration order; a strict < keeps the first
        # minimum, which is exactly the registration-order tie-break.
        for resource, feature in features.per_resource.items():
            cost = estimates[resource] = estimate(feature)
            if cost.supported and cost.total_latency_ns < best:
                target = resource
                best = cost.total_latency_ns
        if target is None:
            raise SimulationError(
                f"no SSD resource supports operation {features.op.value}")
        return target, estimates
