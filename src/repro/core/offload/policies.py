"""Offloading policies: Conduit and the prior-work baselines.

The paper evaluates Conduit against two classes of prior NDP offloading
models (Section 3.2 / 5.3) plus single-resource NDP techniques:

* **BW-Offloading** -- offloads each instruction to the computation resource
  with the lowest bandwidth utilization, ignoring data-movement cost.
* **DM-Offloading** -- offloads each instruction to the resource that
  minimizes operand data movement, ignoring contention.
* **ISP / PuD-SSD / Flash-Cosmos / Ares-Flash** -- single-resource NDP
  techniques; operations the technique does not support fall back to the
  SSD controller cores (Section 5.3).
* **Ideal** -- assumes no queueing delays, zero data-movement latency, and
  always picks the resource with the lowest computation latency (an upper
  bound, not realizable).
* **Conduit** -- the holistic cost function of
  :mod:`repro.core.offload.cost_model`.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.common import OpType, Resource, ResourceLike, SimulationError
from repro.core.compiler.ir import VectorInstruction
from repro.core.offload.cost_model import CostFunction, CostModelConfig
from repro.core.offload.features import InstructionFeatures
from repro.core.platform import SSDPlatform


@dataclass(slots=True)
class PolicyContext:
    """Runtime information handed to a policy alongside the features."""

    platform: SSDPlatform
    now: float
    elapsed: float


class OffloadingPolicy(abc.ABC):
    """Base class for instruction-granularity offloading policies.

    Policies see the platform's backend roster through
    ``features.candidates`` (registration order); single-resource
    baselines select backends by their resource *family* (``kind``), so a
    platform grown to several ISP cores or an extra PuD tier needs no
    policy edits.
    """

    #: Human-readable policy name used in experiment tables.
    name: str = "policy"
    #: Ideal policies are executed without contention or data movement.
    is_ideal: bool = False

    @abc.abstractmethod
    def choose(self, instruction: VectorInstruction,
               features: InstructionFeatures,
               context: PolicyContext) -> ResourceLike:
        """Pick the compute backend for ``instruction``."""

    def _supported(self, features: InstructionFeatures
                   ) -> Dict[ResourceLike, bool]:
        return {resource: feature.supported
                for resource, feature in features.per_resource.items()}

    @staticmethod
    def _viable(features: InstructionFeatures) -> List[ResourceLike]:
        """Supported candidates in registration order."""
        return [resource
                for resource, feature in features.per_resource.items()
                if feature.supported]

    @staticmethod
    def _of_kind(features: InstructionFeatures,
                 kind: Resource) -> List[ResourceLike]:
        """Candidates of one resource family, in registration order."""
        return [resource for resource in features.per_resource
                if resource.kind is kind]

    @classmethod
    def _least_queued(cls, features: InstructionFeatures,
                      candidates: List[ResourceLike]) -> ResourceLike:
        """The least-backlogged candidate (ties keep registration order)."""
        per_resource = features.per_resource
        return min(candidates,
                   key=lambda r: per_resource[r].queueing_delay_ns)

    @staticmethod
    def _fallback(features: InstructionFeatures) -> ResourceLike:
        for resource, feature in features.per_resource.items():
            if feature.supported:
                return resource
        raise SimulationError("no resource supports the instruction")


class ConduitPolicy(OffloadingPolicy):
    """The paper's holistic cost-function policy (Equations 1 and 2)."""

    name = "Conduit"

    def __init__(self, cost_config: Optional[CostModelConfig] = None) -> None:
        self.cost_function = CostFunction(cost_config)

    def choose(self, instruction: VectorInstruction,
               features: InstructionFeatures,
               context: PolicyContext) -> ResourceLike:
        target, _ = self.cost_function.select(features)
        return target


class IdealPolicy(OffloadingPolicy):
    """Upper bound: lowest computation latency, no contention, free moves.

    The prior-work baselines (Ideal, BW-, DM-Offloading) keep their
    historical ``r.value`` tie-break: their pinned golden behaviour
    predates the registry (BW-Offloading ties on all-zero utilization at
    startup, where the lexicographic order is observable), and they are
    frozen reference points rather than evolving policies.  Conduit's
    cost function is the one that tie-breaks by registration order.
    """

    name = "Ideal"
    is_ideal = True

    def choose(self, instruction: VectorInstruction,
               features: InstructionFeatures,
               context: PolicyContext) -> ResourceLike:
        viable = self._viable(features)
        return min(viable, key=lambda r: (
            features.feature(r).expected_compute_latency_ns, r.value))


class BWOffloadingPolicy(OffloadingPolicy):
    """Bandwidth-utilization-based offloading (TOM-style models)."""

    name = "BW-Offloading"

    def choose(self, instruction: VectorInstruction,
               features: InstructionFeatures,
               context: PolicyContext) -> ResourceLike:
        viable = self._viable(features)
        if not viable:
            return self._fallback(features)
        utilization = {r: context.platform.bandwidth_utilization(
            r, context.elapsed) for r in viable}
        return min(viable, key=lambda r: (utilization[r], r.value))


class DMOffloadingPolicy(OffloadingPolicy):
    """Data-movement-minimizing offloading (ALP-style models).

    Ranks by the contention-corrected movement estimate, which is exactly
    the raw table lookup (and therefore the pinned golden behaviour)
    unless ``PlatformConfig.contention_feedback`` is enabled.
    """

    name = "DM-Offloading"

    def choose(self, instruction: VectorInstruction,
               features: InstructionFeatures,
               context: PolicyContext) -> ResourceLike:
        viable = self._viable(features)
        if not viable:
            return self._fallback(features)
        return min(viable, key=lambda r: (
            features.feature(r).contended_data_movement_latency_ns,
            features.feature(r).expected_compute_latency_ns, r.value))


class ISPOnlyPolicy(OffloadingPolicy):
    """All computation on the SSD controller cores.

    On a multi-core roster (``isp[0..n)``) work goes to the
    least-backlogged core, which is what a firmware round-robin converges
    to; on the default roster this is always the single ISP backend.
    """

    name = "ISP"

    def choose(self, instruction: VectorInstruction,
               features: InstructionFeatures,
               context: PolicyContext) -> ResourceLike:
        cores = self._of_kind(features, Resource.ISP)
        if not cores:
            return self._fallback(features)
        return self._least_queued(features, cores)


class PuDOnlyPolicy(OffloadingPolicy):
    """PuD-SSD (MIMDRAM in the SSD DRAM); unsupported ops fall back to ISP."""

    name = "PuD-SSD"

    def choose(self, instruction: VectorInstruction,
               features: InstructionFeatures,
               context: PolicyContext) -> ResourceLike:
        tiers = [r for r in self._of_kind(features, Resource.PUD)
                 if features.feature(r).supported]
        if tiers:
            return self._least_queued(features, tiers)
        return self._fallback(features)


class FlashCosmosPolicy(OffloadingPolicy):
    """Flash-Cosmos: in-flash bulk bitwise; everything else on ISP."""

    name = "Flash-Cosmos"

    def choose(self, instruction: VectorInstruction,
               features: InstructionFeatures,
               context: PolicyContext) -> ResourceLike:
        if instruction.op.is_bitwise:
            units = [r for r in self._of_kind(features, Resource.IFP)
                     if features.feature(r).supported]
            if units:
                return self._least_queued(features, units)
        return self._fallback(features)


class AresFlashPolicy(OffloadingPolicy):
    """Ares-Flash: in-flash bitwise + arithmetic; fallback to ISP."""

    name = "Ares-Flash"

    def choose(self, instruction: VectorInstruction,
               features: InstructionFeatures,
               context: PolicyContext) -> ResourceLike:
        units = [r for r in self._of_kind(features, Resource.IFP)
                 if features.feature(r).supported]
        if units:
            return self._least_queued(features, units)
        return self._fallback(features)


class NaiveIFPISPPolicy(OffloadingPolicy):
    """Naively alternate between IFP and ISP without any cost awareness.

    This is the "naively combining IFP and ISP" configuration of the
    Fig. 4 case study (Section 3.1): supported operations alternate between
    the two resources, which adds inter-resource data movement and can hurt
    I/O-intensive workloads.
    """

    name = "IFP+ISP"

    def __init__(self) -> None:
        self._toggle = False

    def choose(self, instruction: VectorInstruction,
               features: InstructionFeatures,
               context: PolicyContext) -> ResourceLike:
        units = [r for r in self._of_kind(features, Resource.IFP)
                 if features.feature(r).supported]
        cores = self._of_kind(features, Resource.ISP)
        if not units or not cores:
            return self._fallback(features)
        self._toggle = not self._toggle
        return (self._least_queued(features, units) if self._toggle
                else self._least_queued(features, cores))


#: Registry of instantiable policies keyed by their experiment-table names.
POLICY_REGISTRY = {
    ConduitPolicy.name: ConduitPolicy,
    IdealPolicy.name: IdealPolicy,
    BWOffloadingPolicy.name: BWOffloadingPolicy,
    DMOffloadingPolicy.name: DMOffloadingPolicy,
    ISPOnlyPolicy.name: ISPOnlyPolicy,
    PuDOnlyPolicy.name: PuDOnlyPolicy,
    FlashCosmosPolicy.name: FlashCosmosPolicy,
    AresFlashPolicy.name: AresFlashPolicy,
    NaiveIFPISPPolicy.name: NaiveIFPISPPolicy,
}


def make_policy(name: str) -> OffloadingPolicy:
    """Instantiate a policy by its experiment-table name.

    Raises a :class:`ValueError` naming the known policies, so a typo in a
    figure harness or sweep spec fails with an actionable message.
    """
    if name not in POLICY_REGISTRY:
        known = ", ".join(sorted(POLICY_REGISTRY))
        raise ValueError(f"unknown offloading policy {name!r}; known "
                         f"policies: {known}")
    return POLICY_REGISTRY[name]()
