"""Offloading policies: Conduit and the prior-work baselines.

The paper evaluates Conduit against two classes of prior NDP offloading
models (Section 3.2 / 5.3) plus single-resource NDP techniques:

* **BW-Offloading** -- offloads each instruction to the computation resource
  with the lowest bandwidth utilization, ignoring data-movement cost.
* **DM-Offloading** -- offloads each instruction to the resource that
  minimizes operand data movement, ignoring contention.
* **ISP / PuD-SSD / Flash-Cosmos / Ares-Flash** -- single-resource NDP
  techniques; operations the technique does not support fall back to the
  SSD controller cores (Section 5.3).
* **Ideal** -- assumes no queueing delays, zero data-movement latency, and
  always picks the resource with the lowest computation latency (an upper
  bound, not realizable).
* **Conduit** -- the holistic cost function of
  :mod:`repro.core.offload.cost_model`.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.common import OpType, Resource, ResourceLike, SimulationError
from repro.core.compiler.ir import VectorInstruction
from repro.core.offload.cost_model import CostFunction, CostModelConfig
from repro.core.offload.features import InstructionFeatures, WaveBatch
from repro.core.platform import SSDPlatform


@dataclass(slots=True)
class PolicyContext:
    """Runtime information handed to a policy alongside the features."""

    platform: SSDPlatform
    now: float
    elapsed: float


@dataclass(slots=True)
class PackedMember:
    """One wave member's packed feature view (the batch-path carrier).

    The wave-batched offloader owns a single instance and mutates it per
    member (like :class:`PolicyContext`): policies read it synchronously
    inside :meth:`OffloadingPolicy.choose_packed` and never retain it.
    The live fields (``queue_delays_ns``, ``contention_delays_ns``,
    ``dependence_delay_ns``) were read at this member's decision time;
    the rest comes from the wave's precollected batch.  All values are
    collector-gated exactly like :class:`ResourceFeatures` fields, so
    :meth:`features` can materialize the member's full feature vector
    bit-identically -- that is the automatic per-instruction fallback.
    """

    collector: object
    batch: Optional[WaveBatch] = None
    index: int = 0
    instruction: Optional[VectorInstruction] = None
    #: Per-candidate static rows
    #: ``(resource, home, supported, compute_latency, queue)``.
    static: Optional[list] = None
    #: Per-candidate raw movement sums (collector-gated table lookups).
    movement_ns: Optional[List[float]] = None
    queue_delays_ns: Optional[List[float]] = None
    contention_delays_ns: Optional[List[float]] = None
    dependence_delay_ns: float = 0.0

    def features(self) -> InstructionFeatures:
        """Materialize the member's full :class:`InstructionFeatures`."""
        return self.collector.materialize(
            self.batch, self.index, self.dependence_delay_ns,
            self.queue_delays_ns, self.contention_delays_ns)


class OffloadingPolicy(abc.ABC):
    """Base class for instruction-granularity offloading policies.

    Policies see the platform's backend roster through
    ``features.candidates`` (registration order); single-resource
    baselines select backends by their resource *family* (``kind``), so a
    platform grown to several ISP cores or an extra PuD tier needs no
    policy edits.
    """

    #: Human-readable policy name used in experiment tables.
    name: str = "policy"
    #: Ideal policies are executed without contention or data movement.
    is_ideal: bool = False

    @abc.abstractmethod
    def choose(self, instruction: VectorInstruction,
               features: InstructionFeatures,
               context: PolicyContext) -> ResourceLike:
        """Pick the compute backend for ``instruction``."""

    def choose_packed(self, packed: PackedMember,
                      context: PolicyContext) -> ResourceLike:
        """Batch entry point used by the wave-batched offload engine.

        The default implementation is the automatic per-instruction
        fallback: it materializes the member's full feature vector and
        delegates to :meth:`choose`, so custom policies stay correct --
        and bit-identical -- under ``PlatformConfig.batched_offload``
        without any change.  Policies with a cheaper packed evaluation
        (Conduit's cost function) override it.
        """
        return self.choose(packed.instruction, packed.features(), context)

    def _supported(self, features: InstructionFeatures
                   ) -> Dict[ResourceLike, bool]:
        return {resource: feature.supported
                for resource, feature in features.per_resource.items()}

    @staticmethod
    def _viable(features: InstructionFeatures) -> List[ResourceLike]:
        """Supported candidates in registration order."""
        return [resource
                for resource, feature in features.per_resource.items()
                if feature.supported]

    @staticmethod
    def _of_kind(features: InstructionFeatures,
                 kind: Resource) -> List[ResourceLike]:
        """Candidates of one resource family, in registration order."""
        return [resource for resource in features.per_resource
                if resource.kind is kind]

    @classmethod
    def _least_queued(cls, features: InstructionFeatures,
                      candidates: List[ResourceLike]) -> ResourceLike:
        """The least-backlogged candidate (ties keep registration order)."""
        per_resource = features.per_resource
        return min(candidates,
                   key=lambda r: per_resource[r].queueing_delay_ns)

    @staticmethod
    def _fallback(features: InstructionFeatures) -> ResourceLike:
        for resource, feature in features.per_resource.items():
            if feature.supported:
                return resource
        raise SimulationError("no resource supports the instruction")

    # -- Packed (wave-batch) helpers, mirroring the feature-object ones ---------------
    #
    # Static rows are ``(resource, home, supported, compute_latency,
    # queue)`` in registration order, so each helper below walks them in
    # exactly the order its feature-object counterpart walks
    # ``per_resource`` -- every strict ``<`` keeps the first minimum,
    # which is ``min``'s own first-occurrence tie-break.

    @staticmethod
    def _packed_fallback(static: list) -> ResourceLike:
        for entry in static:
            if entry[2]:
                return entry[0]
        raise SimulationError("no resource supports the instruction")

    @staticmethod
    def _packed_least_queued(packed: PackedMember,
                             indices: List[int]) -> ResourceLike:
        """The least-backlogged of the candidates at ``indices``."""
        queue_delays_ns = packed.queue_delays_ns
        static = packed.static
        target: Optional[ResourceLike] = None
        best = 0.0
        for index in indices:
            delay = queue_delays_ns[index]
            if target is None or delay < best:
                target = static[index][0]
                best = delay
        return target


class ConduitPolicy(OffloadingPolicy):
    """The paper's holistic cost-function policy (Equations 1 and 2)."""

    name = "Conduit"

    def __init__(self, cost_config: Optional[CostModelConfig] = None) -> None:
        self.cost_function = CostFunction(cost_config)

    def choose(self, instruction: VectorInstruction,
               features: InstructionFeatures,
               context: PolicyContext) -> ResourceLike:
        target, _ = self.cost_function.select(features)
        return target

    def choose_packed(self, packed: PackedMember,
                      context: PolicyContext) -> ResourceLike:
        """Equations 1 and 2 over the packed scalars, no feature objects.

        Term for term and in the same expression order as
        :meth:`CostFunction.estimate` /
        :meth:`CostFunction.select` (strict ``<`` keeps the first
        minimum, the registration-order tie-break), so the result is
        bit-identical to the materialize-and-select fallback.
        """
        cost_function = self.cost_function
        config = cost_function.config
        cost_function.evaluations += 1
        include_compute = config.include_compute_latency
        include_movement = config.include_data_movement
        include_queueing = config.include_queueing_delay
        dependence = (packed.dependence_delay_ns
                      if config.include_dependence_delay else 0.0)
        combine_max = config.combine_delays_with_max
        movement_ns = packed.movement_ns
        contention_ns = packed.contention_delays_ns
        queue_delays_ns = packed.queue_delays_ns
        target: Optional[ResourceLike] = None
        best = float("inf")
        for index, (resource, _, supported, compute_ns,
                    _) in enumerate(packed.static):
            if not supported:
                continue
            compute = compute_ns if include_compute else 0.0
            if include_movement:
                raw = movement_ns[index]
                contention = contention_ns[index]
                movement = raw if contention == 0.0 else raw + contention
            else:
                movement = 0.0
            queueing = (queue_delays_ns[index] if include_queueing
                        else 0.0)
            overlap = ((dependence if dependence >= queueing else queueing)
                       if combine_max else dependence + queueing)
            total = compute + movement + overlap
            if total < best:
                target = resource
                best = total
        if target is None:
            raise SimulationError(
                f"no SSD resource supports operation "
                f"{packed.instruction.op.value}")
        return target


class IdealPolicy(OffloadingPolicy):
    """Upper bound: lowest computation latency, no contention, free moves.

    The prior-work baselines (Ideal, BW-, DM-Offloading) keep their
    historical ``r.value`` tie-break: their pinned golden behaviour
    predates the registry (BW-Offloading ties on all-zero utilization at
    startup, where the lexicographic order is observable), and they are
    frozen reference points rather than evolving policies.  Conduit's
    cost function is the one that tie-breaks by registration order.
    """

    name = "Ideal"
    is_ideal = True

    def choose(self, instruction: VectorInstruction,
               features: InstructionFeatures,
               context: PolicyContext) -> ResourceLike:
        viable = self._viable(features)
        return min(viable, key=lambda r: (
            features.feature(r).expected_compute_latency_ns, r.value))

    def choose_packed(self, packed: PackedMember,
                      context: PolicyContext) -> ResourceLike:
        target: Optional[ResourceLike] = None
        best_key = None
        for resource, _, supported, compute_ns, _ in packed.static:
            if not supported:
                continue
            key = (compute_ns, resource.value)
            if best_key is None or key < best_key:
                target = resource
                best_key = key
        if target is None:
            raise SimulationError("no resource supports the instruction")
        return target


class BWOffloadingPolicy(OffloadingPolicy):
    """Bandwidth-utilization-based offloading (TOM-style models)."""

    name = "BW-Offloading"

    def choose(self, instruction: VectorInstruction,
               features: InstructionFeatures,
               context: PolicyContext) -> ResourceLike:
        viable = self._viable(features)
        if not viable:
            return self._fallback(features)
        utilization = {r: context.platform.bandwidth_utilization(
            r, context.elapsed) for r in viable}
        return min(viable, key=lambda r: (utilization[r], r.value))

    def choose_packed(self, packed: PackedMember,
                      context: PolicyContext) -> ResourceLike:
        static = packed.static
        bandwidth_utilization = context.platform.bandwidth_utilization
        elapsed = context.elapsed
        target: Optional[ResourceLike] = None
        best_key = None
        for resource, _, supported, _, _ in static:
            if not supported:
                continue
            key = (bandwidth_utilization(resource, elapsed), resource.value)
            if best_key is None or key < best_key:
                target = resource
                best_key = key
        if target is None:
            return self._packed_fallback(static)
        return target


class DMOffloadingPolicy(OffloadingPolicy):
    """Data-movement-minimizing offloading (ALP-style models).

    Ranks by the contention-corrected movement estimate, which is exactly
    the raw table lookup (and therefore the pinned golden behaviour)
    unless ``PlatformConfig.contention_feedback`` is enabled.
    """

    name = "DM-Offloading"

    def choose(self, instruction: VectorInstruction,
               features: InstructionFeatures,
               context: PolicyContext) -> ResourceLike:
        viable = self._viable(features)
        if not viable:
            return self._fallback(features)
        return min(viable, key=lambda r: (
            features.feature(r).contended_data_movement_latency_ns,
            features.feature(r).expected_compute_latency_ns, r.value))

    def choose_packed(self, packed: PackedMember,
                      context: PolicyContext) -> ResourceLike:
        static = packed.static
        movement_ns = packed.movement_ns
        contention_ns = packed.contention_delays_ns
        target: Optional[ResourceLike] = None
        best_key = None
        for index, (resource, _, supported, compute_ns,
                    _) in enumerate(static):
            if not supported:
                continue
            raw = movement_ns[index]
            contention = contention_ns[index]
            # ResourceFeatures.contended_data_movement_latency_ns, term
            # for term.
            contended = raw if contention == 0.0 else raw + contention
            key = (contended, compute_ns, resource.value)
            if best_key is None or key < best_key:
                target = resource
                best_key = key
        if target is None:
            return self._packed_fallback(static)
        return target


class ISPOnlyPolicy(OffloadingPolicy):
    """All computation on the SSD controller cores.

    On a multi-core roster (``isp[0..n)``) work goes to the
    least-backlogged core, which is what a firmware round-robin converges
    to; on the default roster this is always the single ISP backend.
    """

    name = "ISP"

    def choose(self, instruction: VectorInstruction,
               features: InstructionFeatures,
               context: PolicyContext) -> ResourceLike:
        cores = self._of_kind(features, Resource.ISP)
        if not cores:
            return self._fallback(features)
        return self._least_queued(features, cores)

    def choose_packed(self, packed: PackedMember,
                      context: PolicyContext) -> ResourceLike:
        static = packed.static
        cores = [index for index, entry in enumerate(static)
                 if entry[0].kind is Resource.ISP]
        if not cores:
            return self._packed_fallback(static)
        return self._packed_least_queued(packed, cores)


class PuDOnlyPolicy(OffloadingPolicy):
    """PuD-SSD (MIMDRAM in the SSD DRAM); unsupported ops fall back to ISP."""

    name = "PuD-SSD"

    def choose(self, instruction: VectorInstruction,
               features: InstructionFeatures,
               context: PolicyContext) -> ResourceLike:
        tiers = [r for r in self._of_kind(features, Resource.PUD)
                 if features.feature(r).supported]
        if tiers:
            return self._least_queued(features, tiers)
        return self._fallback(features)

    def choose_packed(self, packed: PackedMember,
                      context: PolicyContext) -> ResourceLike:
        static = packed.static
        tiers = [index for index, entry in enumerate(static)
                 if entry[0].kind is Resource.PUD and entry[2]]
        if tiers:
            return self._packed_least_queued(packed, tiers)
        return self._packed_fallback(static)


class FlashCosmosPolicy(OffloadingPolicy):
    """Flash-Cosmos: in-flash bulk bitwise; everything else on ISP."""

    name = "Flash-Cosmos"

    def choose(self, instruction: VectorInstruction,
               features: InstructionFeatures,
               context: PolicyContext) -> ResourceLike:
        if instruction.op.is_bitwise:
            units = [r for r in self._of_kind(features, Resource.IFP)
                     if features.feature(r).supported]
            if units:
                return self._least_queued(features, units)
        return self._fallback(features)

    def choose_packed(self, packed: PackedMember,
                      context: PolicyContext) -> ResourceLike:
        static = packed.static
        if packed.instruction.op.is_bitwise:
            units = [index for index, entry in enumerate(static)
                     if entry[0].kind is Resource.IFP and entry[2]]
            if units:
                return self._packed_least_queued(packed, units)
        return self._packed_fallback(static)


class AresFlashPolicy(OffloadingPolicy):
    """Ares-Flash: in-flash bitwise + arithmetic; fallback to ISP."""

    name = "Ares-Flash"

    def choose(self, instruction: VectorInstruction,
               features: InstructionFeatures,
               context: PolicyContext) -> ResourceLike:
        units = [r for r in self._of_kind(features, Resource.IFP)
                 if features.feature(r).supported]
        if units:
            return self._least_queued(features, units)
        return self._fallback(features)

    def choose_packed(self, packed: PackedMember,
                      context: PolicyContext) -> ResourceLike:
        static = packed.static
        units = [index for index, entry in enumerate(static)
                 if entry[0].kind is Resource.IFP and entry[2]]
        if units:
            return self._packed_least_queued(packed, units)
        return self._packed_fallback(static)


class NaiveIFPISPPolicy(OffloadingPolicy):
    """Naively alternate between IFP and ISP without any cost awareness.

    This is the "naively combining IFP and ISP" configuration of the
    Fig. 4 case study (Section 3.1): supported operations alternate between
    the two resources, which adds inter-resource data movement and can hurt
    I/O-intensive workloads.
    """

    name = "IFP+ISP"

    def __init__(self) -> None:
        self._toggle = False

    def choose(self, instruction: VectorInstruction,
               features: InstructionFeatures,
               context: PolicyContext) -> ResourceLike:
        units = [r for r in self._of_kind(features, Resource.IFP)
                 if features.feature(r).supported]
        cores = self._of_kind(features, Resource.ISP)
        if not units or not cores:
            return self._fallback(features)
        self._toggle = not self._toggle
        return (self._least_queued(features, units) if self._toggle
                else self._least_queued(features, cores))

    def choose_packed(self, packed: PackedMember,
                      context: PolicyContext) -> ResourceLike:
        static = packed.static
        units = [index for index, entry in enumerate(static)
                 if entry[0].kind is Resource.IFP and entry[2]]
        cores = [index for index, entry in enumerate(static)
                 if entry[0].kind is Resource.ISP]
        if not units or not cores:
            return self._packed_fallback(static)
        self._toggle = not self._toggle
        return self._packed_least_queued(packed,
                                         units if self._toggle else cores)


#: Registry of instantiable policies keyed by their experiment-table names.
POLICY_REGISTRY = {
    ConduitPolicy.name: ConduitPolicy,
    IdealPolicy.name: IdealPolicy,
    BWOffloadingPolicy.name: BWOffloadingPolicy,
    DMOffloadingPolicy.name: DMOffloadingPolicy,
    ISPOnlyPolicy.name: ISPOnlyPolicy,
    PuDOnlyPolicy.name: PuDOnlyPolicy,
    FlashCosmosPolicy.name: FlashCosmosPolicy,
    AresFlashPolicy.name: AresFlashPolicy,
    NaiveIFPISPPolicy.name: NaiveIFPISPPolicy,
}


def make_policy(name: str) -> OffloadingPolicy:
    """Instantiate a policy by its experiment-table name.

    Raises a :class:`ValueError` naming the known policies, so a typo in a
    figure harness or sweep spec fails with an actionable message.
    """
    if name not in POLICY_REGISTRY:
        known = ", ".join(sorted(POLICY_REGISTRY))
        raise ValueError(f"unknown offloading policy {name!r}; known "
                         f"policies: {known}")
    return POLICY_REGISTRY[name]()
