"""The SSD offloader.

Runs inside the SSD controller (on a dedicated embedded core) and, for every
vector instruction of the downloaded Conduit binary (Section 4.3.2):

1. collects the six cost-function features (:class:`FeatureCollector`);
2. asks the offloading policy for a target resource;
3. translates the instruction into the target's native ISA and splits the
   compile-time vector width into resource-sized sub-operations
   (:class:`InstructionTransformer`);
4. moves operands to the target resource's home location (through the
   platform's data-movement engine, honouring lazy coherence);
5. dispatches the instruction into the target resource's execution queue
   and reserves its execution slot.

The offloader core itself is a shared resource: its per-instruction serial
occupancy is the feature-collection plus transformation latency divided by a
small pipelining factor (independent lookups -- L2P, queue counters,
latency tables -- are issued concurrently), while the *full* overhead is
charged to the instruction's own ready time, reproducing the 3.77 us average
overhead of Section 4.5.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.common import DataLocation, ResourceLike, SimulationError
from repro.core.compiler.ir import VectorInstruction
from repro.core.layout import ArrayLayout
from repro.core.offload.features import (FeatureCollector,
                                         FeatureCollectorConfig,
                                         InstructionFeatures, WaveBatch)
from repro.core.offload.policies import (OffloadingPolicy, PackedMember,
                                         PolicyContext)
from repro.core.offload.transform import (InstructionTransformer,
                                          TransformedInstruction)
from repro.core.platform import SSDPlatform


@dataclass(frozen=True)
class OffloaderConfig:
    """Tunables of the runtime offloader."""

    #: Independent feature lookups issued concurrently by the offloader
    #: core; the serial dispatcher occupancy is overhead / pipeline_depth.
    pipeline_depth: int = 8
    #: Maximum number of dispatched-but-incomplete instructions.  The
    #: offloader core issues in order and stalls once this window is full,
    #: which bounds how far dispatch runs ahead of execution (and therefore
    #: how large the queueing-delay estimates can grow).
    max_outstanding: int = 64
    feature_config: FeatureCollectorConfig = field(
        default_factory=FeatureCollectorConfig)


@dataclass(slots=True)
class OffloadDecision:
    """Everything the runtime needs to know about one offloaded instruction."""

    instruction: VectorInstruction
    resource: ResourceLike
    #: The full feature vector (``None`` on the wave-batched fast path,
    #: which decides from packed scalars without materializing one).
    features: Optional[InstructionFeatures]
    transformed: Optional[TransformedInstruction]
    dispatch_ns: float
    ready_ns: float
    start_ns: float
    end_ns: float
    compute_ns: float
    data_movement_ns: float
    overhead_ns: float


class SSDOffloader:
    """Per-instruction offloading engine."""

    def __init__(self, platform: SSDPlatform, layout: ArrayLayout,
                 policy: OffloadingPolicy,
                 config: Optional[OffloaderConfig] = None) -> None:
        self.platform = platform
        self.layout = layout
        self.policy = policy
        self.config = config or OffloaderConfig()
        self.collector = FeatureCollector(platform, layout,
                                          self.config.feature_config)
        self.transformer = InstructionTransformer(platform)
        self.decisions: List[OffloadDecision] = []
        # Dispatch-loop constants and handles, resolved once: the offload
        # path runs per instruction and per policy.
        self._pipeline_depth = max(1, self.config.pipeline_depth)
        self._is_ideal = policy.is_ideal
        self._choose = policy.choose
        self._choose_packed = policy.choose_packed
        self._collect = self.collector.collect
        self._transform = self.transformer.transform
        self._dispatch_core = platform.dispatch_core
        #: One reusable packed-member carrier for the wave-batched path;
        #: policies read it synchronously inside ``choose_packed`` and
        #: never retain it (mirrors the reusable PolicyContext below).
        self._packed = PackedMember(self.collector)
        #: One reusable policy context; policies read it synchronously
        #: inside ``choose`` and never retain it.
        self._context = PolicyContext(platform=platform, now=0.0, elapsed=1.0)
        #: In-flight queue entries: backend -> min-heap of (end time, uid),
        #: so draining pops only the entries that actually completed instead
        #: of rebuilding the whole list on every offload call.  Keys come
        #: from the platform's backend registry, not a hardcoded trio.
        self._in_flight: Dict[ResourceLike, List[Tuple[float, int]]] = {
            resource: [] for resource in platform.offload_candidates()}
        #: Earliest completion time across the in-flight heaps; draining
        #: is a no-op before this, so the per-offload scan is skipped.
        self._next_retire = float("inf")

    # -- Queue bookkeeping ---------------------------------------------------------

    def _drain_queues(self, now: float) -> None:
        """Retire queue entries whose completion time has passed."""
        if now < self._next_retire:
            return
        queues = self.platform.queues.queues
        next_retire = float("inf")
        for resource, heap in self._in_flight.items():
            if heap and heap[0][0] <= now:
                queue = queues[resource]
                while heap and heap[0][0] <= now:
                    _, uid = heapq.heappop(heap)
                    queue.complete(uid)
            if heap and heap[0][0] < next_retire:
                next_retire = heap[0][0]
        self._next_retire = next_retire

    # -- Main entry point -------------------------------------------------------------

    def offload(self, instruction: VectorInstruction, arrival_ns: float,
                deps_ready_ns: float, elapsed_ns: float) -> OffloadDecision:
        """Offload one instruction.

        ``arrival_ns`` is when the offloader core can start working on the
        instruction (after the previous dispatch), ``deps_ready_ns`` is when
        its producers finish, and ``elapsed_ns`` is the current wall-clock
        used for utilization-based policies.
        """
        if arrival_ns >= self._next_retire:
            self._drain_queues(arrival_ns)
        pending_producer = deps_ready_ns - arrival_ns
        if pending_producer < 0.0:
            pending_producer = 0.0
        features = self._collect(instruction, arrival_ns, pending_producer)
        context = self._context
        context.now = arrival_ns
        context.elapsed = elapsed_ns if elapsed_ns > 1.0 else 1.0
        resource = self._choose(instruction, features, context)
        overhead_ns = features.collection_latency_ns
        transformed: Optional[TransformedInstruction] = None
        if not self._is_ideal:
            transformed = self._transform(instruction, resource)
            overhead_ns += transformed.lookup_latency_ns
        # Inlined single-server dispatch-core reservation (the serial
        # occupancy is always nonnegative, so the negative-duration guard
        # of Server.reserve cannot fire).
        serial_ns = overhead_ns / self._pipeline_depth
        core = self._dispatch_core
        free = core._free_at
        dispatch_start = arrival_ns if arrival_ns >= free else free
        core._free_at = dispatch_start + serial_ns
        core.busy_time += serial_ns
        core.jobs += 1
        issue_ns = dispatch_start + overhead_ns

        if self._is_ideal:
            compute = features.per_resource[resource].expected_compute_latency_ns
            return self._execute_ideal(instruction, features, resource,
                                       dispatch_start, issue_ns,
                                       deps_ready_ns, overhead_ns, compute)
        source_runs = features.source_runs
        if source_runs is None:
            source_runs = self.collector.operand_runs(instruction)
        dest_run = self.collector.destination_run(instruction)
        # The collector already resolved the chosen candidate's
        # precomputed latency point; reuse it (identical memoized float)
        # rather than walking the backend chain again.
        chosen = features.per_resource.get(resource)
        if chosen is not None and chosen.supported:
            compute: Optional[float] = chosen.expected_compute_latency_ns
        else:
            compute = None
        movement_estimate = (chosen.data_movement_latency_ns
                             if chosen is not None else 0.0)
        return self._execute_real(instruction, features, resource,
                                  transformed, dispatch_start, issue_ns,
                                  deps_ready_ns, overhead_ns, source_runs,
                                  dest_run, compute, movement_estimate)

    # -- Wave-batched entry points (PlatformConfig.batched_offload) ---------------------

    def begin_wave(self, instructions: List[VectorInstruction],
                   source_runs: List[Tuple[Tuple[int, int], ...]],
                   dest_runs: List[Optional[Tuple[int, int]]]) -> WaveBatch:
        """Precollect one dependence-free, page-disjoint wave's features."""
        return self.collector.collect_batch(instructions, source_runs,
                                            dest_runs)

    def offload_member(self, batch: Optional[WaveBatch], pos: int,
                       instruction: VectorInstruction, arrival_ns: float,
                       deps_ready_ns: float,
                       elapsed_ns: float) -> OffloadDecision:
        """Offload one wave member from its precollected features.

        Bit-identical to :meth:`offload` by construction: the precollected
        components cannot have changed since collection (the wave is
        page-disjoint and the hazard counters are revalidated below), the
        LRU refreshes recorded at precollect time are replayed here so the
        mapping cache sees the exact sequential access order, and every
        live term -- queueing delay, dependence delay, contention
        penalties -- is read at this member's own decision time exactly as
        :meth:`FeatureCollector.collect` would.  Any hazard kills the
        whole batch (sticky) and falls back to the reference path.
        """
        if batch is None or batch.dead:
            return self.offload(instruction, arrival_ns, deps_ready_ns,
                                elapsed_ns)
        platform = self.platform
        cache = platform.ssd.ftl.cache
        if (platform.eviction_epoch != batch.eviction_epoch
                or cache.version != batch.mapping_version):
            # A previous member's dispatch evicted a page or churned the
            # L2P cache membership: the precollected locations / hit
            # partitions may be stale for the rest of the wave.
            batch.dead = True
            return self.offload(instruction, arrival_ns, deps_ready_ns,
                                elapsed_ns)
        if arrival_ns >= self._next_retire:
            self._drain_queues(arrival_ns)
        pending_producer = deps_ready_ns - arrival_ns
        if pending_producer < 0.0:
            pending_producer = 0.0
        # Replay the LRU refreshes the sequential collect would issue at
        # this decision point (membership is unchanged -- revalidated
        # above -- so the recorded hits are still hits).
        move_to_end = cache._entries.move_to_end
        for lpa in batch.hit_lpas[pos]:
            move_to_end(lpa)
        collection_ns = batch.collection_ns[pos]
        self.collector.charge(collection_ns)

        config = self.collector.config
        dependence = (pending_producer
                      if config.include_dependence_delay else 0.0)
        include_queueing = config.include_queueing_delay
        feedback = platform.config.contention_feedback
        static = batch.static[pos]
        movement_row = batch.movement_rows[pos]
        op = instruction.op
        size_bytes = instruction.size_bytes
        element_bits = instruction.element_bits
        penalty = platform.contention_penalty_ns
        queue_delays: List[float] = []
        contention_delays: List[float] = []
        for index, (resource, _, _, _, queue) in enumerate(static):
            queue_delays.append(queue._pending_latency / queue._parallelism
                                if include_queueing else 0.0)
            contention_delays.append(
                penalty(resource, op, size_bytes, element_bits,
                        movement_row[index], arrival_ns)
                if feedback else 0.0)

        packed = self._packed
        packed.batch = batch
        packed.index = pos
        packed.instruction = instruction
        packed.static = static
        packed.movement_ns = movement_row
        packed.queue_delays_ns = queue_delays
        packed.contention_delays_ns = contention_delays
        packed.dependence_delay_ns = dependence
        context = self._context
        context.now = arrival_ns
        context.elapsed = elapsed_ns if elapsed_ns > 1.0 else 1.0
        resource = self._choose_packed(packed, context)
        overhead_ns = collection_ns
        transformed: Optional[TransformedInstruction] = None
        if not self._is_ideal:
            transformed = self._transform(instruction, resource)
            overhead_ns += transformed.lookup_latency_ns
        serial_ns = overhead_ns / self._pipeline_depth
        core = self._dispatch_core
        free = core._free_at
        dispatch_start = arrival_ns if arrival_ns >= free else free
        core._free_at = dispatch_start + serial_ns
        core.busy_time += serial_ns
        core.jobs += 1
        issue_ns = dispatch_start + overhead_ns

        chosen_index = -1
        for index, entry in enumerate(static):
            if entry[0] == resource:
                chosen_index = index
                break
        if self._is_ideal:
            if chosen_index >= 0:
                compute = static[chosen_index][3]
            else:
                compute = platform.backends._backends[
                    resource].operation_latency(op, size_bytes, element_bits)
            return self._execute_ideal(instruction, None, resource,
                                       dispatch_start, issue_ns,
                                       deps_ready_ns, overhead_ns, compute)
        if chosen_index >= 0:
            entry = static[chosen_index]
            compute = entry[3] if entry[2] else None
            movement_estimate = movement_row[chosen_index]
        else:
            compute = None
            movement_estimate = 0.0
        return self._execute_real(instruction, None, resource, transformed,
                                  dispatch_start, issue_ns, deps_ready_ns,
                                  overhead_ns, batch.source_runs[pos],
                                  batch.dest_runs[pos], compute,
                                  movement_estimate)

    # -- Ideal execution (no contention, free data movement) ------------------------------

    def _execute_ideal(self, instruction: VectorInstruction,
                       features: Optional[InstructionFeatures],
                       resource: ResourceLike,
                       dispatch_ns: float, issue_ns: float,
                       deps_ready_ns: float, overhead_ns: float,
                       compute: float) -> OffloadDecision:
        start = issue_ns if issue_ns >= deps_ready_ns else deps_ready_ns
        end = start + compute
        self.platform.record_compute(start, resource, instruction.op,
                                     instruction.size_bytes,
                                     instruction.element_bits)
        decision = OffloadDecision(instruction, resource, features, None,
                                   dispatch_ns, start, start, end, compute,
                                   0.0, overhead_ns)
        self.decisions.append(decision)
        return decision

    # -- Real execution (moves data, reserves queues) ---------------------------------------

    def _execute_real(self, instruction: VectorInstruction,
                      features: Optional[InstructionFeatures],
                      resource: ResourceLike,
                      transformed: TransformedInstruction,
                      dispatch_ns: float, issue_ns: float,
                      deps_ready_ns: float, overhead_ns: float,
                      source_runs, dest_run: Optional[Tuple[int, int]],
                      compute: Optional[float],
                      movement_estimate: float) -> OffloadDecision:
        platform = self.platform
        backend = platform.backends._backends[resource]
        home = backend.home_location
        op = instruction.op
        size_bytes = instruction.size_bytes
        element_bits = instruction.element_bits
        uid = instruction.uid

        move_start = issue_ns if issue_ns >= deps_ready_ns else deps_ready_ns
        # Lazy coherence: a read of a page whose dirty copy lives elsewhere
        # commits that page to flash before it can be re-read.
        commit_end = move_start
        on_read_run = platform.coherence.on_read_run
        for base, count in source_runs:
            for action in on_read_run(base, count, home):
                end = platform.ensure_pages_at(
                    move_start, (action.lpa,), DataLocation.FLASH)
                if end > commit_end:
                    commit_end = end
        dm_end = platform.ensure_runs_at(commit_end, source_runs, home)
        data_movement_ns = dm_end - move_start
        # Live contention feedback: report how long reaching this operand
        # path actually took against its uncontended estimate, so the
        # next instruction's estimates price the observed cost of the
        # path (no-op unless PlatformConfig.contention_feedback is
        # enabled).  Deliberately measured from move_start, i.e.
        # *including* the lazy-coherence commits above: operand ping-pong
        # between homes surfaces as commit delay, and attributing it to
        # the path being entered is what lets the feedback price the
        # write-sharing churn the greedy model is blind to.
        if platform.config.contention_feedback:
            platform.observe_movement_contention(
                resource, movement_estimate, data_movement_ns)

        if compute is None:
            compute = backend.operation_latency(op, size_bytes, element_bits)
        queue = platform.queues.queues[resource]
        queue.enqueue(uid, issue_ns, compute)
        ready = dm_end if dm_end >= deps_ready_ns else deps_ready_ns
        reservation = queue.reserve(uid, ready, compute)
        end_ns = reservation.end
        heapq.heappush(self._in_flight[resource], (end_ns, uid))
        if end_ns < self._next_retire:
            self._next_retire = end_ns
        backend.execute(reservation.start, op, size_bytes, element_bits)
        platform.energy.add_compute(
            resource, backend.operation_energy(op, size_bytes, element_bits))
        # Execution-time shared-channel traffic (Ares-Flash shuttles
        # partial products between the flash chips and the controller,
        # Section 6.4) is declared by the backend and occupies the shared
        # flash channels during execution.
        channel_bytes = backend.execution_channel_bytes(
            op, size_bytes, element_bits)
        if channel_bytes:
            platform.ssd.channels.channels.transfer(reservation.start,
                                                    channel_bytes)

        # The destination pages now live at the resource's home location.
        if dest_run is not None:
            platform.coherence.on_write_run(dest_run[0], dest_run[1], home)
            platform.mark_produced_run(reservation.end, (dest_run,), home)

        decision = OffloadDecision(instruction, resource, features,
                                   transformed, dispatch_ns, ready,
                                   reservation.start, end_ns, compute,
                                   data_movement_ns, overhead_ns)
        self.decisions.append(decision)
        return decision

    # -- Overhead statistics (Section 4.5) ---------------------------------------------------

    @property
    def average_overhead_ns(self) -> float:
        if not self.decisions:
            return 0.0
        return sum(d.overhead_ns for d in self.decisions) / len(self.decisions)

    @property
    def max_overhead_ns(self) -> float:
        if not self.decisions:
            return 0.0
        return max(d.overhead_ns for d in self.decisions)
