"""The SSD offloader.

Runs inside the SSD controller (on a dedicated embedded core) and, for every
vector instruction of the downloaded Conduit binary (Section 4.3.2):

1. collects the six cost-function features (:class:`FeatureCollector`);
2. asks the offloading policy for a target resource;
3. translates the instruction into the target's native ISA and splits the
   compile-time vector width into resource-sized sub-operations
   (:class:`InstructionTransformer`);
4. moves operands to the target resource's home location (through the
   platform's data-movement engine, honouring lazy coherence);
5. dispatches the instruction into the target resource's execution queue
   and reserves its execution slot.

The offloader core itself is a shared resource: its per-instruction serial
occupancy is the feature-collection plus transformation latency divided by a
small pipelining factor (independent lookups -- L2P, queue counters,
latency tables -- are issued concurrently), while the *full* overhead is
charged to the instruction's own ready time, reproducing the 3.77 us average
overhead of Section 4.5.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.common import DataLocation, ResourceLike, SimulationError
from repro.core.compiler.ir import VectorInstruction
from repro.core.layout import ArrayLayout
from repro.core.offload.features import (FeatureCollector,
                                         FeatureCollectorConfig,
                                         InstructionFeatures)
from repro.core.offload.policies import OffloadingPolicy, PolicyContext
from repro.core.offload.transform import (InstructionTransformer,
                                          TransformedInstruction)
from repro.core.platform import SSDPlatform


@dataclass(frozen=True)
class OffloaderConfig:
    """Tunables of the runtime offloader."""

    #: Independent feature lookups issued concurrently by the offloader
    #: core; the serial dispatcher occupancy is overhead / pipeline_depth.
    pipeline_depth: int = 8
    #: Maximum number of dispatched-but-incomplete instructions.  The
    #: offloader core issues in order and stalls once this window is full,
    #: which bounds how far dispatch runs ahead of execution (and therefore
    #: how large the queueing-delay estimates can grow).
    max_outstanding: int = 64
    feature_config: FeatureCollectorConfig = field(
        default_factory=FeatureCollectorConfig)


@dataclass
class OffloadDecision:
    """Everything the runtime needs to know about one offloaded instruction."""

    instruction: VectorInstruction
    resource: ResourceLike
    features: InstructionFeatures
    transformed: Optional[TransformedInstruction]
    dispatch_ns: float
    ready_ns: float
    start_ns: float
    end_ns: float
    compute_ns: float
    data_movement_ns: float
    overhead_ns: float


class SSDOffloader:
    """Per-instruction offloading engine."""

    def __init__(self, platform: SSDPlatform, layout: ArrayLayout,
                 policy: OffloadingPolicy,
                 config: Optional[OffloaderConfig] = None) -> None:
        self.platform = platform
        self.layout = layout
        self.policy = policy
        self.config = config or OffloaderConfig()
        self.collector = FeatureCollector(platform, layout,
                                          self.config.feature_config)
        self.transformer = InstructionTransformer(platform)
        self.decisions: List[OffloadDecision] = []
        #: In-flight queue entries: backend -> min-heap of (end time, uid),
        #: so draining pops only the entries that actually completed instead
        #: of rebuilding the whole list on every offload call.  Keys come
        #: from the platform's backend registry, not a hardcoded trio.
        self._in_flight: Dict[ResourceLike, List[Tuple[float, int]]] = {
            resource: [] for resource in platform.offload_candidates()}

    # -- Queue bookkeeping ---------------------------------------------------------

    def _drain_queues(self, now: float) -> None:
        """Retire queue entries whose completion time has passed."""
        queues = self.platform.queues
        for resource, heap in self._in_flight.items():
            if not heap or heap[0][0] > now:
                continue
            queue = queues[resource]
            while heap and heap[0][0] <= now:
                _, uid = heapq.heappop(heap)
                queue.complete(uid)

    # -- Main entry point -------------------------------------------------------------

    def offload(self, instruction: VectorInstruction, arrival_ns: float,
                deps_ready_ns: float, elapsed_ns: float) -> OffloadDecision:
        """Offload one instruction.

        ``arrival_ns`` is when the offloader core can start working on the
        instruction (after the previous dispatch), ``deps_ready_ns`` is when
        its producers finish, and ``elapsed_ns`` is the current wall-clock
        used for utilization-based policies.
        """
        platform = self.platform
        self._drain_queues(arrival_ns)
        pending_producer = max(0.0, deps_ready_ns - arrival_ns)
        features = self.collector.collect(instruction, arrival_ns,
                                          pending_producer)
        context = PolicyContext(platform=platform, now=arrival_ns,
                                elapsed=max(elapsed_ns, 1.0))
        resource = self.policy.choose(instruction, features, context)
        overhead_ns = features.collection_latency_ns
        transformed: Optional[TransformedInstruction] = None
        if not self.policy.is_ideal:
            transformed = self.transformer.transform(instruction, resource)
            overhead_ns += transformed.lookup_latency_ns
        serial_ns = overhead_ns / max(1, self.config.pipeline_depth)
        dispatch = platform.dispatch_core.reserve(arrival_ns, serial_ns)
        issue_ns = dispatch.start + overhead_ns

        if self.policy.is_ideal:
            return self._execute_ideal(instruction, features, resource,
                                       dispatch.start, issue_ns,
                                       deps_ready_ns, overhead_ns)
        return self._execute_real(instruction, features, resource,
                                  transformed, dispatch.start, issue_ns,
                                  deps_ready_ns, overhead_ns)

    # -- Ideal execution (no contention, free data movement) ------------------------------

    def _execute_ideal(self, instruction: VectorInstruction,
                       features: InstructionFeatures, resource: ResourceLike,
                       dispatch_ns: float, issue_ns: float,
                       deps_ready_ns: float,
                       overhead_ns: float) -> OffloadDecision:
        compute = features.feature(resource).expected_compute_latency_ns
        start = max(issue_ns, deps_ready_ns)
        end = start + compute
        self.platform.record_compute(start, resource, instruction.op,
                                     instruction.size_bytes,
                                     instruction.element_bits)
        decision = OffloadDecision(
            instruction=instruction, resource=resource, features=features,
            transformed=None, dispatch_ns=dispatch_ns, ready_ns=start,
            start_ns=start, end_ns=end, compute_ns=compute,
            data_movement_ns=0.0, overhead_ns=overhead_ns)
        self.decisions.append(decision)
        return decision

    # -- Real execution (moves data, reserves queues) ---------------------------------------

    def _execute_real(self, instruction: VectorInstruction,
                      features: InstructionFeatures, resource: ResourceLike,
                      transformed: TransformedInstruction,
                      dispatch_ns: float, issue_ns: float,
                      deps_ready_ns: float,
                      overhead_ns: float) -> OffloadDecision:
        platform = self.platform
        home = platform.home_location(resource)
        source_runs = self.collector.operand_runs(instruction)
        dest_run = self.collector.destination_run(instruction)

        move_start = max(issue_ns, deps_ready_ns)
        # Lazy coherence: a read of a page whose dirty copy lives elsewhere
        # commits that page to flash before it can be re-read.
        commit_end = move_start
        for base, count in source_runs:
            for action in platform.coherence.on_read_run(base, count, home):
                commit_end = max(commit_end, platform.ensure_pages_at(
                    move_start, (action.lpa,), DataLocation.FLASH))
        dm_end = platform.ensure_runs_at(commit_end, source_runs, home)
        data_movement_ns = dm_end - move_start
        # Live contention feedback: report how long reaching this operand
        # path actually took against its uncontended estimate, so the
        # next instruction's estimates price the observed cost of the
        # path (no-op unless PlatformConfig.contention_feedback is
        # enabled).  Deliberately measured from move_start, i.e.
        # *including* the lazy-coherence commits above: operand ping-pong
        # between homes surfaces as commit delay, and attributing it to
        # the path being entered is what lets the feedback price the
        # write-sharing churn the greedy model is blind to.
        platform.observe_movement_contention(
            resource, features.feature(resource).data_movement_latency_ns,
            data_movement_ns)

        compute = platform.compute_latency(resource, instruction.op,
                                           instruction.size_bytes,
                                           instruction.element_bits)
        queue = platform.queues[resource]
        queue.enqueue(instruction.uid, issue_ns, compute)
        ready = max(dm_end, deps_ready_ns)
        reservation = queue.reserve(instruction.uid, ready, compute)
        heapq.heappush(self._in_flight[resource],
                       (reservation.end, instruction.uid))
        platform.record_compute(reservation.start, resource, instruction.op,
                                instruction.size_bytes,
                                instruction.element_bits)
        # Execution-time shared-channel traffic (Ares-Flash shuttles
        # partial products between the flash chips and the controller,
        # Section 6.4) is declared by the backend and occupies the shared
        # flash channels during execution.
        channel_bytes = platform.backends[resource].execution_channel_bytes(
            instruction.op, instruction.size_bytes, instruction.element_bits)
        if channel_bytes:
            platform.ssd.channels.channels.transfer(reservation.start,
                                                    channel_bytes)

        # The destination pages now live at the resource's home location.
        if dest_run is not None:
            platform.coherence.on_write_run(dest_run[0], dest_run[1], home)
            platform.mark_produced_run(reservation.end, (dest_run,), home)

        decision = OffloadDecision(
            instruction=instruction, resource=resource, features=features,
            transformed=transformed, dispatch_ns=dispatch_ns, ready_ns=ready,
            start_ns=reservation.start, end_ns=reservation.end,
            compute_ns=compute, data_movement_ns=data_movement_ns,
            overhead_ns=overhead_ns)
        self.decisions.append(decision)
        return decision

    # -- Overhead statistics (Section 4.5) ---------------------------------------------------

    @property
    def average_overhead_ns(self) -> float:
        if not self.decisions:
            return 0.0
        return sum(d.overhead_ns for d in self.decisions) / len(self.decisions)

    @property
    def max_overhead_ns(self) -> float:
        if not self.decisions:
            return 0.0
        return max(d.overhead_ns for d in self.decisions)
