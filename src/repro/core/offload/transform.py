"""Instruction transformation unit.

After the offloader picks a target resource, Conduit translates the vector
instruction into the native ISA of that resource (Section 4.3.2):

* **ISP**: ARM M-Profile Vector Extension (MVE / Helium) instructions.
* **PuD-SSD**: the ``bbop_*`` ISA extensions of SIMDRAM / MIMDRAM / Proteus.
* **IFP**: Flash-Cosmos multi-wordline-sensing primitives and Ares-Flash's
  ``shift_and_add``.

The transformation is a lookup in a translation table stored in SSD DRAM
(~1.5 KiB, Section 4.5) costing ~300 ns per instruction, plus splitting the
compile-time vector width (4096 x 32-bit, one flash page) into the smaller
sub-operation widths the target resource supports (DRAM rows for PuD-SSD,
32-bit MVE beats batched into SRAM tiles for ISP).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.common import OpType, Resource, ResourceLike, SimulationError
from repro.core.compiler.ir import VectorInstruction
from repro.core.platform import SSDPlatform
from repro.ifp.isa import primitive as ifp_primitive
from repro.isp.isa import mnemonic as isp_mnemonic

#: Lookup latency of the translation table held in SSD DRAM (Section 4.5).
TRANSLATION_LOOKUP_NS = 300.0
#: Bytes per translation-table entry (Section 4.5).
TRANSLATION_ENTRY_BYTES = 4


def pud_mnemonic(op: OpType) -> str:
    """SIMDRAM/MIMDRAM-style bbop instruction name."""
    return f"bbop_{op.value}"


#: Native mnemonic generators keyed by resource family.
_KIND_MNEMONIC = {
    Resource.ISP: isp_mnemonic,
    Resource.PUD: pud_mnemonic,
    Resource.IFP: ifp_primitive,
}


@dataclass(slots=True)
class TransformedInstruction:
    """The native-ISA form of one offloaded instruction."""

    uid: int
    resource: ResourceLike
    native_op: str
    sub_operations: int
    sub_operation_bytes: int
    lookup_latency_ns: float


class InstructionTransformer:
    """Translates vector instructions into per-backend native forms."""

    def __init__(self, platform: SSDPlatform) -> None:
        self.platform = platform
        self.transformations = 0
        self.total_latency_ns = 0.0
        self._table = self._build_table()
        # (op, size_bytes, resource) -> (native op, sub-ops, sub-bytes);
        # the translation is pure in these, so each shape resolves once.
        self._memo: Dict[Tuple[OpType, int, ResourceLike],
                         Tuple[str, int, int]] = {}

    # -- Translation table -----------------------------------------------------

    def _build_table(self) -> Dict[Tuple[OpType, ResourceLike], str]:
        """One native entry per (op, registered offload candidate).

        The mnemonic generator follows the backend's resource family (all
        ISP cores speak MVE, every PuD tier speaks ``bbop_*``), so
        registry-grown backends get translation entries without edits
        here.  ISP-family backends are the universal fallback and carry an
        entry for every operation; other families are gated on support.
        """
        table: Dict[Tuple[OpType, ResourceLike], str] = {}
        candidates = self.platform.offload_candidates()
        for op in OpType:
            for resource in candidates:
                backend = self.platform.backends[resource]
                mnemonic = _KIND_MNEMONIC.get(backend.kind)
                if mnemonic is None:
                    continue
                if backend.kind is Resource.ISP or backend.supports(op):
                    table[(op, resource)] = mnemonic(op)
        return table

    def table_bytes(self) -> int:
        """Storage footprint of the translation table in SSD DRAM."""
        return len(self._table) * TRANSLATION_ENTRY_BYTES

    def native_op(self, op: OpType, resource: ResourceLike) -> str:
        key = (op, resource)
        if key not in self._table:
            raise SimulationError(
                f"{resource.value} has no native instruction for {op.value}")
        return self._table[key]

    # -- Vector-width splitting ---------------------------------------------------

    def sub_operation_bytes(self, resource: ResourceLike) -> int:
        """Largest chunk the target backend processes as one operation.

        Backends advertise their native granularity (DRAM rows for PuD
        tiers, flash pages for IFP); backends without one -- ISP cores,
        whose MVE beats are tiny -- receive SRAM-tile sized chunks of one
        flash page and loop over beats internally.
        """
        chunk = self.platform.backends[resource].native_chunk_bytes
        if chunk is None:
            return self.platform.page_size
        return chunk

    def split(self, instruction: VectorInstruction,
              resource: ResourceLike) -> Tuple[int, int]:
        """Return (sub_operations, bytes per sub-operation)."""
        chunk = self.sub_operation_bytes(resource)
        sub_operations = max(1, math.ceil(instruction.size_bytes / chunk))
        return sub_operations, min(chunk, instruction.size_bytes)

    # -- Transformation ---------------------------------------------------------------

    def transform(self, instruction: VectorInstruction,
                  resource: ResourceLike) -> TransformedInstruction:
        """Translate ``instruction`` for ``resource`` (charges lookup time)."""
        key = (instruction.op, instruction.size_bytes, resource)
        cached = self._memo.get(key)
        if cached is None:
            native = self.native_op(instruction.op, resource)
            sub_operations, sub_bytes = self.split(instruction, resource)
            cached = self._memo[key] = (native, sub_operations, sub_bytes)
        self.transformations += 1
        self.total_latency_ns += TRANSLATION_LOOKUP_NS
        return TransformedInstruction(instruction.uid, resource, cached[0],
                                      cached[1], cached[2],
                                      TRANSLATION_LOOKUP_NS)

    @property
    def average_latency_ns(self) -> float:
        if self.transformations == 0:
            return 0.0
        return self.total_latency_ns / self.transformations
