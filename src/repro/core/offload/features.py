"""Runtime feature collection (Table 1).

For every vectorized instruction the SSD offloader gathers six features:

1. **Operation type** -- embedded in the optimized IR at compile time.
2. **Operand location** -- from the L2P table (100 ns per operand for a
   DRAM-cached entry, 30 us on a mapping-cache miss).
3. **Data-dependence delay** -- time until the instruction's operands become
   available, estimated by summing the predicted computation costs of the
   pending producer instructions (1 us per queue scan).
4. **Resource queueing delay** -- the per-resource running counter of
   pending estimated execution latency (1 us per resource).
5. **Data-movement latency** -- looked up from the precomputed table of
   per-location/per-size transfer costs stored in SSD DRAM (100 ns).
6. **Expected computation latency** -- looked up from precomputed per-op
   per-resource latency estimates (150 ns).

The collector also reports the *feature-collection latency* so the paper's
runtime-overhead analysis (3.77 us average, up to 33 us) can be reproduced.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

import numpy as np

from repro.common import DataLocation, OpType, ResourceLike, US
from repro.core.compiler.ir import VectorInstruction
from repro.core.layout import ArrayLayout
from repro.core.platform import CODE_LOCATIONS, SSDPlatform

#: Fixed per-component collection latencies from Section 4.5.
L2P_DRAM_LOOKUP_NS = 100.0
L2P_FLASH_LOOKUP_NS = 30.0 * US
DEPENDENCE_SCAN_NS_PER_QUEUE = 1.0 * US
QUEUE_DELAY_TRACK_NS = 1.0 * US
MOVE_TABLE_LOOKUP_NS = 100.0
COMPUTE_TABLE_LOOKUP_NS = 150.0
#: One read of the contention-feedback table (per-path overrun averages
#: plus private-link backlog counters) per instruction, charged only when
#: ``PlatformConfig.contention_feedback`` is enabled.
CONTENTION_SAMPLE_NS = 100.0


@dataclass(slots=True)
class ResourceFeatures:
    """Per-backend feature values for one instruction."""

    resource: ResourceLike
    supported: bool
    expected_compute_latency_ns: float
    data_movement_latency_ns: float
    queueing_delay_ns: float
    dependence_delay_ns: float
    #: Expected extra movement delay from observed link contention on this
    #: candidate's operand path (EWMA movement-overrun feedback plus
    #: private-link backlog; exactly 0.0 when
    #: ``PlatformConfig.contention_feedback`` is off, so the uncorrected
    #: cost model stays bit-exact).
    contention_delay_ns: float = 0.0

    @property
    def contended_data_movement_latency_ns(self) -> float:
        """The movement estimate the cost model consumes (Eqn. 1 input).

        ``data_movement_latency_ns`` stays the raw uncontended table
        lookup; this property charges the observed contention of the
        operand path on top (what a movement issued *now* would actually
        take).  A candidate that moves nothing never touches the
        congested links, so it pays no penalty.
        """
        if self.contention_delay_ns == 0.0:
            return self.data_movement_latency_ns
        return self.data_movement_latency_ns + self.contention_delay_ns

    def total_latency(self, *, combine_max: bool = True) -> float:
        """Equation 1 of the paper (with the optional contention term)."""
        overlap = (max(self.dependence_delay_ns, self.queueing_delay_ns)
                   if combine_max
                   else self.dependence_delay_ns + self.queueing_delay_ns)
        return (self.expected_compute_latency_ns +
                self.contended_data_movement_latency_ns + overlap)


@dataclass(slots=True)
class InstructionFeatures:
    """The full feature vector of one instruction (all six features)."""

    instruction_uid: int
    op: OpType
    operand_locations: Dict[DataLocation, int]
    per_resource: Dict[ResourceLike, ResourceFeatures]
    collection_latency_ns: float
    #: The source operands' resolved ``(base_lpa, count)`` runs, carried so
    #: the dispatch path reuses the collector's resolution instead of
    #: re-resolving each operand (``None`` when built without a collector).
    source_runs: Optional[List[Tuple[int, int]]] = None

    def feature(self, resource: ResourceLike) -> ResourceFeatures:
        return self.per_resource[resource]

    @property
    def candidates(self) -> Tuple[ResourceLike, ...]:
        """Offload candidates this vector covers, in registration order.

        The cost function's argmin, its tie-break and every policy iterate
        this tuple, so decisions follow the platform's backend roster
        instead of a hardcoded resource trio.
        """
        return tuple(self.per_resource)


@dataclass(slots=True)
class WaveBatch:
    """Precollected feature components of one wave (struct-of-arrays).

    Built by :meth:`FeatureCollector.collect_batch` in one strictly
    read-only pass.  Live terms -- queueing delays, dependence delay,
    contention penalties -- are *not* here; the offloader reads them at
    each member's decision time, which is what keeps the wave engine
    bit-identical to the sequential reference.  ``eviction_epoch`` /
    ``mapping_version`` snapshot the two hazard counters; the offloader
    revalidates them before every member and marks the batch ``dead``
    (sticky fallback to the per-instruction path) on any change.
    """

    instructions: List["VectorInstruction"]
    #: Per member: source ``(base_lpa, count)`` runs and destination run.
    source_runs: List[Tuple[Tuple[int, int], ...]]
    dest_runs: List[Optional[Tuple[int, int]]]
    #: Per member: the location histogram's items in first-occurrence
    #: page order (the order the movement sums accumulate in).
    location_items: List[Tuple[Tuple[DataLocation, int], ...]]
    #: Per member: LPAs whose L2P probe hit the mapping cache, in page
    #: order -- replayed (LRU refresh only) at the member's decision time.
    hit_lpas: List[Tuple[int, ...]]
    collection_ns: List[float]
    #: Per member: the shape's static candidate rows
    #: ``(resource, home, supported, compute_latency, queue)``.
    static: List[list]
    #: Per member: collector-gated raw movement sums, one pure-Python
    #: float per candidate (what the decision path consumes directly --
    #: a numpy scalar leaking into the cost arithmetic would break the
    #: bit-equality contract).
    movement_rows: List[List[float]]
    eviction_epoch: int
    mapping_version: int
    dead: bool = False

    def movement_matrix(self) -> np.ndarray:
        """The movement sums as a ``(members x candidates)`` float64
        matrix, for vectorized consumers (built on demand: the scalar
        decision path reads ``movement_rows`` directly and typical waves
        are small, so an eager per-wave allocation would cost more than
        it saves)."""
        return np.asarray(self.movement_rows, dtype=np.float64)


@dataclass(frozen=True)
class FeatureCollectorConfig:
    """Which features are collected (used by the ablation benchmarks)."""

    include_queueing_delay: bool = True
    include_dependence_delay: bool = True
    include_data_movement: bool = True
    combine_delays_with_max: bool = True


class FeatureCollector:
    """Collects the six cost-function features for one instruction."""

    def __init__(self, platform: SSDPlatform, layout: ArrayLayout,
                 config: Optional[FeatureCollectorConfig] = None) -> None:
        self.platform = platform
        self.layout = layout
        self.config = config or FeatureCollectorConfig()
        self.collections = 0
        self.total_collection_latency_ns = 0.0
        self.max_collection_latency_ns = 0.0
        # Static per-candidate facts -- support, home location, the
        # precomputed compute-latency point and the execution-queue handle
        # -- depend only on (op, size_bytes, element_bits) and the fixed
        # backend roster, so they are resolved once per shape
        # (Section 4.5's precomputed tables) instead of per instruction.
        self._static_features: Dict[
            Tuple[OpType, int, int],
            List[Tuple[ResourceLike, DataLocation, bool, float,
                       "ExecutionQueue"]]] = {}

    # -- Operand runs / pages -----------------------------------------------------

    def operand_runs(self, instruction: VectorInstruction
                     ) -> List[Tuple[int, int]]:
        """Contiguous ``(base_lpa, count)`` runs of the source operands.

        Per-operand resolutions are memoized in the layout, so this is a
        cheap list build over cached tuples (no per-uid cache is kept: it
        would retain O(program-size) memory for negligible savings).
        """
        element_bits = instruction.element_bits
        run_of = self.layout.page_run_of
        return [run_of(ref, element_bits)
                for ref in instruction.array_sources]

    def destination_run(self, instruction: VectorInstruction
                        ) -> Optional[Tuple[int, int]]:
        """Contiguous run of the destination operand (None if no dest)."""
        if instruction.dest is None:
            return None
        return self.layout.page_run_of(instruction.dest,
                                       instruction.element_bits)

    # -- Collection ----------------------------------------------------------------

    def collect(self, instruction: VectorInstruction, now: float,
                pending_producer_latency: float) -> InstructionFeatures:
        """Gather the feature vector for ``instruction`` at time ``now``.

        ``pending_producer_latency`` is the estimated remaining time until
        the instruction's producers finish (data-dependence delay), which
        the runtime derives from its completion-time bookkeeping.
        """
        platform = self.platform
        runs = self.operand_runs(instruction)
        # (2) operand location: one pass over the operand runs resolves the
        # location histogram (via the residence index) and the L2P lookup
        # cost (one mapping-cache probe per page, preserving the cache's
        # LRU order) together, instead of two per-page sweeps.  The probe
        # is inlined (a hit only refreshes LRU recency; a probe for an
        # uncached page has no side effect), keeping the per-page loop
        # free of method calls.
        residence_get = platform.residence.get
        entries = platform.ssd.ftl.cache._entries
        move_to_end = entries.move_to_end
        flash = DataLocation.FLASH
        locations: Dict[DataLocation, int] = {}
        locations_get = locations.get
        l2p_hits = 0
        l2p_misses = 0
        # Under the vectorized engine the flat code array mirrors the
        # residence dict, so a uniform run (the common case) resolves its
        # histogram entry with one C-level byte count; mixed runs keep the
        # page-ordered walk so the histogram's first-occurrence insertion
        # order -- and with it the movement sum's accumulation order -- is
        # untouched.
        codes_bytes = platform._codes_bytes
        for base, run_pages in runs:
            end = base + run_pages
            if codes_bytes is not None:
                if len(codes_bytes) < end:
                    platform._codes_for(end)
                    codes_bytes = platform._codes_bytes
                # Single-page runs (the dominant case at the paper's
                # 16 KiB page / 16 KiB vector shape) index the code byte
                # directly: no slice allocation, no count.
                if run_pages == 1:
                    location = CODE_LOCATIONS[codes_bytes[base]]
                    locations[location] = locations_get(location, 0) + 1
                    if base in entries:
                        move_to_end(base)
                        l2p_hits += 1
                    else:
                        l2p_misses += 1
                    continue
                run_codes = codes_bytes[base:end]
                first = run_codes[0]
                if run_codes.count(first) == run_pages:
                    location = CODE_LOCATIONS[first]
                    locations[location] = (locations_get(location, 0)
                                           + run_pages)
                    for lpa in range(base, end):
                        if lpa in entries:
                            move_to_end(lpa)
                            l2p_hits += 1
                        else:
                            l2p_misses += 1
                    continue
            for lpa in range(base, end):
                location = residence_get(lpa, flash)
                locations[location] = locations_get(location, 0) + 1
                if lpa in entries:
                    move_to_end(lpa)
                    l2p_hits += 1
                else:
                    l2p_misses += 1
        collection_ns = (l2p_hits * L2P_DRAM_LOOKUP_NS +
                         l2p_misses * L2P_FLASH_LOOKUP_NS)
        # (3) dependence delay: scan the execution queues for the pending
        # producers of this instruction's operands.
        dependence_delay = (pending_producer_latency
                            if self.config.include_dependence_delay else 0.0)
        collection_ns += DEPENDENCE_SCAN_NS_PER_QUEUE
        # (4) queueing delay: read each resource's running latency counter
        # (read per candidate below; reading is side-effect free).
        include_queueing = self.config.include_queueing_delay
        collection_ns += QUEUE_DELAY_TRACK_NS
        # (5b) link-contention feedback: each candidate's movement
        # estimate below pays the EWMA-observed overrun of its operand
        # path plus its private-link backlog (behind
        # PlatformConfig.contention_feedback; see repro.core.contention).
        feedback = platform.config.contention_feedback
        if feedback:
            collection_ns += CONTENTION_SAMPLE_NS
        include_movement = self.config.include_data_movement
        move_table = platform._move_table
        op = instruction.op
        size_bytes = instruction.size_bytes
        element_bits = instruction.element_bits
        static_key = (op, size_bytes, element_bits)
        static = self._static_features.get(static_key)
        if static is None:
            static = self._resolve_static(static_key)
        # (5)/(6) movement and computation latency from the precomputed
        # tables: one fixed-cost lookup pair per candidate.  Every
        # collection-latency term is an integer-valued float, so summing
        # the per-candidate constants in one multiply is exact.
        collection_ns += ((MOVE_TABLE_LOOKUP_NS + COMPUTE_TABLE_LOOKUP_NS)
                          * len(static))
        # Most instructions find every operand page in one location; the
        # single-entry histogram turns the per-candidate movement sum into
        # one table probe.
        single_location = None
        if include_movement and len(locations) == 1:
            (single_location, single_pages), = locations.items()
        location_items = locations.items()
        per_resource: Dict[ResourceLike, ResourceFeatures] = {}
        for resource, home, supported, compute, queue in static:
            if single_location is not None:
                movement = move_table[(single_location, home)] * single_pages
            elif include_movement:
                movement = 0.0
                for location, pages in location_items:
                    movement += move_table[(location, home)] * pages
            else:
                movement = 0.0
            queue_delay = (queue._pending_latency / queue._parallelism
                           if include_queueing else 0.0)
            per_resource[resource] = ResourceFeatures(
                resource, supported, compute, movement, queue_delay,
                dependence_delay,
                platform.contention_penalty_ns(resource, op, size_bytes,
                                               element_bits, movement, now)
                if feedback else 0.0)
        self.collections += 1
        self.total_collection_latency_ns += collection_ns
        if collection_ns > self.max_collection_latency_ns:
            self.max_collection_latency_ns = collection_ns
        return InstructionFeatures(instruction.uid, op, locations,
                                   per_resource, collection_ns, runs)

    def _resolve_static(self, static_key: Tuple[OpType, int, int]) -> list:
        """Resolve (and memoize) one shape's static candidate rows."""
        op, size_bytes, element_bits = static_key
        platform = self.platform
        backends = platform.backends
        queues = platform.queues.queues
        static = []
        for resource in platform.offload_candidates():
            backend = backends[resource]
            supported = backend.supports(op)
            static.append((
                resource, backend.home_location, supported,
                backend.operation_latency(op, size_bytes, element_bits)
                if supported else float("inf"), queues[resource]))
        self._static_features[static_key] = static
        return static

    # -- Wave-batched collection (PlatformConfig.batched_offload) -------------------

    def collect_batch(self, instructions: List[VectorInstruction],
                      source_runs: List[Tuple[Tuple[int, int], ...]],
                      dest_runs: List[Optional[Tuple[int, int]]]
                      ) -> WaveBatch:
        """Precollect the static feature components of one wave.

        One strictly read-only pass gathers, per member: the
        operand-location histogram (first-occurrence page order
        preserved), the L2P hit/miss partition (membership probes only --
        the LRU refreshes are *replayed* at each member's decision time so
        the mapping cache sees exactly the sequential access order), the
        per-candidate movement-table sums (pure-Python rows; the
        ``members x candidates`` numpy matrix is built on demand by
        :meth:`WaveBatch.movement_matrix`), and the member's fixed
        collection latency (identical per-component charges to
        :meth:`collect`, so Section 4.5's overhead reproduction is
        unchanged).  Live terms -- queueing delay, dependence delay,
        contention penalties -- are deliberately absent: the offloader
        reads them at each member's own decision time.
        """
        platform = self.platform
        entries = platform.ssd.ftl.cache._entries
        residence_get = platform.residence.get
        codes_bytes = platform._codes_bytes
        flash = DataLocation.FLASH
        move_table = platform._move_table
        include_movement = self.config.include_data_movement
        feedback = platform.config.contention_feedback
        # All collection-latency terms are integer-valued floats, so the
        # fixed per-member constants sum exactly in any association.
        fixed_ns = DEPENDENCE_SCAN_NS_PER_QUEUE + QUEUE_DELAY_TRACK_NS
        if feedback:
            fixed_ns += CONTENTION_SAMPLE_NS
        static_features_get = self._static_features.get
        location_items: List[Tuple[Tuple[DataLocation, int], ...]] = []
        hit_lpas: List[Tuple[int, ...]] = []
        collection_ns: List[float] = []
        statics: List[list] = []
        movement_rows: List[List[float]] = []
        for pos, instruction in enumerate(instructions):
            locations: Dict[DataLocation, int] = {}
            locations_get = locations.get
            hits: List[int] = []
            hits_append = hits.append
            misses = 0
            for base, run_pages in source_runs[pos]:
                end = base + run_pages
                if codes_bytes is not None:
                    if len(codes_bytes) < end:
                        platform._codes_for(end)
                        codes_bytes = platform._codes_bytes
                    if run_pages == 1:
                        location = CODE_LOCATIONS[codes_bytes[base]]
                        locations[location] = locations_get(location, 0) + 1
                        if base in entries:
                            hits_append(base)
                        else:
                            misses += 1
                        continue
                    run_codes = codes_bytes[base:end]
                    first = run_codes[0]
                    if run_codes.count(first) == run_pages:
                        location = CODE_LOCATIONS[first]
                        locations[location] = (locations_get(location, 0)
                                               + run_pages)
                        for lpa in range(base, end):
                            if lpa in entries:
                                hits_append(lpa)
                            else:
                                misses += 1
                        continue
                for lpa in range(base, end):
                    location = residence_get(lpa, flash)
                    locations[location] = locations_get(location, 0) + 1
                    if lpa in entries:
                        hits_append(lpa)
                    else:
                        misses += 1
            static_key = (instruction.op, instruction.size_bytes,
                          instruction.element_bits)
            static = static_features_get(static_key)
            if static is None:
                static = self._resolve_static(static_key)
            collection_ns.append(
                len(hits) * L2P_DRAM_LOOKUP_NS
                + misses * L2P_FLASH_LOOKUP_NS + fixed_ns
                + (MOVE_TABLE_LOOKUP_NS + COMPUTE_TABLE_LOOKUP_NS)
                * len(static))
            items = tuple(locations.items())
            location_items.append(items)
            hit_lpas.append(tuple(hits))
            statics.append(static)
            if not include_movement:
                movement_rows.append([0.0] * len(static))
            elif len(items) == 1:
                (single_location, single_pages), = items
                movement_rows.append(
                    [move_table[(single_location, home)] * single_pages
                     for _, home, _, _, _ in static])
            else:
                row = []
                for _, home, _, _, _ in static:
                    total = 0.0
                    for location, pages in items:
                        total += move_table[(location, home)] * pages
                    row.append(total)
                movement_rows.append(row)
        return WaveBatch(
            instructions=instructions, source_runs=source_runs,
            dest_runs=dest_runs, location_items=location_items,
            hit_lpas=hit_lpas, collection_ns=collection_ns, static=statics,
            movement_rows=movement_rows,
            eviction_epoch=platform.eviction_epoch,
            mapping_version=platform.ssd.ftl.cache.version)

    def charge(self, collection_ns: float) -> None:
        """Account one precollected member's collection latency.

        The same counters :meth:`collect` maintains, applied in member
        order so the accumulated totals stay bit-identical to the
        sequential reference.
        """
        self.collections += 1
        self.total_collection_latency_ns += collection_ns
        if collection_ns > self.max_collection_latency_ns:
            self.max_collection_latency_ns = collection_ns

    def materialize(self, batch: WaveBatch, pos: int,
                    dependence_delay_ns: float,
                    queue_delays_ns: List[float],
                    contention_delays_ns: List[float]
                    ) -> InstructionFeatures:
        """Build one member's full feature vector from the batch.

        Bit-identical to what :meth:`collect` would return at the same
        decision point (the caller supplies the live terms it read at that
        point) -- the automatic per-instruction fallback for policies
        without a packed entry point.
        """
        instruction = batch.instructions[pos]
        row = batch.movement_rows[pos]
        per_resource: Dict[ResourceLike, ResourceFeatures] = {}
        for index, (resource, _, supported, compute,
                    _) in enumerate(batch.static[pos]):
            per_resource[resource] = ResourceFeatures(
                resource, supported, compute, row[index],
                queue_delays_ns[index], dependence_delay_ns,
                contention_delays_ns[index])
        return InstructionFeatures(
            instruction.uid, instruction.op,
            dict(batch.location_items[pos]), per_resource,
            batch.collection_ns[pos], list(batch.source_runs[pos]))

    @property
    def average_collection_latency_ns(self) -> float:
        if self.collections == 0:
            return 0.0
        return self.total_collection_latency_ns / self.collections
