"""Runtime feature collection (Table 1).

For every vectorized instruction the SSD offloader gathers six features:

1. **Operation type** -- embedded in the optimized IR at compile time.
2. **Operand location** -- from the L2P table (100 ns per operand for a
   DRAM-cached entry, 30 us on a mapping-cache miss).
3. **Data-dependence delay** -- time until the instruction's operands become
   available, estimated by summing the predicted computation costs of the
   pending producer instructions (1 us per queue scan).
4. **Resource queueing delay** -- the per-resource running counter of
   pending estimated execution latency (1 us per resource).
5. **Data-movement latency** -- looked up from the precomputed table of
   per-location/per-size transfer costs stored in SSD DRAM (100 ns).
6. **Expected computation latency** -- looked up from precomputed per-op
   per-resource latency estimates (150 ns).

The collector also reports the *feature-collection latency* so the paper's
runtime-overhead analysis (3.77 us average, up to 33 us) can be reproduced.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from repro.common import DataLocation, OpType, ResourceLike, US
from repro.core.compiler.ir import VectorInstruction
from repro.core.layout import ArrayLayout
from repro.core.platform import CODE_LOCATIONS, SSDPlatform

#: Fixed per-component collection latencies from Section 4.5.
L2P_DRAM_LOOKUP_NS = 100.0
L2P_FLASH_LOOKUP_NS = 30.0 * US
DEPENDENCE_SCAN_NS_PER_QUEUE = 1.0 * US
QUEUE_DELAY_TRACK_NS = 1.0 * US
MOVE_TABLE_LOOKUP_NS = 100.0
COMPUTE_TABLE_LOOKUP_NS = 150.0
#: One read of the contention-feedback table (per-path overrun averages
#: plus private-link backlog counters) per instruction, charged only when
#: ``PlatformConfig.contention_feedback`` is enabled.
CONTENTION_SAMPLE_NS = 100.0


@dataclass(slots=True)
class ResourceFeatures:
    """Per-backend feature values for one instruction."""

    resource: ResourceLike
    supported: bool
    expected_compute_latency_ns: float
    data_movement_latency_ns: float
    queueing_delay_ns: float
    dependence_delay_ns: float
    #: Expected extra movement delay from observed link contention on this
    #: candidate's operand path (EWMA movement-overrun feedback plus
    #: private-link backlog; exactly 0.0 when
    #: ``PlatformConfig.contention_feedback`` is off, so the uncorrected
    #: cost model stays bit-exact).
    contention_delay_ns: float = 0.0

    @property
    def contended_data_movement_latency_ns(self) -> float:
        """The movement estimate the cost model consumes (Eqn. 1 input).

        ``data_movement_latency_ns`` stays the raw uncontended table
        lookup; this property charges the observed contention of the
        operand path on top (what a movement issued *now* would actually
        take).  A candidate that moves nothing never touches the
        congested links, so it pays no penalty.
        """
        if self.contention_delay_ns == 0.0:
            return self.data_movement_latency_ns
        return self.data_movement_latency_ns + self.contention_delay_ns

    def total_latency(self, *, combine_max: bool = True) -> float:
        """Equation 1 of the paper (with the optional contention term)."""
        overlap = (max(self.dependence_delay_ns, self.queueing_delay_ns)
                   if combine_max
                   else self.dependence_delay_ns + self.queueing_delay_ns)
        return (self.expected_compute_latency_ns +
                self.contended_data_movement_latency_ns + overlap)


@dataclass(slots=True)
class InstructionFeatures:
    """The full feature vector of one instruction (all six features)."""

    instruction_uid: int
    op: OpType
    operand_locations: Dict[DataLocation, int]
    per_resource: Dict[ResourceLike, ResourceFeatures]
    collection_latency_ns: float
    #: The source operands' resolved ``(base_lpa, count)`` runs, carried so
    #: the dispatch path reuses the collector's resolution instead of
    #: re-resolving each operand (``None`` when built without a collector).
    source_runs: Optional[List[Tuple[int, int]]] = None

    def feature(self, resource: ResourceLike) -> ResourceFeatures:
        return self.per_resource[resource]

    @property
    def candidates(self) -> Tuple[ResourceLike, ...]:
        """Offload candidates this vector covers, in registration order.

        The cost function's argmin, its tie-break and every policy iterate
        this tuple, so decisions follow the platform's backend roster
        instead of a hardcoded resource trio.
        """
        return tuple(self.per_resource)


@dataclass(frozen=True)
class FeatureCollectorConfig:
    """Which features are collected (used by the ablation benchmarks)."""

    include_queueing_delay: bool = True
    include_dependence_delay: bool = True
    include_data_movement: bool = True
    combine_delays_with_max: bool = True


class FeatureCollector:
    """Collects the six cost-function features for one instruction."""

    def __init__(self, platform: SSDPlatform, layout: ArrayLayout,
                 config: Optional[FeatureCollectorConfig] = None) -> None:
        self.platform = platform
        self.layout = layout
        self.config = config or FeatureCollectorConfig()
        self.collections = 0
        self.total_collection_latency_ns = 0.0
        self.max_collection_latency_ns = 0.0
        # Static per-candidate facts -- support, home location, the
        # precomputed compute-latency point and the execution-queue handle
        # -- depend only on (op, size_bytes, element_bits) and the fixed
        # backend roster, so they are resolved once per shape
        # (Section 4.5's precomputed tables) instead of per instruction.
        self._static_features: Dict[
            Tuple[OpType, int, int],
            List[Tuple[ResourceLike, DataLocation, bool, float,
                       "ExecutionQueue"]]] = {}

    # -- Operand runs / pages -----------------------------------------------------

    def operand_runs(self, instruction: VectorInstruction
                     ) -> List[Tuple[int, int]]:
        """Contiguous ``(base_lpa, count)`` runs of the source operands.

        Per-operand resolutions are memoized in the layout, so this is a
        cheap list build over cached tuples (no per-uid cache is kept: it
        would retain O(program-size) memory for negligible savings).
        """
        element_bits = instruction.element_bits
        run_of = self.layout.page_run_of
        return [run_of(ref, element_bits)
                for ref in instruction.array_sources]

    def destination_run(self, instruction: VectorInstruction
                        ) -> Optional[Tuple[int, int]]:
        """Contiguous run of the destination operand (None if no dest)."""
        if instruction.dest is None:
            return None
        return self.layout.page_run_of(instruction.dest,
                                       instruction.element_bits)

    # -- Collection ----------------------------------------------------------------

    def collect(self, instruction: VectorInstruction, now: float,
                pending_producer_latency: float) -> InstructionFeatures:
        """Gather the feature vector for ``instruction`` at time ``now``.

        ``pending_producer_latency`` is the estimated remaining time until
        the instruction's producers finish (data-dependence delay), which
        the runtime derives from its completion-time bookkeeping.
        """
        platform = self.platform
        runs = self.operand_runs(instruction)
        # (2) operand location: one pass over the operand runs resolves the
        # location histogram (via the residence index) and the L2P lookup
        # cost (one mapping-cache probe per page, preserving the cache's
        # LRU order) together, instead of two per-page sweeps.  The probe
        # is inlined (a hit only refreshes LRU recency; a probe for an
        # uncached page has no side effect), keeping the per-page loop
        # free of method calls.
        residence_get = platform.residence.get
        entries = platform.ssd.ftl.cache._entries
        move_to_end = entries.move_to_end
        flash = DataLocation.FLASH
        locations: Dict[DataLocation, int] = {}
        locations_get = locations.get
        l2p_hits = 0
        l2p_misses = 0
        # Under the vectorized engine the flat code array mirrors the
        # residence dict, so a uniform run (the common case) resolves its
        # histogram entry with one C-level byte count; mixed runs keep the
        # page-ordered walk so the histogram's first-occurrence insertion
        # order -- and with it the movement sum's accumulation order -- is
        # untouched.
        codes_bytes = platform._codes_bytes
        for base, run_pages in runs:
            end = base + run_pages
            if codes_bytes is not None:
                if len(codes_bytes) < end:
                    platform._codes_for(end)
                    codes_bytes = platform._codes_bytes
                run_codes = codes_bytes[base:end]
                first = run_codes[0]
                if run_pages == 1 or run_codes.count(first) == run_pages:
                    location = CODE_LOCATIONS[first]
                    locations[location] = (locations_get(location, 0)
                                           + run_pages)
                    for lpa in range(base, end):
                        if lpa in entries:
                            move_to_end(lpa)
                            l2p_hits += 1
                        else:
                            l2p_misses += 1
                    continue
            for lpa in range(base, end):
                location = residence_get(lpa, flash)
                locations[location] = locations_get(location, 0) + 1
                if lpa in entries:
                    move_to_end(lpa)
                    l2p_hits += 1
                else:
                    l2p_misses += 1
        collection_ns = (l2p_hits * L2P_DRAM_LOOKUP_NS +
                         l2p_misses * L2P_FLASH_LOOKUP_NS)
        # (3) dependence delay: scan the execution queues for the pending
        # producers of this instruction's operands.
        dependence_delay = (pending_producer_latency
                            if self.config.include_dependence_delay else 0.0)
        collection_ns += DEPENDENCE_SCAN_NS_PER_QUEUE
        # (4) queueing delay: read each resource's running latency counter
        # (read per candidate below; reading is side-effect free).
        include_queueing = self.config.include_queueing_delay
        collection_ns += QUEUE_DELAY_TRACK_NS
        # (5b) link-contention feedback: each candidate's movement
        # estimate below pays the EWMA-observed overrun of its operand
        # path plus its private-link backlog (behind
        # PlatformConfig.contention_feedback; see repro.core.contention).
        feedback = platform.config.contention_feedback
        if feedback:
            collection_ns += CONTENTION_SAMPLE_NS
        include_movement = self.config.include_data_movement
        move_table = platform._move_table
        op = instruction.op
        size_bytes = instruction.size_bytes
        element_bits = instruction.element_bits
        static_key = (op, size_bytes, element_bits)
        static = self._static_features.get(static_key)
        if static is None:
            backends = platform.backends
            queues = platform.queues.queues
            static = []
            for resource in platform.offload_candidates():
                backend = backends[resource]
                supported = backend.supports(op)
                static.append((
                    resource, backend.home_location, supported,
                    backend.operation_latency(op, size_bytes, element_bits)
                    if supported else float("inf"), queues[resource]))
            self._static_features[static_key] = static
        # (5)/(6) movement and computation latency from the precomputed
        # tables: one fixed-cost lookup pair per candidate.  Every
        # collection-latency term is an integer-valued float, so summing
        # the per-candidate constants in one multiply is exact.
        collection_ns += ((MOVE_TABLE_LOOKUP_NS + COMPUTE_TABLE_LOOKUP_NS)
                          * len(static))
        # Most instructions find every operand page in one location; the
        # single-entry histogram turns the per-candidate movement sum into
        # one table probe.
        single_location = None
        if include_movement and len(locations) == 1:
            (single_location, single_pages), = locations.items()
        location_items = locations.items()
        per_resource: Dict[ResourceLike, ResourceFeatures] = {}
        for resource, home, supported, compute, queue in static:
            if single_location is not None:
                movement = move_table[(single_location, home)] * single_pages
            elif include_movement:
                movement = 0.0
                for location, pages in location_items:
                    movement += move_table[(location, home)] * pages
            else:
                movement = 0.0
            queue_delay = (queue._pending_latency / queue._parallelism
                           if include_queueing else 0.0)
            per_resource[resource] = ResourceFeatures(
                resource, supported, compute, movement, queue_delay,
                dependence_delay,
                platform.contention_penalty_ns(resource, op, size_bytes,
                                               element_bits, movement, now)
                if feedback else 0.0)
        self.collections += 1
        self.total_collection_latency_ns += collection_ns
        if collection_ns > self.max_collection_latency_ns:
            self.max_collection_latency_ns = collection_ns
        return InstructionFeatures(instruction.uid, op, locations,
                                   per_resource, collection_ns, runs)

    @property
    def average_collection_latency_ns(self) -> float:
        if self.collections == 0:
            return 0.0
        return self.total_collection_latency_ns / self.collections
