"""Conduit runtime offloading: features, cost function, policies, dispatch."""

from repro.core.offload.cost_model import (CostEstimate, CostFunction,
                                           CostModelConfig)
from repro.core.offload.features import (FeatureCollector,
                                         FeatureCollectorConfig,
                                         InstructionFeatures,
                                         ResourceFeatures)
from repro.core.offload.offloader import (OffloadDecision, OffloaderConfig,
                                          SSDOffloader)
from repro.core.offload.policies import (AresFlashPolicy, BWOffloadingPolicy,
                                         ConduitPolicy, DMOffloadingPolicy,
                                         FlashCosmosPolicy, IdealPolicy,
                                         ISPOnlyPolicy, OffloadingPolicy,
                                         POLICY_REGISTRY, PolicyContext,
                                         PuDOnlyPolicy, make_policy)
from repro.core.offload.transform import (InstructionTransformer,
                                          TransformedInstruction,
                                          TRANSLATION_LOOKUP_NS)

__all__ = [
    "CostEstimate", "CostFunction", "CostModelConfig", "FeatureCollector",
    "FeatureCollectorConfig", "InstructionFeatures", "ResourceFeatures",
    "OffloadDecision", "OffloaderConfig", "SSDOffloader", "AresFlashPolicy",
    "BWOffloadingPolicy", "ConduitPolicy", "DMOffloadingPolicy",
    "FlashCosmosPolicy", "IdealPolicy", "ISPOnlyPolicy", "OffloadingPolicy",
    "POLICY_REGISTRY", "PolicyContext", "PuDOnlyPolicy", "make_policy",
    "InstructionTransformer", "TransformedInstruction",
    "TRANSLATION_LOOKUP_NS",
]
