"""Experiment harnesses: one module per table/figure of the evaluation."""

from repro.experiments.backend_ablation import (ablation_rosters,
                                                run_backend_ablation)
from repro.experiments.fig4_case_study import run_case_study
from repro.experiments.fig5_motivation import run_motivation
from repro.experiments.fig7_speedup_energy import Fig7Results, run_fig7
from repro.experiments.fig8_tail_latency import run_tail_latency
from repro.experiments.fig9_offload_decisions import run_offload_decisions
from repro.experiments.fig10_timeline import phase_summary, run_timeline
from repro.experiments.overheads import run_overheads
from repro.experiments.report import (format_table, nested_to_rows,
                                      run_report, to_json)
from repro.experiments.runner import (DEFAULT_SWEEP_CACHE_DIR, FIG5_POLICIES,
                                      FIG7_POLICIES, SWEEP_CACHE_ENV,
                                      SWEEP_WORKERS_ENV, ExperimentConfig,
                                      ExperimentRunner, RunSpec, SweepCache,
                                      SweepStats, default_sweep_cache_dir,
                                      energy_table, execute_run_spec,
                                      experiment_platform_config,
                                      resolve_sweep_workers, run_spec_key,
                                      speedup_table)
from repro.experiments.table3_workloads import run_table3

__all__ = [
    "ablation_rosters", "run_backend_ablation",
    "run_case_study", "run_motivation", "Fig7Results", "run_fig7",
    "run_tail_latency", "run_offload_decisions", "phase_summary",
    "run_timeline", "run_overheads", "format_table", "nested_to_rows",
    "run_report", "to_json", "DEFAULT_SWEEP_CACHE_DIR", "FIG5_POLICIES",
    "FIG7_POLICIES", "SWEEP_CACHE_ENV", "SWEEP_WORKERS_ENV",
    "ExperimentConfig", "ExperimentRunner", "RunSpec", "SweepCache",
    "SweepStats", "default_sweep_cache_dir", "energy_table",
    "execute_run_spec", "experiment_platform_config",
    "resolve_sweep_workers", "run_spec_key", "speedup_table", "run_table3",
]
