"""Experiment harnesses: a declarative registry over one sweep engine.

Every figure/table of the paper's evaluation is a registered
:class:`~repro.experiments.registry.ExperimentDef` executed by the shared
:func:`~repro.experiments.registry.run_experiment` engine over a
(workloads x policies x platform variants) cross-product sweep.
``python -m repro list`` / ``python -m repro run <name>`` is the CLI; the
per-figure ``run_*`` functions remain the library API.
"""

from repro.experiments.platforms import (MULTICORE_ISP_CORES,
                                         PLATFORM_VARIANTS,
                                         available_platform_variants,
                                         experiment_platform_config,
                                         platform_variant,
                                         register_platform_variant,
                                         with_adaptive_ftl,
                                         with_contention_feedback,
                                         with_drive_age)
from repro.experiments.registry import (EXPERIMENT_REGISTRY,
                                        ExperimentContext, ExperimentDef,
                                        ExperimentResult,
                                        available_experiments,
                                        experiment_def, per_platform,
                                        register_experiment, run_experiment)
from repro.experiments.ablations import (ABLATION_VECTOR_WIDTHS,
                                         COST_ABLATIONS, cost_ablation_rows,
                                         coherence_ablation_rows,
                                         vector_width_ablation_rows)
from repro.experiments.backend_ablation import (ABLATION_PLATFORMS,
                                                ablation_rosters,
                                                run_backend_ablation)
from repro.experiments.compare import (COMPARE_SCHEMA_VERSION, compare_grids,
                                       run_compare)
from repro.experiments.contention import (CONTENTION_PLATFORMS,
                                          CONTENTION_WORKLOADS,
                                          run_contention)
from repro.experiments.lifetime import (LIFETIME_PLATFORMS,
                                        LIFETIME_POLICIES,
                                        LIFETIME_WORKLOADS, run_lifetime)
from repro.experiments.fig4_case_study import run_case_study
from repro.experiments.fig5_motivation import run_motivation
from repro.experiments.fig7_speedup_energy import (Fig7Results,
                                                   fig7_results_from_grid,
                                                   run_fig7)
from repro.experiments.fig8_tail_latency import run_tail_latency
from repro.experiments.fig9_offload_decisions import run_offload_decisions
from repro.experiments.fig10_timeline import phase_summary, run_timeline
from repro.experiments.overheads import run_overheads
from repro.experiments.report import (_register_report, format_table,
                                      nested_to_rows, run_report, to_json)
from repro.experiments.runner import (DEFAULT_SWEEP_CACHE_DIR,
                                      DEFAULT_WORKLOAD_SCALE, FIG5_POLICIES,
                                      FIG7_POLICIES, SWEEP_CACHE_ENV,
                                      SWEEP_WORKERS_ENV, ExperimentConfig,
                                      ExperimentRunner, RunSpec, SweepCache,
                                      SweepStats, default_sweep_cache_dir,
                                      energy_table, execute_run_spec,
                                      resolve_sweep_workers, run_spec_key,
                                      speedup_table)
from repro.experiments.table3_workloads import run_table3
from repro.experiments.traces import (TRACE_PLATFORMS, TRACE_POLICIES,
                                      TRACE_WORKLOADS, run_traces)

# The fleet-serving experiment lives in its own package; a plain module
# import (no attribute access) registers its definition while staying
# safe under the repro.serve -> repro.experiments import cycle.
import repro.serve.experiment  # noqa: E402,F401

# The composite depends on the member definitions above being registered.
_register_report()

__all__ = [
    "MULTICORE_ISP_CORES", "PLATFORM_VARIANTS",
    "available_platform_variants", "experiment_platform_config",
    "platform_variant", "register_platform_variant",
    "with_contention_feedback",
    "EXPERIMENT_REGISTRY", "ExperimentContext", "ExperimentDef",
    "ExperimentResult", "available_experiments", "experiment_def",
    "per_platform", "register_experiment", "run_experiment",
    "ABLATION_PLATFORMS", "ablation_rosters", "run_backend_ablation",
    "ABLATION_VECTOR_WIDTHS", "COST_ABLATIONS", "cost_ablation_rows",
    "coherence_ablation_rows", "vector_width_ablation_rows",
    "COMPARE_SCHEMA_VERSION", "compare_grids", "run_compare",
    "CONTENTION_PLATFORMS", "CONTENTION_WORKLOADS", "run_contention",
    "LIFETIME_PLATFORMS", "LIFETIME_POLICIES", "LIFETIME_WORKLOADS",
    "run_lifetime", "with_adaptive_ftl", "with_drive_age",
    "run_case_study", "run_motivation", "Fig7Results",
    "fig7_results_from_grid", "run_fig7",
    "run_tail_latency", "run_offload_decisions", "phase_summary",
    "run_timeline", "run_overheads", "format_table", "nested_to_rows",
    "run_report", "to_json", "DEFAULT_SWEEP_CACHE_DIR",
    "DEFAULT_WORKLOAD_SCALE", "FIG5_POLICIES",
    "FIG7_POLICIES", "SWEEP_CACHE_ENV", "SWEEP_WORKERS_ENV",
    "ExperimentConfig", "ExperimentRunner", "RunSpec", "SweepCache",
    "SweepStats", "default_sweep_cache_dir", "energy_table",
    "execute_run_spec",
    "resolve_sweep_workers", "run_spec_key", "speedup_table", "run_table3",
    "TRACE_PLATFORMS", "TRACE_POLICIES", "TRACE_WORKLOADS", "run_traces",
]
