"""Fig. 9 -- fraction of instructions offloaded to each SSD resource.

For BW-Offloading, DM-Offloading, Conduit and Ideal, reports the fraction of
instructions executed on ISP, PuD-SSD and IFP for each workload.  The
paper's headline observations: Conduit's distribution closely tracks the
Ideal policy; memory-bound workloads (AES, XOR Filter) use ISP very
sparingly; compute-intensive workloads spread across multiple resources; and
both Conduit and Ideal avoid IFP for multiplication-heavy phases (LLaMA2).

Registered as the ``fig9`` experiment (``python -m repro run fig9``).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, List, Optional

from repro.common import Resource
from repro.experiments.registry import (ExperimentContext, ExperimentDef,
                                        per_platform, register_experiment,
                                        run_experiment)
from repro.experiments.report import format_table
from repro.experiments.runner import (ExperimentConfig,
                                      default_sweep_cache_dir)

DECISION_POLICIES = ("BW-Offloading", "DM-Offloading", "Conduit", "Ideal")


def _rows_from_grid(grid, workload_names) -> List[Dict[str, object]]:
    rows: List[Dict[str, object]] = []
    for workload_name in workload_names:
        for policy in DECISION_POLICIES:
            fractions = grid[(workload_name,
                              policy)].ssd_resource_fractions()
            rows.append({
                "workload": workload_name,
                "policy": policy,
                "isp": fractions.get(Resource.ISP, 0.0),
                "pud_ssd": fractions.get(Resource.PUD, 0.0),
                "ifp": fractions.get(Resource.IFP, 0.0),
            })
    return rows


def _sections(ctx: ExperimentContext, platform_name, grid):
    names = [workload.name for workload in ctx.workloads]
    return OrderedDict(fig9=_rows_from_grid(grid, names))


FIG9_DEF = register_experiment(ExperimentDef(
    name="fig9",
    title="Fig. 9 -- fraction of instructions per computation resource",
    description="Per-policy resource mix (ISP / PuD-SSD / IFP) across the "
                "six workloads.",
    policies=DECISION_POLICIES,
    build=per_platform(_sections),
), overwrite=True)


def run_offload_decisions(config: Optional[ExperimentConfig] = None, *,
                          parallel: bool = True,
                          workers: Optional[int] = None,
                          cache_dir: Optional[str] = None
                          ) -> List[Dict[str, object]]:
    """One row per (workload, policy) with per-resource fractions."""
    config = config or ExperimentConfig()
    result = run_experiment(FIG9_DEF, config, parallel=parallel,
                            workers=workers, cache_dir=cache_dir)
    names = [workload.name for workload in config.workloads()]
    return _rows_from_grid(result.platform_grid("default"), names)


def main(config: Optional[ExperimentConfig] = None) -> str:
    rows = run_offload_decisions(config, cache_dir=default_sweep_cache_dir())
    text = format_table(rows)
    print("Fig. 9 -- fraction of instructions per computation resource")
    print(text)
    return text


if __name__ == "__main__":  # deprecation shim -> python -m repro run fig9
    from repro.__main__ import run_module_shim
    run_module_shim("fig9")
