"""Fig. 9 -- fraction of instructions offloaded to each SSD resource.

For BW-Offloading, DM-Offloading, Conduit and Ideal, reports the fraction of
instructions executed on ISP, PuD-SSD and IFP for each workload.  The
paper's headline observations: Conduit's distribution closely tracks the
Ideal policy; memory-bound workloads (AES, XOR Filter) use ISP very
sparingly; compute-intensive workloads spread across multiple resources; and
both Conduit and Ideal avoid IFP for multiplication-heavy phases (LLaMA2).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.common import Resource
from repro.experiments.report import format_table
from repro.experiments.runner import (ExperimentConfig, ExperimentRunner,
                                      default_sweep_cache_dir)

DECISION_POLICIES = ("BW-Offloading", "DM-Offloading", "Conduit", "Ideal")


def run_offload_decisions(config: Optional[ExperimentConfig] = None, *,
                          parallel: bool = True,
                          workers: Optional[int] = None,
                          cache_dir: Optional[str] = None
                          ) -> List[Dict[str, object]]:
    """One row per (workload, policy) with per-resource fractions."""
    config = config or ExperimentConfig()
    runner = ExperimentRunner(config)
    workloads = config.workloads()
    results = runner.sweep(DECISION_POLICIES, workloads, parallel=parallel,
                           workers=workers, cache_dir=cache_dir)
    rows: List[Dict[str, object]] = []
    for workload in workloads:
        for policy in DECISION_POLICIES:
            fractions = results[(workload.name,
                                 policy)].ssd_resource_fractions()
            rows.append({
                "workload": workload.name,
                "policy": policy,
                "isp": fractions.get(Resource.ISP, 0.0),
                "pud_ssd": fractions.get(Resource.PUD, 0.0),
                "ifp": fractions.get(Resource.IFP, 0.0),
            })
    return rows


def main(config: Optional[ExperimentConfig] = None) -> str:
    rows = run_offload_decisions(config, cache_dir=default_sweep_cache_dir())
    text = format_table(rows)
    print("Fig. 9 -- fraction of instructions per computation resource")
    print(text)
    return text


if __name__ == "__main__":
    main()
