"""Fig. 7 -- main performance (a) and energy (b) results.

Runs the full policy set of the paper's evaluation -- CPU, GPU, ISP,
PuD-SSD, Flash-Cosmos, Ares-Flash, BW-Offloading, DM-Offloading, Conduit and
Ideal -- over the six workloads and reports:

* Fig. 7(a): speedup over CPU per workload plus the geometric mean
  (the paper reports Conduit at 4.2x CPU, 1.8x DM-Offloading, 62% of Ideal);
* Fig. 7(b): energy normalized to CPU, split into data movement and
  computation (Conduit reduces energy by 46.8% versus DM-Offloading).

Registered as the ``fig7`` experiment; ``python -m repro run fig7``
(optionally with ``--platform`` variants) is the CLI entry point, and
:func:`run_fig7` remains the library API.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.metrics import ExecutionResult
from repro.experiments.registry import (ExperimentContext, ExperimentDef,
                                        per_platform, register_experiment,
                                        run_experiment)
from repro.experiments.report import format_table, nested_to_rows
from repro.experiments.runner import (FIG7_POLICIES, ExperimentConfig,
                                      default_sweep_cache_dir, energy_table,
                                      speedup_table)


@dataclass
class Fig7Results:
    """Both panels of Fig. 7 plus the raw execution results."""

    speedups: Dict[str, Dict[str, float]]
    energy: Dict[str, Dict[str, Dict[str, float]]]
    raw: Dict[Tuple[str, str], ExecutionResult]

    def conduit_vs(self, policy: str) -> float:
        """Geometric-mean speedup of Conduit over another policy."""
        gmean = self.speedups["GMEAN"]
        if gmean.get(policy, 0.0) <= 0:
            return float("inf")
        return gmean["Conduit"] / gmean[policy]

    def conduit_energy_reduction_vs(self, policy: str) -> float:
        """Average energy reduction of Conduit versus another policy."""
        reductions = []
        for row in self.energy.values():
            if policy not in row or "Conduit" not in row:
                continue
            other = row[policy]["total"]
            if other <= 0:
                continue
            reductions.append(1.0 - row["Conduit"]["total"] / other)
        if not reductions:
            return 0.0
        return sum(reductions) / len(reductions)


def fig7_results_from_grid(grid: Dict[Tuple[str, str], ExecutionResult]
                           ) -> Fig7Results:
    """Assemble both Fig. 7 panels from one (workload, policy) grid."""
    policies = [policy for policy in FIG7_POLICIES if policy != "CPU"]
    return Fig7Results(
        speedups=speedup_table(grid, policies),
        energy=energy_table(grid, FIG7_POLICIES),
        raw=grid,
    )


def _energy_rows(energy: Dict[str, Dict[str, Dict[str, float]]]
                 ) -> List[Dict[str, object]]:
    return [{"workload": workload, "policy": policy, **parts}
            for workload, row in energy.items()
            for policy, parts in row.items()]


def _sections(ctx: ExperimentContext, platform_name: str, grid):
    results = fig7_results_from_grid(grid)
    return OrderedDict(
        fig7a=nested_to_rows(results.speedups),
        fig7b=_energy_rows(results.energy),
    )


def _headline(ctx: ExperimentContext) -> List[str]:
    lines = []
    for name in ctx.platform_names:
        results = fig7_results_from_grid(ctx.platform_grid(name))
        prefix = f"[{name}] " if len(ctx.platform_names) > 1 else ""
        lines.append(
            f"{prefix}Conduit vs DM-Offloading speedup: "
            f"{results.conduit_vs('DM-Offloading'):.2f}x (paper: 1.8x); "
            "energy reduction: "
            f"{100 * results.conduit_energy_reduction_vs('DM-Offloading'):.1f}%"
            " (paper: 46.8%)")
    return lines


FIG7_DEF = register_experiment(ExperimentDef(
    name="fig7",
    title="Fig. 7 -- speedup over CPU (a) and normalized energy (b)",
    description="Full policy set over the six workloads: the paper's "
                "headline performance and energy comparison.",
    policies=FIG7_POLICIES,
    build=per_platform(_sections),
    headline=_headline,
    paper_refs=("Conduit: 4.2x CPU, 1.8x DM-Offloading, 62% of Ideal",
                "energy: -46.8% vs DM-Offloading"),
), overwrite=True)


def run_fig7(config: Optional[ExperimentConfig] = None, *,
             parallel: bool = True, workers: Optional[int] = None,
             cache_dir: Optional[str] = None,
             platform: str = "default") -> Fig7Results:
    """Run the full Fig. 7 sweep (sharded over a process pool by default).

    ``platform`` selects a registered platform variant; the default is the
    paper's roster.
    """
    result = run_experiment(FIG7_DEF, config, platforms=(platform,),
                            parallel=parallel, workers=workers,
                            cache_dir=cache_dir)
    return fig7_results_from_grid(result.platform_grid(platform))


def main(config: Optional[ExperimentConfig] = None) -> str:
    results = run_fig7(config, cache_dir=default_sweep_cache_dir())
    speedup_text = format_table(nested_to_rows(results.speedups))
    print("Fig. 7(a) -- speedup over CPU (higher is better)")
    print(speedup_text)
    energy_text = format_table(_energy_rows(results.energy))
    print("\nFig. 7(b) -- energy normalized to CPU (lower is better)")
    print(energy_text)
    print("\nConduit vs DM-Offloading speedup: "
          f"{results.conduit_vs('DM-Offloading'):.2f}x "
          f"(paper: 1.8x); energy reduction: "
          f"{100 * results.conduit_energy_reduction_vs('DM-Offloading'):.1f}%"
          " (paper: 46.8%)")
    return speedup_text + "\n" + energy_text


if __name__ == "__main__":  # deprecation shim -> python -m repro run fig7
    from repro.__main__ import run_module_shim
    run_module_shim("fig7")
