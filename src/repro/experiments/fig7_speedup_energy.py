"""Fig. 7 -- main performance (a) and energy (b) results.

Runs the full policy set of the paper's evaluation -- CPU, GPU, ISP,
PuD-SSD, Flash-Cosmos, Ares-Flash, BW-Offloading, DM-Offloading, Conduit and
Ideal -- over the six workloads and reports:

* Fig. 7(a): speedup over CPU per workload plus the geometric mean
  (the paper reports Conduit at 4.2x CPU, 1.8x DM-Offloading, 62% of Ideal);
* Fig. 7(b): energy normalized to CPU, split into data movement and
  computation (Conduit reduces energy by 46.8% versus DM-Offloading).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.core.metrics import ExecutionResult
from repro.experiments.report import format_table, nested_to_rows
from repro.experiments.runner import (FIG7_POLICIES, ExperimentConfig,
                                      ExperimentRunner,
                                      default_sweep_cache_dir, energy_table,
                                      speedup_table)


@dataclass
class Fig7Results:
    """Both panels of Fig. 7 plus the raw execution results."""

    speedups: Dict[str, Dict[str, float]]
    energy: Dict[str, Dict[str, Dict[str, float]]]
    raw: Dict[Tuple[str, str], ExecutionResult]

    def conduit_vs(self, policy: str) -> float:
        """Geometric-mean speedup of Conduit over another policy."""
        gmean = self.speedups["GMEAN"]
        if gmean.get(policy, 0.0) <= 0:
            return float("inf")
        return gmean["Conduit"] / gmean[policy]

    def conduit_energy_reduction_vs(self, policy: str) -> float:
        """Average energy reduction of Conduit versus another policy."""
        reductions = []
        for workload, row in self.energy.items():
            if policy not in row or "Conduit" not in row:
                continue
            other = row[policy]["total"]
            if other <= 0:
                continue
            reductions.append(1.0 - row["Conduit"]["total"] / other)
        if not reductions:
            return 0.0
        return sum(reductions) / len(reductions)


def run_fig7(config: Optional[ExperimentConfig] = None, *,
             parallel: bool = True, workers: Optional[int] = None,
             cache_dir: Optional[str] = None) -> Fig7Results:
    """Run the full Fig. 7 sweep (sharded over a process pool by default)."""
    config = config or ExperimentConfig()
    runner = ExperimentRunner(config)
    results = runner.sweep(FIG7_POLICIES, parallel=parallel, workers=workers,
                           cache_dir=cache_dir)
    policies = [policy for policy in FIG7_POLICIES if policy != "CPU"]
    return Fig7Results(
        speedups=speedup_table(results, policies),
        energy=energy_table(results, FIG7_POLICIES),
        raw=results,
    )


def main(config: Optional[ExperimentConfig] = None) -> str:
    results = run_fig7(config, cache_dir=default_sweep_cache_dir())
    speedup_text = format_table(nested_to_rows(results.speedups))
    print("Fig. 7(a) -- speedup over CPU (higher is better)")
    print(speedup_text)
    energy_rows = []
    for workload, row in results.energy.items():
        for policy, parts in row.items():
            energy_rows.append({"workload": workload, "policy": policy,
                                **parts})
    energy_text = format_table(energy_rows)
    print("\nFig. 7(b) -- energy normalized to CPU (lower is better)")
    print(energy_text)
    print("\nConduit vs DM-Offloading speedup: "
          f"{results.conduit_vs('DM-Offloading'):.2f}x "
          f"(paper: 1.8x); energy reduction: "
          f"{100 * results.conduit_energy_reduction_vs('DM-Offloading'):.1f}%"
          " (paper: 46.8%)")
    return speedup_text + "\n" + energy_text


if __name__ == "__main__":
    main()
