"""Fig. 10 -- instruction-to-resource mapping over time (LLaMA2 Inference).

Reproduces the workload/computation-resource interaction analysis of
Section 6.5: for BW-Offloading, DM-Offloading and Conduit, the harness
records which resource executed each of the first N vectorized instructions
of LLaMA2 Inference along with its operation type, and summarizes the
resource chosen per execution phase.  The paper's observations: BW switches
resources frequently, DM pins addition and multiplication phases to flash,
and Conduit keeps locality-friendly additions in flash while running costly
multiplications in DRAM and control-intensive work on the controller cores.

Registered as the ``fig10`` experiment (``python -m repro run fig10``).
"""

from __future__ import annotations

from collections import Counter, OrderedDict
from typing import Dict, List, Optional

from repro.experiments.registry import (ExperimentDef, per_platform,
                                        register_experiment, run_experiment)
from repro.experiments.report import format_table
from repro.experiments.runner import (ExperimentConfig,
                                      default_sweep_cache_dir)
from repro.workloads import LlamaInferenceWorkload

TIMELINE_POLICIES = ("BW-Offloading", "DM-Offloading", "Conduit")
#: Number of instructions shown by the paper's figure.
TIMELINE_INSTRUCTIONS = 12_000


def _timelines_from_grid(grid, instructions: int
                         ) -> Dict[str, List[Dict[str, object]]]:
    return {policy: grid[(LlamaInferenceWorkload.name, policy)].timeline(
                limit=instructions)
            for policy in TIMELINE_POLICIES}


def _sections(ctx, platform_name, grid):
    timelines = _timelines_from_grid(grid, TIMELINE_INSTRUCTIONS)
    return OrderedDict(fig10=phase_summary(timelines))


FIG10_DEF = register_experiment(ExperimentDef(
    name="fig10",
    title="Fig. 10 -- instruction-to-resource mapping phases (LLaMA2)",
    description="Dominant resource / operation per execution phase for "
                "BW-Offloading, DM-Offloading and Conduit.",
    policies=TIMELINE_POLICIES,
    workloads=(LlamaInferenceWorkload.name,),
    build=per_platform(_sections),
), overwrite=True)


def run_timeline(config: Optional[ExperimentConfig] = None,
                 instructions: int = TIMELINE_INSTRUCTIONS, *,
                 parallel: bool = True, workers: Optional[int] = None,
                 cache_dir: Optional[str] = None
                 ) -> Dict[str, List[Dict[str, object]]]:
    """Return per-policy instruction timelines (index, op, resource)."""
    result = run_experiment(FIG10_DEF, config, parallel=parallel,
                            workers=workers, cache_dir=cache_dir)
    return _timelines_from_grid(result.platform_grid("default"),
                                instructions)


def phase_summary(timelines: Dict[str, List[Dict[str, object]]],
                  phases: int = 6) -> List[Dict[str, object]]:
    """Summarize the dominant resource per execution phase (figure proxy)."""
    rows: List[Dict[str, object]] = []
    for policy, timeline in timelines.items():
        if not timeline:
            continue
        phase_length = max(1, len(timeline) // phases)
        for phase in range(phases):
            window = timeline[phase * phase_length:(phase + 1) * phase_length]
            if not window:
                continue
            resources = Counter(entry["resource"] for entry in window)
            operations = Counter(entry["op"] for entry in window)
            rows.append({
                "policy": policy,
                "phase": phase,
                "instructions": len(window),
                "dominant_resource": resources.most_common(1)[0][0],
                "dominant_op": operations.most_common(1)[0][0],
                "resource_switches": sum(
                    1 for a, b in zip(window, window[1:])
                    if a["resource"] != b["resource"]),
            })
    return rows


def main(config: Optional[ExperimentConfig] = None) -> str:
    timelines = run_timeline(config, cache_dir=default_sweep_cache_dir())
    rows = phase_summary(timelines)
    text = format_table(rows)
    print("Fig. 10 -- instruction-to-resource mapping phases "
          "(LLaMA2 Inference)")
    print(text)
    return text


if __name__ == "__main__":  # deprecation shim -> python -m repro run fig10
    from repro.__main__ import run_module_shim
    run_module_shim("fig10")
