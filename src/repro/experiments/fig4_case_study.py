"""Fig. 4 -- case study on offloading computations across SSD resources.

Reproduces the motivational case study of Section 3.1: for an I/O-intensive,
a more compute-intensive and a mixed workload, execute under four models --
outside-storage processing (OSP, host CPU), in-storage processing (ISP
only), in-flash processing (IFP only) and a *naive* IFP+ISP combination that
alternates between the two without considering cost -- and report execution
time normalized to OSP together with its breakdown (compute, host-SSD data
movement, SSD-internal data movement, flash read).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.common import Resource
from repro.core.compiler.ir import VectorInstruction
from repro.core.metrics import ExecutionResult
from repro.core.offload.features import InstructionFeatures
from repro.core.offload.policies import (AresFlashPolicy, ISPOnlyPolicy,
                                         OffloadingPolicy, PolicyContext)
from repro.experiments.runner import ExperimentConfig, ExperimentRunner
from repro.experiments.report import format_table
from repro.workloads import (Heat3DWorkload, LLMTrainingWorkload, Workload,
                             XORFilterWorkload)

#: Representative workload per Fig. 4 category.
CATEGORY_WORKLOADS = {
    "I/O-Intensive": XORFilterWorkload,
    "More Compute-Intensive": Heat3DWorkload,
    "Mixed": LLMTrainingWorkload,
}

EXECUTION_MODELS = ("OSP", "ISP", "IFP", "IFP+ISP")


class NaiveIFPISPPolicy(OffloadingPolicy):
    """Naively alternate between IFP and ISP without any cost awareness.

    This is the "naively combining IFP and ISP" configuration of the case
    study: supported operations alternate between the two resources, which
    adds inter-resource data movement and can hurt I/O-intensive workloads.
    """

    name = "IFP+ISP"

    def __init__(self) -> None:
        self._toggle = False

    def choose(self, instruction: VectorInstruction,
               features: InstructionFeatures,
               context: PolicyContext) -> Resource:
        ifp_ok = features.feature(Resource.IFP).supported
        if not ifp_ok:
            return Resource.ISP
        self._toggle = not self._toggle
        return Resource.IFP if self._toggle else Resource.ISP


def _breakdown_row(category: str, model: str, result: ExecutionResult,
                   osp_time: float) -> Dict[str, object]:
    shares = result.breakdown.normalized()
    normalized = result.total_time_ns / osp_time if osp_time else 0.0
    return {
        "category": category,
        "model": model,
        "normalized_time": normalized,
        "compute": normalized * shares["compute"],
        "host_data_movement": normalized * shares["host_data_movement"],
        "internal_data_movement":
            normalized * shares["internal_data_movement"],
        "flash_read": normalized * shares["flash_read"],
    }


def run_case_study(config: Optional[ExperimentConfig] = None
                   ) -> List[Dict[str, object]]:
    """Run the Fig. 4 case study; returns one row per (category, model)."""
    config = config or ExperimentConfig()
    runner = ExperimentRunner(config)
    rows: List[Dict[str, object]] = []
    for category, workload_cls in CATEGORY_WORKLOADS.items():
        workload: Workload = workload_cls(scale=config.workload_scale)
        osp = runner.run(workload, "CPU")
        results = {
            "OSP": osp,
            "ISP": runner.run_with_policy(workload, ISPOnlyPolicy()),
            "IFP": runner.run_with_policy(workload, AresFlashPolicy()),
            "IFP+ISP": runner.run_with_policy(workload, NaiveIFPISPPolicy()),
        }
        for model in EXECUTION_MODELS:
            rows.append(_breakdown_row(category, model, results[model],
                                       osp.total_time_ns))
    return rows


def main(config: Optional[ExperimentConfig] = None) -> str:
    rows = run_case_study(config)
    table = format_table(rows)
    print("Fig. 4 -- execution time normalized to OSP (lower is better)")
    print(table)
    return table


if __name__ == "__main__":
    main()
