"""Fig. 4 -- case study on offloading computations across SSD resources.

Reproduces the motivational case study of Section 3.1: for an I/O-intensive,
a more compute-intensive and a mixed workload, execute under four models --
outside-storage processing (OSP, host CPU), in-storage processing (ISP
only), in-flash processing (IFP only) and a *naive* IFP+ISP combination that
alternates between the two without considering cost -- and report execution
time normalized to OSP together with its breakdown (compute, host-SSD data
movement, SSD-internal data movement, flash read).

All four execution models resolve through the policy registry (OSP is the
host-CPU baseline, IFP is Ares-Flash, the naive combination is the
registered ``IFP+ISP`` policy), so the whole case study is a single
parallel-shardable sweep.  Registered as the ``fig4`` experiment
(``python -m repro run fig4``).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, List, Optional

from repro.core.metrics import ExecutionResult
# Re-exported for backwards compatibility: the naive policy used to be
# defined in this module before it joined the policy registry.
from repro.core.offload.policies import NaiveIFPISPPolicy  # noqa: F401
from repro.experiments.registry import (ExperimentDef, per_platform,
                                        register_experiment, run_experiment)
from repro.experiments.report import format_table
from repro.experiments.runner import ExperimentConfig
from repro.workloads import (Heat3DWorkload, LLMTrainingWorkload,
                             XORFilterWorkload)

#: Representative workload per Fig. 4 category.
CATEGORY_WORKLOADS = {
    "I/O-Intensive": XORFilterWorkload,
    "More Compute-Intensive": Heat3DWorkload,
    "Mixed": LLMTrainingWorkload,
}

EXECUTION_MODELS = ("OSP", "ISP", "IFP", "IFP+ISP")

#: Execution model -> registered policy name.
MODEL_POLICIES = {
    "OSP": "CPU",
    "ISP": "ISP",
    "IFP": "Ares-Flash",
    "IFP+ISP": "IFP+ISP",
}


def _breakdown_row(category: str, model: str, result: ExecutionResult,
                   osp_time: float) -> Dict[str, object]:
    shares = result.breakdown.normalized()
    normalized = result.total_time_ns / osp_time if osp_time else 0.0
    return {
        "category": category,
        "model": model,
        "normalized_time": normalized,
        "compute": normalized * shares["compute"],
        "host_data_movement": normalized * shares["host_data_movement"],
        "internal_data_movement":
            normalized * shares["internal_data_movement"],
        "flash_read": normalized * shares["flash_read"],
    }


def _rows_from_grid(grid) -> List[Dict[str, object]]:
    rows: List[Dict[str, object]] = []
    for category, workload_cls in CATEGORY_WORKLOADS.items():
        osp = grid[(workload_cls.name, MODEL_POLICIES["OSP"])]
        for model in EXECUTION_MODELS:
            result = grid[(workload_cls.name, MODEL_POLICIES[model])]
            rows.append(_breakdown_row(category, model, result,
                                       osp.total_time_ns))
    return rows


def _sections(ctx, platform_name, grid):
    return OrderedDict(fig4=_rows_from_grid(grid))


FIG4_DEF = register_experiment(ExperimentDef(
    name="fig4",
    title="Fig. 4 -- execution time normalized to OSP, with breakdown",
    description="Case study: OSP / ISP / IFP / naive IFP+ISP over an "
                "I/O-intensive, a compute-intensive and a mixed workload.",
    policies=tuple(MODEL_POLICIES.values()),
    workloads=tuple(cls.name for cls in CATEGORY_WORKLOADS.values()),
    build=per_platform(_sections),
), overwrite=True)


def run_case_study(config: Optional[ExperimentConfig] = None, *,
                   parallel: bool = True, workers: Optional[int] = None,
                   cache_dir: Optional[str] = None
                   ) -> List[Dict[str, object]]:
    """Run the Fig. 4 case study; returns one row per (category, model)."""
    result = run_experiment(FIG4_DEF, config, parallel=parallel,
                            workers=workers, cache_dir=cache_dir)
    return _rows_from_grid(result.platform_grid("default"))


def main(config: Optional[ExperimentConfig] = None) -> str:
    from repro.experiments.runner import default_sweep_cache_dir
    rows = run_case_study(config, cache_dir=default_sweep_cache_dir())
    table = format_table(rows)
    print("Fig. 4 -- execution time normalized to OSP (lower is better)")
    print(table)
    return table


if __name__ == "__main__":  # deprecation shim -> python -m repro run fig4
    from repro.__main__ import run_module_shim
    run_module_shim("fig4")
