"""Fig. 4 -- case study on offloading computations across SSD resources.

Reproduces the motivational case study of Section 3.1: for an I/O-intensive,
a more compute-intensive and a mixed workload, execute under four models --
outside-storage processing (OSP, host CPU), in-storage processing (ISP
only), in-flash processing (IFP only) and a *naive* IFP+ISP combination that
alternates between the two without considering cost -- and report execution
time normalized to OSP together with its breakdown (compute, host-SSD data
movement, SSD-internal data movement, flash read).

All four execution models resolve through the policy registry (OSP is the
host-CPU baseline, IFP is Ares-Flash, the naive combination is the
registered ``IFP+ISP`` policy), so the whole case study is a single
parallel-shardable sweep.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.core.metrics import ExecutionResult
# Re-exported for backwards compatibility: the naive policy used to be
# defined in this module before it joined the policy registry.
from repro.core.offload.policies import NaiveIFPISPPolicy  # noqa: F401
from repro.experiments.runner import ExperimentConfig, ExperimentRunner
from repro.experiments.report import format_table
from repro.workloads import (Heat3DWorkload, LLMTrainingWorkload, Workload,
                             XORFilterWorkload)

#: Representative workload per Fig. 4 category.
CATEGORY_WORKLOADS = {
    "I/O-Intensive": XORFilterWorkload,
    "More Compute-Intensive": Heat3DWorkload,
    "Mixed": LLMTrainingWorkload,
}

EXECUTION_MODELS = ("OSP", "ISP", "IFP", "IFP+ISP")

#: Execution model -> registered policy name.
MODEL_POLICIES = {
    "OSP": "CPU",
    "ISP": "ISP",
    "IFP": "Ares-Flash",
    "IFP+ISP": "IFP+ISP",
}


def _breakdown_row(category: str, model: str, result: ExecutionResult,
                   osp_time: float) -> Dict[str, object]:
    shares = result.breakdown.normalized()
    normalized = result.total_time_ns / osp_time if osp_time else 0.0
    return {
        "category": category,
        "model": model,
        "normalized_time": normalized,
        "compute": normalized * shares["compute"],
        "host_data_movement": normalized * shares["host_data_movement"],
        "internal_data_movement":
            normalized * shares["internal_data_movement"],
        "flash_read": normalized * shares["flash_read"],
    }


def run_case_study(config: Optional[ExperimentConfig] = None, *,
                   parallel: bool = True, workers: Optional[int] = None,
                   cache_dir: Optional[str] = None
                   ) -> List[Dict[str, object]]:
    """Run the Fig. 4 case study; returns one row per (category, model)."""
    config = config or ExperimentConfig()
    runner = ExperimentRunner(config)
    workloads: List[Workload] = [
        workload_cls(scale=config.workload_scale)
        for workload_cls in CATEGORY_WORKLOADS.values()
    ]
    results = runner.sweep(tuple(MODEL_POLICIES.values()), workloads,
                           parallel=parallel, workers=workers,
                           cache_dir=cache_dir)
    rows: List[Dict[str, object]] = []
    for category, workload in zip(CATEGORY_WORKLOADS, workloads):
        osp = results[(workload.name, MODEL_POLICIES["OSP"])]
        for model in EXECUTION_MODELS:
            result = results[(workload.name, MODEL_POLICIES[model])]
            rows.append(_breakdown_row(category, model, result,
                                       osp.total_time_ns))
    return rows


def main(config: Optional[ExperimentConfig] = None) -> str:
    from repro.experiments.runner import default_sweep_cache_dir
    rows = run_case_study(config, cache_dir=default_sweep_cache_dir())
    table = format_table(rows)
    print("Fig. 4 -- execution time normalized to OSP (lower is better)")
    print(table)
    return table


if __name__ == "__main__":
    main()
