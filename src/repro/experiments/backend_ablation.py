"""Backend-roster ablation: grow the platform via config, watch decisions.

The registry refactor's proof: the same cost function, offloader and
feature collector run unchanged while the platform's compute shape is
grown purely through :class:`~repro.core.platform.PlatformConfig` --

* ``default`` -- the paper's trio (one ISP backend, PuD-SSD, IFP);
* ``isp-cores`` -- the ISP pool split into per-core backends
  ``isp[0..n)``, each with its own execution queue;
* ``cxl-pud`` -- an opt-in CXL-attached PuD tier with its own
  latency/energy/bandwidth point.

For every (workload, roster) pair the sweep reports total time and the
per-family decision mix, plus the fraction landing on the grown backends,
so the shift in the cost model's argmin is directly visible (the CXL tier
absorbs compute-heavy work once the in-SSD PuD queue backs up; per-core
ISP queues expose contention the pooled backend hid).
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence

from repro.common import Resource
from repro.core.platform import PlatformConfig, SSDPlatform, backend_roster
from repro.core.runtime import ConduitRuntime
from repro.core.offload.policies import make_policy
from repro.dram.cxl import CXLPuDConfig
from repro.experiments.report import format_table
from repro.experiments.runner import ExperimentConfig, \
    experiment_platform_config
from repro.workloads import Workload

#: Workloads whose operation mix exercises all three resource families.
ABLATION_WORKLOADS = ("LLM Training", "LlaMA2 Inference", "XOR Filter")

#: Per-core ISP backends registered by the ``isp-cores`` roster.
ABLATION_ISP_CORES = 4


def _grown_platform(base: PlatformConfig, *, isp_cores: int = 1,
                    cxl_pud: Optional[CXLPuDConfig] = None
                    ) -> PlatformConfig:
    """The base experiment platform with a different backend roster."""
    return dataclasses.replace(base, isp_cores=isp_cores, cxl_pud=cxl_pud)


def ablation_rosters(base: Optional[PlatformConfig] = None
                     ) -> Dict[str, PlatformConfig]:
    """The platform shapes the ablation compares, keyed by roster name."""
    base = base or experiment_platform_config()
    return {
        "default": _grown_platform(base),
        f"isp-cores[{ABLATION_ISP_CORES}]": _grown_platform(
            base, isp_cores=ABLATION_ISP_CORES),
        "cxl-pud": _grown_platform(base, cxl_pud=CXLPuDConfig()),
    }


def run_backend_ablation(config: Optional[ExperimentConfig] = None, *,
                         policy: str = "Conduit",
                         workload_names: Sequence[str] = ABLATION_WORKLOADS
                         ) -> List[Dict[str, object]]:
    """One row per (workload, roster) with timing and decision mix."""
    config = config or ExperimentConfig()
    workloads: List[Workload] = [w for w in config.workloads()
                                 if w.name in set(workload_names)]
    rows: List[Dict[str, object]] = []
    for workload in workloads:
        program, _ = workload.vector_program()
        baseline_ns: Optional[float] = None
        for roster_name, platform_config in ablation_rosters(
                config.platform).items():
            platform = SSDPlatform(platform_config)
            result = ConduitRuntime(platform, config.runtime).execute(
                program, make_policy(policy), workload.name)
            if baseline_ns is None:
                baseline_ns = result.total_time_ns
            kinds = result.kind_fractions()
            fractions = result.ssd_resource_fractions()
            grown = sum(value for resource, value in fractions.items()
                        if resource not in (Resource.ISP, Resource.PUD,
                                            Resource.IFP))
            rows.append({
                "workload": workload.name,
                "roster": roster_name,
                "backends": len(backend_roster(platform_config)),
                "time_ms": result.total_time_ns / 1e6,
                "speedup_vs_default": baseline_ns / result.total_time_ns,
                "isp": kinds.get(Resource.ISP, 0.0),
                "pud_ssd": kinds.get(Resource.PUD, 0.0),
                "ifp": kinds.get(Resource.IFP, 0.0),
                "grown_backends": grown,
            })
    return rows


def main(config: Optional[ExperimentConfig] = None) -> str:
    rows = run_backend_ablation(config)
    text = format_table(rows, float_digits=3)
    print("Backend-roster ablation -- config-grown platforms, one cost "
          "function")
    print(text)
    return text


if __name__ == "__main__":
    main()
