"""Backend-roster ablation: grow the platform via config, watch decisions.

The registry refactor's proof: the same cost function, offloader and
feature collector run unchanged while the platform's compute shape is
grown purely through :class:`~repro.core.platform.PlatformConfig` --

* ``default`` -- the paper's trio (one ISP backend, PuD-SSD, IFP);
* ``multicore-isp`` -- the ISP pool split into per-core backends
  ``isp[0..n)``, each with its own execution queue;
* ``cxl-pud`` -- an opt-in CXL-attached PuD tier with its own
  latency/energy/bandwidth point.

Since the experiment-API redesign this is no longer a hand-rolled loop:
the rosters are the registered *platform variants* of
:mod:`repro.experiments.platforms`, and the ablation is a platform-axis
sweep through the shared :func:`~repro.experiments.registry.run_experiment`
engine -- sharded, cached and bit-identical to every other harness.  For
every (workload, roster) unit the table reports total time and the
per-family decision mix, plus the fraction landing on the grown backends,
so the shift in the cost model's argmin is directly visible (the CXL tier
absorbs compute-heavy work once the in-SSD PuD queue backs up; per-core
ISP queues expose contention the pooled backend hid).

Registered as the ``backend_ablation`` experiment
(``python -m repro run backend_ablation``).
"""

from __future__ import annotations

import dataclasses
from collections import OrderedDict
from typing import Dict, List, Optional, Sequence

from repro.common import Resource
from repro.core.platform import PlatformConfig, backend_roster
from repro.experiments.platforms import (MULTICORE_ISP_CORES,
                                         experiment_platform_config,
                                         platform_variant)
from repro.experiments.registry import (ExperimentContext, ExperimentDef,
                                        register_experiment, run_experiment)
from repro.experiments.report import format_table
from repro.experiments.runner import ExperimentConfig

#: Workloads whose operation mix exercises all three resource families.
ABLATION_WORKLOADS = ("LLM Training", "LlaMA2 Inference", "XOR Filter")

#: Platform variants the ablation compares (the first is the baseline).
ABLATION_PLATFORMS = ("default", "multicore-isp", "cxl-pud")

#: Per-core ISP backends registered by the multicore variant (back-compat
#: alias; the variant itself lives in :mod:`repro.experiments.platforms`).
ABLATION_ISP_CORES = MULTICORE_ISP_CORES


def ablation_rosters(base: Optional[PlatformConfig] = None
                     ) -> Dict[str, PlatformConfig]:
    """The platform shapes the ablation compares, keyed by variant name."""
    base = base or experiment_platform_config()
    return {name: platform_variant(name, base=base)
            for name in ABLATION_PLATFORMS}


def _sections(ctx: ExperimentContext):
    policy = ctx.definition.policies[0]
    # Normalize against the ``default`` roster when it is part of the run;
    # under a --platform override that excludes it, fall back to the first
    # swept variant (and label the column accordingly).
    baseline_name = ("default" if "default" in ctx.platform_names
                     else ctx.platform_names[0])
    speedup_column = f"speedup_vs_{baseline_name}"
    rows: List[Dict[str, object]] = []
    for workload in ctx.workloads:
        baseline_ns = ctx.grid[(workload.name, policy,
                                baseline_name)].total_time_ns
        for roster_name in ctx.platform_names:
            result = ctx.grid[(workload.name, policy, roster_name)]
            kinds = result.kind_fractions()
            fractions = result.ssd_resource_fractions()
            grown = sum(value for resource, value in fractions.items()
                        if resource not in (Resource.ISP, Resource.PUD,
                                            Resource.IFP))
            rows.append({
                "workload": workload.name,
                "roster": roster_name,
                "backends": len(backend_roster(
                    ctx.platforms[roster_name])),
                "time_ms": result.total_time_ns / 1e6,
                speedup_column: baseline_ns / result.total_time_ns,
                "isp": kinds.get(Resource.ISP, 0.0),
                "pud_ssd": kinds.get(Resource.PUD, 0.0),
                "ifp": kinds.get(Resource.IFP, 0.0),
                "grown_backends": grown,
            })
    return OrderedDict(ablation=rows)


ABLATION_DEF = register_experiment(ExperimentDef(
    name="backend_ablation",
    title="Backend-roster ablation -- config-grown platforms, one cost "
          "function",
    description="Conduit on the default / multicore-isp / cxl-pud platform "
                "variants: timing and per-family decision mix per roster.",
    policies=("Conduit",),
    workloads=ABLATION_WORKLOADS,
    default_platforms=ABLATION_PLATFORMS,
    build=_sections,
), overwrite=True)


def run_backend_ablation(config: Optional[ExperimentConfig] = None, *,
                         policy: str = "Conduit",
                         workload_names: Sequence[str] = ABLATION_WORKLOADS,
                         parallel: bool = False,
                         workers: Optional[int] = None,
                         cache_dir: Optional[str] = None
                         ) -> List[Dict[str, object]]:
    """One row per (workload, roster) with timing and decision mix."""
    definition = dataclasses.replace(ABLATION_DEF, policies=(policy,),
                                     workloads=tuple(workload_names))
    result = run_experiment(definition, config, parallel=parallel,
                            workers=workers, cache_dir=cache_dir)
    return result.sections["ablation"]


def main(config: Optional[ExperimentConfig] = None) -> str:
    rows = run_backend_ablation(config)
    text = format_table(rows, float_digits=3)
    print("Backend-roster ablation -- config-grown platforms, one cost "
          "function")
    print(text)
    return text


if __name__ == "__main__":  # deprecation shim -> python -m repro run …
    from repro.__main__ import run_module_shim
    run_module_shim("backend_ablation")
