"""Trace-driven workload experiment: skewed/trace streams vs the kernels.

The paper evaluates six hand-built kernels with uniform, regular access
patterns.  Real storage traffic is neither: it is skewed (a hot set
absorbs most accesses) and irregular (streaming runs interleaved with
small random requests).  This experiment puts the open workload
registry's trace-driven entries on the same axes as two representative
hand-built kernels:

* ``jacobi-1d`` and ``XOR Filter`` -- uniform streaming kernels, the
  shapes the paper's figures sweep;
* ``zipf-hot`` -- the built-in seeded zipf hot/cold stream
  (:class:`~repro.workloads.traces.ZipfWorkload`, YCSB-style skew);
* ``mqsim-mini`` -- the checked-in MQSim-format fixture trace
  (:class:`~repro.workloads.traces.TraceWorkload`).

The sweep runs CPU / ISP / Conduit on a fresh (``default``) and a
near-end-of-life (``default-aged``) drive, so the experiment answers two
questions at once: does the offload benefit extend from uniform kernels
to skewed/trace-driven streams, and does that extension survive drive
age?  The fresh-vs-aged diff reuses
:func:`~repro.experiments.compare.compare_grids`, the same machinery as
``python -m repro compare``.

Registered as the ``traces`` experiment (``python -m repro run traces``);
``python -m repro run traces --trace FILE`` adds a user trace to the
sweep.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, List, Optional, Tuple

from repro.core.metrics import ExecutionResult, geometric_mean
from repro.experiments.compare import compare_grids
from repro.experiments.registry import (ExperimentContext, ExperimentDef,
                                        ExperimentResult,
                                        register_experiment, run_experiment)
from repro.experiments.report import format_table, nested_to_rows
from repro.experiments.runner import ExperimentConfig, speedup_table
from repro.workloads import MQSIM_MINI_NAME, ZIPF_HOT_NAME

#: Uniform hand-built kernels next to the trace-driven/generative pair.
TRACE_UNIFORM_WORKLOADS = ("jacobi-1d", "XOR Filter")
TRACE_SKEWED_WORKLOADS = (ZIPF_HOT_NAME, MQSIM_MINI_NAME)
TRACE_WORKLOADS = TRACE_UNIFORM_WORKLOADS + TRACE_SKEWED_WORKLOADS

#: Host baseline, the single-resource in-SSD policy, and Conduit.
TRACE_POLICIES = ("CPU", "ISP", "Conduit")

#: Fresh drive first (the comparison base), then near-end-of-life.
TRACE_PLATFORMS = ("default", "default-aged")
FRESH_PLATFORM = "default"
AGED_PLATFORM = "default-aged"


def _conduit_benefit(grid: Dict[Tuple[str, str], ExecutionResult],
                     workloads: Tuple[str, ...]) -> float:
    """Geomean Conduit-over-CPU speedup across ``workloads``."""
    ratios = [grid[(workload, "CPU")].total_time_ns /
              grid[(workload, "Conduit")].total_time_ns
              for workload in workloads
              if (workload, "CPU") in grid
              and (workload, "Conduit") in grid]
    return geometric_mean(ratios) if ratios else 0.0


def _skew_rows(grid: Dict[Tuple[str, str], ExecutionResult]
               ) -> List[Dict[str, object]]:
    """Uniform-vs-skewed comparison rows for one platform's grid."""
    rows: List[Dict[str, object]] = []
    for group, names in (("uniform", TRACE_UNIFORM_WORKLOADS),
                         ("skewed", TRACE_SKEWED_WORKLOADS)):
        for policy in TRACE_POLICIES:
            if policy == "CPU":
                continue
            ratios = [grid[(workload, "CPU")].total_time_ns /
                      grid[(workload, policy)].total_time_ns
                      for workload in names
                      if (workload, "CPU") in grid
                      and (workload, policy) in grid]
            rows.append({
                "group": group,
                "policy": policy,
                "workloads": len(ratios),
                "gmean_speedup": geometric_mean(ratios) if ratios else 0.0,
            })
    return rows


def _sections(ctx: ExperimentContext) -> "OrderedDict[str, List[Dict]]":
    sections: "OrderedDict[str, List[Dict[str, object]]]" = OrderedDict()
    policies = [p for p in ctx.definition.policies if p != "CPU"]
    for name in ctx.platform_names:
        grid = ctx.platform_grid(name)
        sections[f"{name}/speedup"] = nested_to_rows(
            speedup_table(grid, policies))
        sections[f"{name}/uniform-vs-skewed"] = _skew_rows(grid)
    if (FRESH_PLATFORM in ctx.platform_names
            and AGED_PLATFORM in ctx.platform_names):
        sections["fresh-vs-aged"] = compare_grids(
            ctx.platform_grid(FRESH_PLATFORM),
            ctx.platform_grid(AGED_PLATFORM))
    return sections


def _headline(ctx: ExperimentContext) -> List[str]:
    lines: List[str] = []
    for name in ctx.platform_names:
        grid = ctx.platform_grid(name)
        uniform = _conduit_benefit(grid, TRACE_UNIFORM_WORKLOADS)
        # Restrict to the skewed names actually swept: --trace adds user
        # workloads to the axis without touching these groups.
        skewed = _conduit_benefit(grid, TRACE_SKEWED_WORKLOADS)
        if uniform and skewed:
            lines.append(
                f"[{name}] Conduit vs CPU: {uniform:.2f}x on uniform "
                f"kernels, {skewed:.2f}x on skewed/trace streams "
                f"({100 * skewed / uniform:.0f}% of the uniform benefit)")
    if (FRESH_PLATFORM in ctx.platform_names
            and AGED_PLATFORM in ctx.platform_names):
        fresh = _conduit_benefit(ctx.platform_grid(FRESH_PLATFORM),
                                 TRACE_SKEWED_WORKLOADS)
        aged = _conduit_benefit(ctx.platform_grid(AGED_PLATFORM),
                                TRACE_SKEWED_WORKLOADS)
        if fresh and aged:
            survives = "survives" if aged > 1.0 else "does NOT survive"
            lines.append(
                f"Skewed/trace streams vs drive age: Conduit {fresh:.2f}x "
                f"CPU fresh -> {aged:.2f}x at near-EOL "
                f"({100 * aged / fresh:.0f}% retained; benefit {survives})")
    return lines


TRACES_DEF = register_experiment(ExperimentDef(
    name="traces",
    title="Trace-driven workloads -- skewed zipf and MQSim-trace streams "
          "vs the uniform kernels, fresh and aged",
    description="Speedup tables for two hand-built kernels next to the "
                "built-in zipf hot/cold stream and the MQSim fixture "
                "trace, on a fresh and a near-EOL drive, with a "
                "uniform-vs-skewed benefit comparison and a "
                "fresh-vs-aged diff.",
    policies=TRACE_POLICIES,
    workloads=TRACE_WORKLOADS,
    default_platforms=TRACE_PLATFORMS,
    build=_sections,
    headline=_headline,
    paper_refs=("Section 6: the evaluated kernels stream uniformly; "
                "trace-driven streams add the skew and interleaving "
                "real block traffic exhibits.",),
))


def run_traces(config: Optional[ExperimentConfig] = None, *,
               parallel: bool = True, workers: Optional[int] = None,
               cache_dir: Optional[str] = None) -> ExperimentResult:
    """Run the trace-driven workload experiment; returns the result."""
    return run_experiment(TRACES_DEF, config, parallel=parallel,
                          workers=workers, cache_dir=cache_dir)


def main(config: Optional[ExperimentConfig] = None) -> str:
    result = run_traces(config)
    texts = []
    for name, rows in result.sections.items():
        text = format_table(rows, float_digits=3)
        print(f"== {name} ==")
        print(text)
        texts.append(text)
    for line in result.headline:
        print(line)
    return "\n".join(texts)


if __name__ == "__main__":  # deprecation shim -> python -m repro run …
    from repro.__main__ import run_module_shim
    run_module_shim("traces")
