"""Fig. 8 -- tail latency of Ideal, Conduit, BW-Offloading, DM-Offloading.

Reports the 99th and 99.99th percentile per-instruction latencies for the
two representative workloads the paper uses (LLaMA2 Inference and jacobi-1d).
The paper's headline: Conduit reduces the 99th (99.99th) percentile latency
by up to 5.6x (22.3x) versus DM-Offloading on LLaMA2 Inference because its
contention-aware decisions avoid piling work onto one resource.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.experiments.report import format_table
from repro.experiments.runner import (ExperimentConfig, ExperimentRunner,
                                      default_sweep_cache_dir)
from repro.workloads import Jacobi1DWorkload, LlamaInferenceWorkload

TAIL_POLICIES = ("Ideal", "Conduit", "BW-Offloading", "DM-Offloading")
TAIL_WORKLOADS = (LlamaInferenceWorkload, Jacobi1DWorkload)


def run_tail_latency(config: Optional[ExperimentConfig] = None, *,
                     parallel: bool = True, workers: Optional[int] = None,
                     cache_dir: Optional[str] = None
                     ) -> List[Dict[str, object]]:
    """Return one row per (workload, policy) with p99 / p99.99 latencies."""
    config = config or ExperimentConfig()
    runner = ExperimentRunner(config)
    workloads = [workload_cls(scale=config.workload_scale)
                 for workload_cls in TAIL_WORKLOADS]
    results = runner.sweep(TAIL_POLICIES, workloads, parallel=parallel,
                           workers=workers, cache_dir=cache_dir)
    rows: List[Dict[str, object]] = []
    for workload in workloads:
        for policy in TAIL_POLICIES:
            result = results[(workload.name, policy)]
            rows.append({
                "workload": workload.name,
                "policy": policy,
                "p99_us": result.p99_latency_ns / 1000.0,
                "p9999_us": result.p9999_latency_ns / 1000.0,
                "mean_us": result.mean_latency_ns() / 1000.0,
            })
    return rows


def main(config: Optional[ExperimentConfig] = None) -> str:
    rows = run_tail_latency(config, cache_dir=default_sweep_cache_dir())
    text = format_table(rows)
    print("Fig. 8 -- per-instruction tail latencies (lower is better)")
    print(text)
    return text


if __name__ == "__main__":
    main()
