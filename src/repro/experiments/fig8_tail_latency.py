"""Fig. 8 -- tail latency of Ideal, Conduit, BW-Offloading, DM-Offloading.

Reports the 99th and 99.99th percentile per-instruction latencies for the
two representative workloads the paper uses (LLaMA2 Inference and jacobi-1d).
The paper's headline: Conduit reduces the 99th (99.99th) percentile latency
by up to 5.6x (22.3x) versus DM-Offloading on LLaMA2 Inference because its
contention-aware decisions avoid piling work onto one resource.

Registered as the ``fig8`` experiment (``python -m repro run fig8``).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, List, Optional

from repro.experiments.registry import (ExperimentDef, per_platform,
                                        register_experiment, run_experiment)
from repro.experiments.report import format_table
from repro.experiments.runner import (ExperimentConfig,
                                      default_sweep_cache_dir)
from repro.workloads import Jacobi1DWorkload, LlamaInferenceWorkload

TAIL_POLICIES = ("Ideal", "Conduit", "BW-Offloading", "DM-Offloading")
TAIL_WORKLOADS = (LlamaInferenceWorkload, Jacobi1DWorkload)


def _rows_from_grid(grid) -> List[Dict[str, object]]:
    rows: List[Dict[str, object]] = []
    for workload_cls in TAIL_WORKLOADS:
        for policy in TAIL_POLICIES:
            result = grid[(workload_cls.name, policy)]
            rows.append({
                "workload": workload_cls.name,
                "policy": policy,
                "p99_us": result.p99_latency_ns / 1000.0,
                "p9999_us": result.p9999_latency_ns / 1000.0,
                "mean_us": result.mean_latency_ns() / 1000.0,
            })
    return rows


def _sections(ctx, platform_name, grid):
    return OrderedDict(fig8=_rows_from_grid(grid))


FIG8_DEF = register_experiment(ExperimentDef(
    name="fig8",
    title="Fig. 8 -- per-instruction tail latencies (p99 / p99.99)",
    description="Tail latency of Ideal, Conduit, BW- and DM-Offloading on "
                "LLaMA2 Inference and jacobi-1d.",
    policies=TAIL_POLICIES,
    workloads=tuple(cls.name for cls in TAIL_WORKLOADS),
    build=per_platform(_sections),
    paper_refs=("Conduit up to 5.6x (p99) / 22.3x (p99.99) below "
                "DM-Offloading on LLaMA2 Inference",),
), overwrite=True)


def run_tail_latency(config: Optional[ExperimentConfig] = None, *,
                     parallel: bool = True, workers: Optional[int] = None,
                     cache_dir: Optional[str] = None
                     ) -> List[Dict[str, object]]:
    """Return one row per (workload, policy) with p99 / p99.99 latencies."""
    result = run_experiment(FIG8_DEF, config, parallel=parallel,
                            workers=workers, cache_dir=cache_dir)
    return _rows_from_grid(result.platform_grid("default"))


def main(config: Optional[ExperimentConfig] = None) -> str:
    rows = run_tail_latency(config, cache_dir=default_sweep_cache_dir())
    text = format_table(rows)
    print("Fig. 8 -- per-instruction tail latencies (lower is better)")
    print(text)
    return text


if __name__ == "__main__":  # deprecation shim -> python -m repro run fig8
    from repro.__main__ import run_module_shim
    run_module_shim("fig8")
