"""Experiment runner shared by all figure/table harnesses.

Each experiment in the paper's evaluation section (Figs. 4-10, Table 3) is a
sweep of (workload, execution policy) pairs over the same simulated
platform.  This module centralizes:

* the experiment platform configuration (a scaled-down version of Table 2's
  system so sweeps finish in seconds -- the *ratios* between capacities are
  preserved: workload footprints exceed the SSD-DRAM compute window and the
  host page cache, as in the paper, so operands stream from flash);
* construction and caching of the vectorized programs;
* running one (workload, policy) pair on a fresh platform; and
* assembling result grids keyed by workload and policy.

Sweeps are embarrassingly parallel -- every (workload, policy) pair runs on
a fresh platform -- so :meth:`ExperimentRunner.sweep` can shard the pairs
over a :class:`~concurrent.futures.ProcessPoolExecutor`:

* each pair becomes a pickle-able :class:`RunSpec` (workload name, scale,
  policy name, platform and runtime configuration) executed by the
  module-level :func:`execute_run_spec` worker;
* shards are submitted and reassembled in deterministic (workload, policy)
  order, so the result grid is bit-identical to a serial sweep and
  independent of worker completion order;
* an optional on-disk cache under :data:`DEFAULT_SWEEP_CACHE_DIR` keyed by
  a stable hash of the :class:`RunSpec` (plus :data:`SWEEP_CACHE_VERSION`)
  lets repeated figure-harness runs skip already-computed pairs.

Worker count resolves as: explicit ``workers`` argument, then the
``REPRO_SWEEP_WORKERS`` environment variable (CI sets ``1`` to force serial
execution), then ``os.cpu_count()``.
"""

from __future__ import annotations

import enum
import gc
import hashlib
import json
import os
import pickle
import tempfile
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field, fields, is_dataclass
from typing import (Dict, Iterable, List, Mapping, Optional, Sequence,
                    Tuple)

from repro.common import Resource
from repro.core.compiler.ir import VectorProgram
from repro.core.metrics import ExecutionResult, geometric_mean, speedup
from repro.core.offload.policies import OffloadingPolicy, make_policy
from repro.core.platform import (PlatformConfig, SSDPlatform,
                                 backend_roster)
from repro.core.runtime import ConduitRuntime, HostRuntime, RuntimeConfig
from repro.experiments.platforms import (experiment_platform_config,
                                         platform_variant)
from repro.workloads import Workload, default_workloads, workload_by_name

#: Names of the host (OSP) baselines; they run through :class:`HostRuntime`.
HOST_POLICIES = ("CPU", "GPU")

#: All execution policies of Fig. 7 in the paper's plotting order.
FIG7_POLICIES = ("CPU", "GPU", "ISP", "PuD-SSD", "Flash-Cosmos",
                 "Ares-Flash", "BW-Offloading", "DM-Offloading", "Conduit",
                 "Ideal")

#: The prior-work policies of the Fig. 5 motivation study (no Conduit).
FIG5_POLICIES = ("CPU", "GPU", "ISP", "PuD-SSD", "Flash-Cosmos",
                 "Ares-Flash", "BW-Offloading", "DM-Offloading", "Ideal")

#: Environment variable overriding the sweep worker count (``1`` forces
#: serial in-process execution; CI sets this for reproducible timings).
SWEEP_WORKERS_ENV = "REPRO_SWEEP_WORKERS"

#: Environment variable overriding the on-disk sweep-cache directory.
#: An empty value or ``off`` disables the cache.
SWEEP_CACHE_ENV = "REPRO_SWEEP_CACHE"

#: Default location of the on-disk sweep result cache.
DEFAULT_SWEEP_CACHE_DIR = ".sweep_cache"

#: Bump whenever simulation semantics change in a way that is not captured
#: by the configuration objects, so stale cache entries are never reused.
#: Version 2: the compute-backend registry refactor (dispatch, tie-breaks
#: and candidate discovery now flow through the platform's backend roster).
#: Version 3: the contention-aware cost model -- ``PlatformConfig`` grew
#: ``contention_feedback`` / ``contention_ewma_alpha`` / ``contention_gain``
#: (the canonical config encoding folds them into every key, orphaning
#: pre-field entries), the CXL tier gained a modelled command link, and
#: IFP execution-channel traffic moved behind the backend protocol.
#: Version 4: the device-lifetime subsystem -- ``PlatformConfig`` grew a
#: ``lifetime`` axis (background GC/wear engine, drive-age profiles) and
#: ``FTLConfig`` grew the adaptive-FTL knobs (``gc_victim_policy``,
#: ``hot_cold_separation``); all fold into every key via the canonical
#: config encoding, and ``ExecutionResult`` grew a ``maintenance`` field,
#: so pre-lifetime pickles are orphaned.
#: Version 5: the open workload registry -- ``RunSpec`` grew
#: ``workload_params`` (the workload's ``cache_identity()``: trace content
#: hash, zipf generator parameters), so content-defined workloads key the
#: cache by *what* they run, not just their registry name, and pre-field
#: pickles are orphaned rather than silently matched without it.
SWEEP_CACHE_VERSION = 5

#: The workload scale experiments (and the CLI's ``--scale``) default to.
#: The CLI help strings derive from this constant so they can never drift
#: from the behaviour.
DEFAULT_WORKLOAD_SCALE = 0.25


@dataclass
class ExperimentConfig:
    """Configuration shared by the experiment harnesses."""

    workload_scale: float = DEFAULT_WORKLOAD_SCALE
    platform: PlatformConfig = field(
        default_factory=experiment_platform_config)
    runtime: RuntimeConfig = field(default_factory=RuntimeConfig)

    def workloads(self) -> List[Workload]:
        return default_workloads(scale=self.workload_scale)


# ------------------------------------------------------------------------
# Run specifications (the parallel unit of work)
# ------------------------------------------------------------------------


@dataclass(frozen=True)
class RunSpec:
    """Everything needed to run one (workload, policy) pair anywhere.

    The spec is a pure-data, pickle-able value: the workload is referenced
    by its registry name plus scale (workload generators are deterministic
    functions of the scale, see :mod:`repro.workloads`), and the platform /
    runtime configurations are frozen dataclass trees.  Two equal specs
    therefore always produce bit-identical :class:`ExecutionResult`\\ s,
    which is what makes both process-pool execution and on-disk caching
    safe.
    """

    workload: str
    scale: float
    policy: str
    platform: PlatformConfig = field(
        default_factory=experiment_platform_config)
    runtime: RuntimeConfig = field(default_factory=RuntimeConfig)
    #: Display label of the platform-axis variant this spec belongs to
    #: (see :mod:`repro.experiments.platforms`).  A *label only*: the
    #: semantics live entirely in ``platform``, so the cache key excludes
    #: it and equal configurations share entries across variant names.
    platform_name: str = "default"
    #: The workload's ``cache_identity()``: extra identity beyond the
    #: (name, scale) pair for content-defined workloads -- a trace's
    #: content hash, a zipf stream's generator parameters.  Folded into
    #: :func:`run_spec_key` so re-registering a name with different
    #: content can never be served a stale cache entry, and verified
    #: against the rebuilt workload in :func:`execute_run_spec`.
    workload_params: Tuple[Tuple[str, str], ...] = ()


def _canonical(value: object) -> object:
    """Convert a config value into a JSON-stable representation."""
    if is_dataclass(value) and not isinstance(value, type):
        encoded: Dict[str, object] = {
            "__dataclass__": type(value).__qualname__}
        for spec_field in fields(value):
            encoded[spec_field.name] = _canonical(getattr(value,
                                                          spec_field.name))
        return encoded
    if isinstance(value, enum.Enum):
        return value.value
    if isinstance(value, Mapping):
        return {str(key): _canonical(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_canonical(item) for item in value]
    if isinstance(value, float):
        # repr() keeps full precision; JSON would round-trip anyway, but be
        # explicit so the key is stable across json library versions.
        return repr(value)
    return value


def run_spec_key(spec: RunSpec) -> str:
    """Stable content hash of a :class:`RunSpec` (plus cache version).

    The key covers every code-relevant knob: workload identity and scale,
    policy name, and the full platform/runtime configuration trees.  The
    enabled-backend roster is folded in explicitly (on top of the platform
    configuration that implies it), so entries recorded on a
    differently-shaped platform can never be served, even if a future
    roster knob escapes the config tree.  It is what shards the sweep
    deterministically and keys the on-disk cache.
    """
    encoded = _canonical(spec)
    # The variant label is presentation, not semantics: two variants
    # resolving to the same PlatformConfig must share cache entries (and
    # pre-label caches stay valid).  The roster fold below already keys
    # every shape-changing knob.
    encoded.pop("platform_name", None)
    # The movement-engine choice is an implementation detail, not
    # semantics: the vectorized engine is bit-exact against the object
    # engine by construction (and tested to be), so results computed by
    # either must share cache entries.
    platform_encoded = encoded.get("platform")
    if isinstance(platform_encoded, dict):
        platform_encoded.pop("vectorized_movement", None)
        # Same contract for the wave-batched decision engine: bit-exact
        # against the per-instruction reference by construction (pinned
        # by tests/test_batched_offload.py), so both flag states share
        # cache entries.
        platform_encoded.pop("batched_offload", None)
    payload = {"version": SWEEP_CACHE_VERSION, "spec": encoded,
               "backends": list(backend_roster(spec.platform))}
    text = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def _compile_program(workload: Workload) -> VectorProgram:
    program, _ = workload.vector_program()
    return program


#: Per-process compiled-program cache used by the pool workers.  Keyed by
#: (workload name, scale, cache identity); a long-lived worker compiles
#: each workload once even when it executes many policies for it.
_WORKER_PROGRAMS: Dict[Tuple[str, float, Tuple[Tuple[str, str], ...]],
                       VectorProgram] = {}


def _execute(program: VectorProgram, spec: RunSpec) -> ExecutionResult:
    """Run one compiled program under one named policy on a fresh platform.

    Shared by the serial path and the pool workers so both execute exactly
    the same code.  The cycle collector is paused for the duration of one
    run: the simulators allocate millions of short-lived records whose
    lifetimes are reference-counted, so generational scans only add
    pauses; per-run bookkeeping (records, decisions) is acyclic and freed
    normally when the result is consumed.
    """
    platform = SSDPlatform(spec.platform)
    gc_was_enabled = gc.isenabled()
    if gc_was_enabled:
        gc.disable()
    try:
        if spec.policy in HOST_POLICIES:
            device = (Resource.HOST_CPU if spec.policy == "CPU"
                      else Resource.HOST_GPU)
            runtime = HostRuntime(platform, spec.runtime)
            return runtime.execute(program, device, spec.workload)
        runtime = ConduitRuntime(platform, spec.runtime)
        return runtime.execute(program, make_policy(spec.policy),
                               spec.workload)
    finally:
        if gc_was_enabled:
            gc.enable()


def execute_run_spec(spec: RunSpec) -> ExecutionResult:
    """Process-pool worker: materialize and execute one :class:`RunSpec`."""
    cache_key = (spec.workload, spec.scale, spec.workload_params)
    program = _WORKER_PROGRAMS.get(cache_key)
    if program is None:
        workload = workload_by_name(spec.workload, scale=spec.scale)
        identity = workload.cache_identity()
        if identity != spec.workload_params:
            # The registry entry changed between spec construction and
            # execution (a name re-registered with a different trace or
            # parameter set): running it would silently attribute the new
            # content's results to the old spec's cache key.
            raise ValueError(
                f"workload {spec.workload!r} rebuilt with cache identity "
                f"{identity!r}, but this spec was built from "
                f"{spec.workload_params!r}; the registry entry changed "
                "under a running sweep")
        program = _compile_program(workload)
        _WORKER_PROGRAMS[cache_key] = program
    return _execute(program, spec)


def resolve_sweep_workers(workers: Optional[int] = None) -> int:
    """Resolve the sweep worker count.

    Priority: explicit argument, then :data:`SWEEP_WORKERS_ENV`, then
    ``os.cpu_count()``.  The result is always >= 1; ``1`` means serial
    in-process execution (no process pool is created).
    """
    if workers is None:
        env = os.environ.get(SWEEP_WORKERS_ENV, "").strip()
        if env:
            try:
                workers = int(env)
            except ValueError:
                raise ValueError(
                    f"{SWEEP_WORKERS_ENV} must be an integer, got {env!r}")
        else:
            workers = os.cpu_count() or 1
    if workers < 1:
        raise ValueError(f"sweep worker count must be >= 1, got {workers}")
    return workers


def default_sweep_cache_dir() -> Optional[str]:
    """The cache directory figure-harness CLIs use.

    Honors :data:`SWEEP_CACHE_ENV`: unset picks
    :data:`DEFAULT_SWEEP_CACHE_DIR`, an empty value / ``0`` / ``off``
    disables caching, anything else names the directory.
    """
    value = os.environ.get(SWEEP_CACHE_ENV)
    if value is None:
        return DEFAULT_SWEEP_CACHE_DIR
    value = value.strip()
    if value.lower() in ("", "0", "off", "none", "false"):
        return None
    return value


class SweepCache:
    """Pickle-per-result on-disk cache keyed by :func:`run_spec_key`.

    Corrupt, unreadable or version-mismatched entries are treated as
    misses; writes go through a temporary file plus :func:`os.replace` so
    concurrent sweeps never observe a torn entry.
    """

    def __init__(self, directory: str) -> None:
        self.directory = directory
        self.hits = 0
        self.misses = 0

    def _path(self, key: str) -> str:
        return os.path.join(self.directory, f"{key}.pkl")

    def load(self, spec: RunSpec) -> Optional[ExecutionResult]:
        try:
            with open(self._path(run_spec_key(spec)), "rb") as handle:
                result = pickle.load(handle)
        except (OSError, EOFError, pickle.UnpicklingError, AttributeError,
                ImportError, IndexError):
            self.misses += 1
            return None
        if not isinstance(result, ExecutionResult):
            self.misses += 1
            return None
        self.hits += 1
        return result

    def store(self, spec: RunSpec, result: ExecutionResult) -> None:
        os.makedirs(self.directory, exist_ok=True)
        handle, temp_path = tempfile.mkstemp(dir=self.directory,
                                             suffix=".tmp")
        try:
            with os.fdopen(handle, "wb") as stream:
                pickle.dump(result, stream,
                            protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(temp_path, self._path(run_spec_key(spec)))
        except OSError:
            # A failed disk write only loses the cache entry, never the
            # sweep; anything else (e.g. an unpicklable result) is a
            # programming error and propagates after the cleanup below.
            pass
        finally:
            try:
                os.unlink(temp_path)
            except OSError:
                pass  # already renamed into place (or never created)


@dataclass
class SweepStats:
    """Bookkeeping of the last :meth:`ExperimentRunner.sweep` call."""

    pairs: int = 0
    executed: int = 0
    cache_hits: int = 0
    workers: int = 1
    parallel: bool = False
    platforms: int = 1

    def summary(self) -> str:
        """One-line human-readable form (``repro run -v`` prints this)."""
        return (f"pairs={self.pairs} executed={self.executed} "
                f"cache_hits={self.cache_hits} workers={self.workers} "
                f"platforms={self.platforms} "
                f"mode={'parallel' if self.parallel else 'serial'}")


class ExperimentRunner:
    """Runs (workload, policy) pairs and caches vectorized programs."""

    def __init__(self, config: Optional[ExperimentConfig] = None) -> None:
        self.config = config or ExperimentConfig()
        self._programs: Dict[Tuple[str, float, Tuple[Tuple[str, str], ...]],
                             VectorProgram] = {}
        #: Stats of the most recent sweep (pairs, cache hits, workers).
        self.last_sweep_stats = SweepStats()

    # -- Program construction ------------------------------------------------------

    def program_for(self, workload: Workload) -> VectorProgram:
        key = (workload.name, workload.scale, workload.cache_identity())
        if key not in self._programs:
            self._programs[key] = _compile_program(workload)
        return self._programs[key]

    # -- Run specifications --------------------------------------------------------

    def spec_for(self, workload: Workload, policy_name: str,
                 platform: Optional[PlatformConfig] = None,
                 platform_name: str = "default") -> RunSpec:
        """The :class:`RunSpec` describing one (workload, policy) pair.

        ``platform`` overrides the runner's configured platform for
        platform-axis sweeps; ``platform_name`` is the variant's display
        label (excluded from the cache key).
        """
        return RunSpec(workload=workload.name, scale=workload.scale,
                       policy=policy_name,
                       platform=(platform if platform is not None
                                 else self.config.platform),
                       runtime=self.config.runtime,
                       platform_name=platform_name,
                       workload_params=workload.cache_identity())

    # -- Single runs ------------------------------------------------------------------

    def run(self, workload: Workload, policy_name: str) -> ExecutionResult:
        """Run one workload under one policy on a fresh platform."""
        return _execute(self.program_for(workload),
                        self.spec_for(workload, policy_name))

    def run_with_policy(self, workload: Workload,
                        policy: OffloadingPolicy) -> ExecutionResult:
        """Run one workload under an externally constructed policy."""
        program = self.program_for(workload)
        platform = SSDPlatform(self.config.platform)
        runtime = ConduitRuntime(platform, self.config.runtime)
        return runtime.execute(program, policy, workload.name)

    # -- Sweeps -----------------------------------------------------------------------

    def sweep(self, policies: Sequence[str],
              workloads: Optional[Sequence[Workload]] = None, *,
              platforms: Optional[Sequence[object]] = None,
              parallel: bool = False, workers: Optional[int] = None,
              cache_dir: Optional[str] = None
              ) -> Dict[Tuple, ExecutionResult]:
        """Run the (workload, policy[, platform]) cross-product.

        Without ``platforms`` the grid is keyed by (workload, policy) and
        every pair runs on the runner's configured platform, exactly as
        before the platform axis existed.  With ``platforms`` -- a
        sequence of registered variant names and/or explicit
        ``(name, PlatformConfig)`` pairs, resolved against the runner's
        platform as the base -- the sweep covers the full cross-product
        and the grid is keyed by (workload, policy, platform_name).

        The result grid is always assembled in workload-major,
        policy-then-platform spec order, so serial and parallel sweeps
        return identical dictionaries (same keys, same order,
        bit-identical results).

        :param parallel: shard the units over a process pool.  With one
            resolved worker the sweep stays in-process (but still runs
            through the shared :func:`execute_run_spec` path).
        :param workers: worker count; ``None`` defers to
            :func:`resolve_sweep_workers` (``REPRO_SWEEP_WORKERS`` env
            override, then ``os.cpu_count()``).
        :param cache_dir: directory of the on-disk result cache; ``None``
            disables caching.  Cache keys cover the resolved platform
            configuration (not the variant label), so the cross-product
            shares entries with single-platform sweeps of the same shape.
        """
        workloads = list(workloads) if workloads is not None else \
            self.config.workloads()
        variants = self._resolve_platforms(platforms)
        keyed_by_platform = platforms is not None
        specs = [self.spec_for(workload, policy_name, platform=config,
                               platform_name=name)
                 for workload in workloads for policy_name in policies
                 for name, config in variants]
        stats = SweepStats(pairs=len(specs), parallel=parallel,
                           platforms=len(variants))
        cache = SweepCache(cache_dir) if cache_dir else None
        if parallel or cache:
            # Cache keys identify workloads by (name, scale), so the cache
            # needs the same name->class reconstructibility guarantee as
            # the pool workers: an unregistered same-named workload would
            # otherwise poison (or wrongly hit) the shared entries.
            self._verify_parallelizable(workloads)

        slots: List[Optional[ExecutionResult]] = [None] * len(specs)
        pending: List[int] = []
        for index, spec in enumerate(specs):
            cached = cache.load(spec) if cache else None
            if cached is not None:
                slots[index] = cached
            else:
                pending.append(index)
        stats.cache_hits = len(specs) - len(pending)
        stats.executed = len(pending)

        if pending:
            if parallel:
                stats.workers = min(resolve_sweep_workers(workers),
                                    len(pending))
            else:
                stats.workers = 1
            pending_specs = [specs[index] for index in pending]
            if stats.workers > 1:
                # ``Executor.map`` yields results in submission order, so
                # the grid below is independent of completion order.
                with ProcessPoolExecutor(
                        max_workers=stats.workers) as pool:
                    executed = list(pool.map(execute_run_spec,
                                             pending_specs, chunksize=1))
            elif parallel:
                executed = [execute_run_spec(spec)
                            for spec in pending_specs]
            else:
                # Classic serial path: reuse the parent's program cache.
                by_name = {workload.name: workload for workload in workloads}
                executed = [
                    _execute(self.program_for(by_name[spec.workload]), spec)
                    for spec in pending_specs
                ]
            for index, result in zip(pending, executed):
                slots[index] = result
                if cache:
                    cache.store(specs[index], result)

        self.last_sweep_stats = stats
        if keyed_by_platform:
            return {(spec.workload, spec.policy, spec.platform_name): result
                    for spec, result in zip(specs, slots)}
        return {(spec.workload, spec.policy): result
                for spec, result in zip(specs, slots)}

    def _resolve_platforms(self, platforms: Optional[Sequence[object]]
                           ) -> List[Tuple[str, PlatformConfig]]:
        """Normalize the platform axis into (name, config) pairs.

        ``None`` means "no platform axis": one anonymous entry holding the
        runner's configured platform under the ``default`` label.
        """
        if platforms is None:
            return [("default", self.config.platform)]
        resolved: List[Tuple[str, PlatformConfig]] = []
        seen = set()
        for entry in platforms:
            if isinstance(entry, str):
                name, config = entry, platform_variant(
                    entry, base=self.config.platform)
            else:
                name, config = entry
            if name in seen:
                raise ValueError(
                    f"duplicate platform variant {name!r} in sweep; the "
                    "variant names key the result grid")
            seen.add(name)
            resolved.append((name, config))
        if not resolved:
            raise ValueError("platform axis must name at least one variant")
        return resolved

    @staticmethod
    def _verify_parallelizable(workloads: Iterable[Workload]) -> None:
        """Parallel sweeps rebuild workloads by name in the workers."""
        for workload in workloads:
            rebuilt = workload_by_name(workload.name, scale=workload.scale)
            if type(rebuilt) is not type(workload):
                raise ValueError(
                    f"workload {workload.name!r} is not reconstructible "
                    f"from the workload registry (got "
                    f"{type(rebuilt).__name__}, expected "
                    f"{type(workload).__name__}); run this sweep serially "
                    "or register the workload class")
            if rebuilt.cache_identity() != workload.cache_identity():
                raise ValueError(
                    f"workload {workload.name!r} rebuilds with cache "
                    f"identity {rebuilt.cache_identity()!r}, expected "
                    f"{workload.cache_identity()!r}; the registry entry "
                    "no longer matches this instance (re-register the "
                    "trace/parameters or run serially)")


def speedup_table(results: Dict[Tuple[str, str], ExecutionResult],
                  policies: Sequence[str],
                  baseline: str = "CPU") -> Dict[str, Dict[str, float]]:
    """Speedups normalized to ``baseline`` plus a GMEAN row (Fig. 5 / 7a)."""
    workloads = sorted({workload for workload, _ in results})
    table: Dict[str, Dict[str, float]] = {}
    for workload in workloads:
        base = results[(workload, baseline)]
        table[workload] = {
            policy: speedup(base, results[(workload, policy)])
            for policy in policies if (workload, policy) in results
        }
    table["GMEAN"] = {
        policy: geometric_mean([table[w][policy] for w in workloads
                                if policy in table[w]])
        for policy in policies
    }
    return table


def energy_table(results: Dict[Tuple[str, str], ExecutionResult],
                 policies: Sequence[str],
                 baseline: str = "CPU") -> Dict[str, Dict[str, Dict[str, float]]]:
    """Energy normalized to ``baseline``, split DM vs compute (Fig. 7b)."""
    workloads = sorted({workload for workload, _ in results})
    table: Dict[str, Dict[str, Dict[str, float]]] = {}
    for workload in workloads:
        base_energy = results[(workload, baseline)].total_energy_nj
        if base_energy <= 0:
            # Normalizing by a zero-energy baseline is undefined; the old
            # behaviour silently emitted an all-zero row, which reads as
            # "this policy is free" in Fig. 7(b).  Every simulated run
            # charges energy, so a zero here means the result grid is
            # broken -- fail loudly instead of flattening the figure.
            raise ValueError(
                f"baseline {baseline!r} reported zero energy for workload "
                f"{workload!r}; cannot normalize the energy table")
        row: Dict[str, Dict[str, float]] = {}
        for policy in policies:
            if (workload, policy) not in results:
                continue
            result = results[(workload, policy)]
            total = result.total_energy_nj / base_energy
            dm_fraction = result.energy.data_movement_fraction
            row[policy] = {
                "total": total,
                "data_movement": total * dm_fraction,
                "compute": total * (1 - dm_fraction),
            }
        table[workload] = row
    return table
