"""Experiment runner shared by all figure/table harnesses.

Each experiment in the paper's evaluation section (Figs. 4-10, Table 3) is a
sweep of (workload, execution policy) pairs over the same simulated
platform.  This module centralizes:

* the experiment platform configuration (a scaled-down version of Table 2's
  system so sweeps finish in seconds -- the *ratios* between capacities are
  preserved: workload footprints exceed the SSD-DRAM compute window and the
  host page cache, as in the paper, so operands stream from flash);
* construction and caching of the vectorized programs;
* running one (workload, policy) pair on a fresh platform; and
* assembling result grids keyed by workload and policy.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.common import MIB, Resource
from repro.core.compiler.ir import VectorProgram
from repro.core.metrics import ExecutionResult, geometric_mean, speedup
from repro.core.offload.policies import OffloadingPolicy, make_policy
from repro.core.platform import PlatformConfig, SSDPlatform
from repro.core.runtime import ConduitRuntime, HostRuntime, RuntimeConfig
from repro.workloads import Workload, default_workloads

#: Names of the host (OSP) baselines; they run through :class:`HostRuntime`.
HOST_POLICIES = ("CPU", "GPU")

#: All execution policies of Fig. 7 in the paper's plotting order.
FIG7_POLICIES = ("CPU", "GPU", "ISP", "PuD-SSD", "Flash-Cosmos",
                 "Ares-Flash", "BW-Offloading", "DM-Offloading", "Conduit",
                 "Ideal")

#: The prior-work policies of the Fig. 5 motivation study (no Conduit).
FIG5_POLICIES = ("CPU", "GPU", "ISP", "PuD-SSD", "Flash-Cosmos",
                 "Ares-Flash", "BW-Offloading", "DM-Offloading", "Ideal")


def experiment_platform_config() -> PlatformConfig:
    """The platform configuration used by the experiment harnesses.

    Capacity windows are scaled down together with the workload footprints
    so the paper's regime (dataset ≫ SSD DRAM, dataset ≫ host cache) holds
    while a full sweep stays fast.
    """
    return PlatformConfig(
        dram_compute_window_bytes=2 * MIB,
        sram_window_bytes=512 * 1024,
        host_cache_bytes=2 * MIB,
    )


@dataclass
class ExperimentConfig:
    """Configuration shared by the experiment harnesses."""

    workload_scale: float = 0.25
    platform: PlatformConfig = field(
        default_factory=experiment_platform_config)
    runtime: RuntimeConfig = field(default_factory=RuntimeConfig)

    def workloads(self) -> List[Workload]:
        return default_workloads(scale=self.workload_scale)


class ExperimentRunner:
    """Runs (workload, policy) pairs and caches vectorized programs."""

    def __init__(self, config: Optional[ExperimentConfig] = None) -> None:
        self.config = config or ExperimentConfig()
        self._programs: Dict[str, VectorProgram] = {}

    # -- Program construction ------------------------------------------------------

    def program_for(self, workload: Workload) -> VectorProgram:
        if workload.name not in self._programs:
            program, _ = workload.vector_program()
            self._programs[workload.name] = program
        return self._programs[workload.name]

    # -- Single runs ------------------------------------------------------------------

    def run(self, workload: Workload, policy_name: str) -> ExecutionResult:
        """Run one workload under one policy on a fresh platform."""
        program = self.program_for(workload)
        platform = SSDPlatform(self.config.platform)
        if policy_name in HOST_POLICIES:
            device = (Resource.HOST_CPU if policy_name == "CPU"
                      else Resource.HOST_GPU)
            runtime = HostRuntime(platform, self.config.runtime)
            return runtime.execute(program, device, workload.name)
        runtime = ConduitRuntime(platform, self.config.runtime)
        return runtime.execute(program, make_policy(policy_name),
                               workload.name)

    def run_with_policy(self, workload: Workload,
                        policy: OffloadingPolicy) -> ExecutionResult:
        """Run one workload under an externally constructed policy."""
        program = self.program_for(workload)
        platform = SSDPlatform(self.config.platform)
        runtime = ConduitRuntime(platform, self.config.runtime)
        return runtime.execute(program, policy, workload.name)

    # -- Sweeps -----------------------------------------------------------------------

    def sweep(self, policies: Sequence[str],
              workloads: Optional[Sequence[Workload]] = None
              ) -> Dict[Tuple[str, str], ExecutionResult]:
        """Run every (workload, policy) pair; keys are (workload, policy)."""
        workloads = list(workloads) if workloads is not None else \
            self.config.workloads()
        results: Dict[Tuple[str, str], ExecutionResult] = {}
        for workload in workloads:
            for policy_name in policies:
                results[(workload.name, policy_name)] = self.run(workload,
                                                                 policy_name)
        return results


def speedup_table(results: Dict[Tuple[str, str], ExecutionResult],
                  policies: Sequence[str],
                  baseline: str = "CPU") -> Dict[str, Dict[str, float]]:
    """Speedups normalized to ``baseline`` plus a GMEAN row (Fig. 5 / 7a)."""
    workloads = sorted({workload for workload, _ in results})
    table: Dict[str, Dict[str, float]] = {}
    for workload in workloads:
        base = results[(workload, baseline)]
        table[workload] = {
            policy: speedup(base, results[(workload, policy)])
            for policy in policies if (workload, policy) in results
        }
    table["GMEAN"] = {
        policy: geometric_mean([table[w][policy] for w in workloads
                                if policy in table[w]])
        for policy in policies
    }
    return table


def energy_table(results: Dict[Tuple[str, str], ExecutionResult],
                 policies: Sequence[str],
                 baseline: str = "CPU") -> Dict[str, Dict[str, Dict[str, float]]]:
    """Energy normalized to ``baseline``, split DM vs compute (Fig. 7b)."""
    workloads = sorted({workload for workload, _ in results})
    table: Dict[str, Dict[str, Dict[str, float]]] = {}
    for workload in workloads:
        base_energy = results[(workload, baseline)].total_energy_nj
        row: Dict[str, Dict[str, float]] = {}
        for policy in policies:
            if (workload, policy) not in results:
                continue
            result = results[(workload, policy)]
            total = result.total_energy_nj / base_energy if base_energy else 0
            dm_fraction = result.energy.data_movement_fraction
            row[policy] = {
                "total": total,
                "data_movement": total * dm_fraction,
                "compute": total * (1 - dm_fraction),
            }
        table[workload] = row
    return table
