"""Table 3 -- characteristics of the evaluated workloads.

Regenerates the workload characterization table: vectorizable code
percentage, average reuse and low/medium/high latency operation mix for the
six workloads, measured from the output of Conduit's compile-time pass and
reported next to the paper's values.

Characterization is compile-only (no simulation), but each workload's
compile + measurement is independent, so the table shards over the same
process pool as the simulation sweeps; rows come back in workload order
regardless of completion order.  Registered as the ``table3`` experiment
(``python -m repro run table3``) -- the only definition with an empty
policy axis, proving the registry also covers non-sweep experiments.
"""

from __future__ import annotations

from collections import OrderedDict
from concurrent.futures import ProcessPoolExecutor
from typing import Dict, List, Optional

from repro.experiments.registry import (ExperimentContext, ExperimentDef,
                                        register_experiment)
from repro.experiments.report import format_table
from repro.experiments.runner import ExperimentConfig, resolve_sweep_workers
from repro.workloads import Workload, characterization_table


def _characterization_row(workload: Workload) -> Dict[str, object]:
    """One Table 3 row (a picklable top-level shard for the pool)."""
    return characterization_table([workload])[0]


def _characterize(workloads: List[Workload], *, parallel: bool,
                  workers: Optional[int]) -> List[Dict[str, object]]:
    count = min(resolve_sweep_workers(workers), len(workloads)) \
        if parallel else 1
    if count > 1:
        with ProcessPoolExecutor(max_workers=count) as pool:
            return list(pool.map(_characterization_row, workloads))
    return [_characterization_row(workload) for workload in workloads]


def _sections(ctx: ExperimentContext):
    return OrderedDict(table3=_characterize(ctx.workloads,
                                            parallel=ctx.parallel,
                                            workers=ctx.workers))


TABLE3_DEF = register_experiment(ExperimentDef(
    name="table3",
    title="Table 3 -- workload characteristics (measured vs. paper)",
    description="Compile-time characterization: vectorizable fraction, "
                "reuse, and latency-class operation mix.",
    policies=(),  # compile-only: no simulation sweep
    build=_sections,
), overwrite=True)


def run_table3(config: Optional[ExperimentConfig] = None, *,
               parallel: bool = True, workers: Optional[int] = None
               ) -> List[Dict[str, object]]:
    config = config or ExperimentConfig()
    return _characterize(config.workloads(), parallel=parallel,
                         workers=workers)


def main(config: Optional[ExperimentConfig] = None) -> str:
    rows = run_table3(config)
    text = format_table(rows)
    print("Table 3 -- workload characteristics (measured vs. paper)")
    print(text)
    return text


if __name__ == "__main__":  # deprecation shim -> python -m repro run table3
    from repro.__main__ import run_module_shim
    run_module_shim("table3")
