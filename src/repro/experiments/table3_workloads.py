"""Table 3 -- characteristics of the evaluated workloads.

Regenerates the workload characterization table: vectorizable code
percentage, average reuse and low/medium/high latency operation mix for the
six workloads, measured from the output of Conduit's compile-time pass and
reported next to the paper's values.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.experiments.report import format_table
from repro.experiments.runner import ExperimentConfig
from repro.workloads import characterization_table


def run_table3(config: Optional[ExperimentConfig] = None
               ) -> List[Dict[str, object]]:
    config = config or ExperimentConfig()
    return characterization_table(config.workloads())


def main(config: Optional[ExperimentConfig] = None) -> str:
    rows = run_table3(config)
    text = format_table(rows)
    print("Table 3 -- workload characteristics (measured vs. paper)")
    print(text)
    return text


if __name__ == "__main__":
    main()
