"""Plain-text and JSON reporting helpers for the experiment harnesses.

The benchmark targets print the same rows/series the paper's figures show;
these helpers keep that formatting in one place.
"""

from __future__ import annotations

import json
from typing import Dict, Iterable, List, Mapping, Optional, Sequence


def format_table(rows: Sequence[Mapping[str, object]],
                 columns: Optional[Sequence[str]] = None,
                 float_digits: int = 2) -> str:
    """Format a list of dict rows as an aligned plain-text table."""
    if not rows:
        return "(no rows)"
    if columns is None:
        columns = list(rows[0].keys())

    def render(value: object) -> str:
        if isinstance(value, float):
            return f"{value:.{float_digits}f}"
        return str(value)

    rendered = [[render(row.get(column, "")) for column in columns]
                for row in rows]
    widths = [max(len(column), *(len(line[i]) for line in rendered))
              for i, column in enumerate(columns)]
    header = "  ".join(column.ljust(widths[i])
                       for i, column in enumerate(columns))
    separator = "  ".join("-" * widths[i] for i in range(len(columns)))
    body = [
        "  ".join(line[i].ljust(widths[i]) for i in range(len(columns)))
        for line in rendered
    ]
    return "\n".join([header, separator] + body)


def nested_to_rows(table: Mapping[str, Mapping[str, object]],
                   index_name: str = "workload") -> List[Dict[str, object]]:
    """Turn {row: {column: value}} into a list of flat dict rows."""
    rows: List[Dict[str, object]] = []
    for key, columns in table.items():
        row: Dict[str, object] = {index_name: key}
        row.update(columns)
        rows.append(row)
    return rows


def to_json(data: object, path: Optional[str] = None, indent: int = 2) -> str:
    """Serialize experiment output as JSON (optionally writing a file)."""
    text = json.dumps(data, indent=indent, sort_keys=True, default=str)
    if path is not None:
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(text)
    return text
