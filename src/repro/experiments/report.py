"""Plain-text and JSON reporting helpers plus the full-report driver.

The benchmark targets print the same rows/series the paper's figures show;
these helpers keep that formatting in one place.  :func:`run_report`
regenerates *every* figure/table of the evaluation in one call, sharing the
parallel sweep engine and the on-disk sweep cache, so a full paper report
costs one sharded sweep per figure the first time and almost nothing on
repeats.
"""

from __future__ import annotations

import json
from typing import Dict, Iterable, List, Mapping, Optional, Sequence


def format_table(rows: Sequence[Mapping[str, object]],
                 columns: Optional[Sequence[str]] = None,
                 float_digits: int = 2) -> str:
    """Format a list of dict rows as an aligned plain-text table."""
    if not rows:
        return "(no rows)"
    if columns is None:
        columns = list(rows[0].keys())

    def render(value: object) -> str:
        if isinstance(value, float):
            return f"{value:.{float_digits}f}"
        return str(value)

    rendered = [[render(row.get(column, "")) for column in columns]
                for row in rows]
    widths = [max(len(column), *(len(line[i]) for line in rendered))
              for i, column in enumerate(columns)]
    header = "  ".join(column.ljust(widths[i])
                       for i, column in enumerate(columns))
    separator = "  ".join("-" * widths[i] for i in range(len(columns)))
    body = [
        "  ".join(line[i].ljust(widths[i]) for i in range(len(columns)))
        for line in rendered
    ]
    return "\n".join([header, separator] + body)


def nested_to_rows(table: Mapping[str, Mapping[str, object]],
                   index_name: str = "workload") -> List[Dict[str, object]]:
    """Turn {row: {column: value}} into a list of flat dict rows."""
    rows: List[Dict[str, object]] = []
    for key, columns in table.items():
        row: Dict[str, object] = {index_name: key}
        row.update(columns)
        rows.append(row)
    return rows


def to_json(data: object, path: Optional[str] = None, indent: int = 2) -> str:
    """Serialize experiment output as JSON (optionally writing a file)."""
    text = json.dumps(data, indent=indent, sort_keys=True, default=str)
    if path is not None:
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(text)
    return text


def run_report(config=None, *, parallel: bool = True,
               workers: Optional[int] = None,
               cache_dir: Optional[str] = None) -> Dict[str, str]:
    """Regenerate every figure/table of the evaluation section.

    Returns ``{section: formatted table text}`` in the paper's order.  All
    sections share the sweep engine knobs and a result cache -- a
    per-call temporary one when ``cache_dir`` is ``None`` -- so the
    (workload, policy) pairs common to several figures (e.g. the Fig. 5
    baselines are a subset of Fig. 7's) are simulated once.
    """
    if cache_dir is None:
        import tempfile
        with tempfile.TemporaryDirectory(prefix="sweep_cache_") as shared:
            return run_report(config, parallel=parallel, workers=workers,
                              cache_dir=shared)

    # Imported here: the figure harnesses import this module's formatters.
    from repro.experiments.fig4_case_study import run_case_study
    from repro.experiments.fig5_motivation import run_motivation
    from repro.experiments.fig7_speedup_energy import run_fig7
    from repro.experiments.fig8_tail_latency import run_tail_latency
    from repro.experiments.fig9_offload_decisions import run_offload_decisions
    from repro.experiments.fig10_timeline import phase_summary, run_timeline
    from repro.experiments.overheads import run_overheads
    from repro.experiments.table3_workloads import run_table3

    knobs = dict(parallel=parallel, workers=workers, cache_dir=cache_dir)
    sections: Dict[str, str] = {}
    sections["table3"] = format_table(
        run_table3(config, parallel=parallel, workers=workers))
    sections["fig4"] = format_table(run_case_study(config, **knobs))
    sections["fig5"] = format_table(nested_to_rows(
        run_motivation(config, **knobs)))
    fig7 = run_fig7(config, **knobs)
    sections["fig7a"] = format_table(nested_to_rows(fig7.speedups))
    energy_rows = [
        {"workload": workload, "policy": policy, **parts}
        for workload, row in fig7.energy.items()
        for policy, parts in row.items()
    ]
    sections["fig7b"] = format_table(energy_rows)
    sections["fig8"] = format_table(run_tail_latency(config, **knobs))
    sections["fig9"] = format_table(run_offload_decisions(config, **knobs))
    sections["fig10"] = format_table(phase_summary(
        run_timeline(config, **knobs)))
    overheads = run_overheads(config, **knobs)
    sections["overheads"] = format_table([
        {"metric": key, "value": value} for key, value in overheads.items()
    ])
    return sections


def main(config=None) -> Dict[str, str]:
    from repro.experiments.runner import default_sweep_cache_dir
    sections = run_report(config, cache_dir=default_sweep_cache_dir())
    for name, text in sections.items():
        print(f"== {name} ==")
        print(text)
        print()
    return sections


if __name__ == "__main__":
    main()
