"""Plain-text and JSON reporting helpers plus the full-report driver.

The benchmark targets print the same rows/series the paper's figures show;
these helpers keep that formatting in one place.  The ``report``
experiment is a *composite* registry entry: its members (Table 3,
Figs. 4-10, overheads) run in the paper's order against one shared result
cache, so a full paper report costs one sharded sweep per figure the first
time and almost nothing on repeats.  :func:`run_report` is the library
API; ``python -m repro run report`` is the CLI entry point.
"""

from __future__ import annotations

import json
from typing import Dict, Iterable, List, Mapping, Optional, Sequence


def format_table(rows: Sequence[Mapping[str, object]],
                 columns: Optional[Sequence[str]] = None,
                 float_digits: int = 2) -> str:
    """Format a list of dict rows as an aligned plain-text table."""
    if not rows:
        return "(no rows)"
    if columns is None:
        columns = list(rows[0].keys())

    def render(value: object) -> str:
        if isinstance(value, float):
            return f"{value:.{float_digits}f}"
        return str(value)

    rendered = [[render(row.get(column, "")) for column in columns]
                for row in rows]
    widths = [max(len(column), *(len(line[i]) for line in rendered))
              for i, column in enumerate(columns)]
    header = "  ".join(column.ljust(widths[i])
                       for i, column in enumerate(columns))
    separator = "  ".join("-" * widths[i] for i in range(len(columns)))
    body = [
        "  ".join(line[i].ljust(widths[i]) for i in range(len(columns)))
        for line in rendered
    ]
    return "\n".join([header, separator] + body)


def nested_to_rows(table: Mapping[str, Mapping[str, object]],
                   index_name: str = "workload") -> List[Dict[str, object]]:
    """Turn {row: {column: value}} into a list of flat dict rows."""
    rows: List[Dict[str, object]] = []
    for key, columns in table.items():
        row: Dict[str, object] = {index_name: key}
        row.update(columns)
        rows.append(row)
    return rows


def to_json(data: object, path: Optional[str] = None, indent: int = 2) -> str:
    """Serialize experiment output as JSON (optionally writing a file)."""
    text = json.dumps(data, indent=indent, sort_keys=True, default=str)
    if path is not None:
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(text)
    return text


def _register_report() -> None:
    """Register the composite ``report`` experiment.

    Deferred into a function (called from the package ``__init__`` after
    the member modules are imported) purely to keep this module free of
    import cycles: the registry's formatting hooks import *this* module.
    """
    from repro.experiments.registry import (EXPERIMENT_REGISTRY,
                                            ExperimentDef,
                                            register_experiment)
    if "report" in EXPERIMENT_REGISTRY:
        return
    register_experiment(ExperimentDef(
        name="report",
        title="Full evaluation report (Table 3, Figs. 4-10, overheads)",
        description="Every figure/table of the evaluation section, sharing "
                    "one result cache across the member sweeps.",
        composite=("table3", "fig4", "fig5", "fig7", "fig8", "fig9",
                   "fig10", "overheads"),
    ))


def run_report(config=None, *, parallel: bool = True,
               workers: Optional[int] = None,
               cache_dir: Optional[str] = None) -> Dict[str, str]:
    """Regenerate every figure/table of the evaluation section.

    Returns ``{section: formatted table text}`` in the paper's order.  All
    sections share the sweep engine knobs and a result cache -- a
    per-call temporary one when ``cache_dir`` is ``None`` -- so the
    (workload, policy) pairs common to several figures (e.g. the Fig. 5
    baselines are a subset of Fig. 7's) are simulated once.
    """
    from repro.experiments.registry import run_experiment
    result = run_experiment("report", config, parallel=parallel,
                            workers=workers, cache_dir=cache_dir)
    return dict(result.formatted())


def main(config=None) -> Dict[str, str]:
    from repro.experiments.runner import default_sweep_cache_dir
    sections = run_report(config, cache_dir=default_sweep_cache_dir())
    for name, text in sections.items():
        print(f"== {name} ==")
        print(text)
        print()
    return sections


if __name__ == "__main__":  # deprecation shim -> python -m repro run report
    from repro.__main__ import run_module_shim
    run_module_shim("report")
