"""Declarative experiment registry and the shared ``run_experiment`` engine.

Every figure/table of the paper's evaluation is one conceptual object: a
grid of (workload, policy, platform) runs rendered into tables.  This
module makes that object first class, in the spirit of MLPerf's named
benchmark entries and gem5's config-driven experiment definitions:

* an :class:`ExperimentDef` declares an experiment's axes (policies,
  workloads, default platform variants), its table builders and its
  paper-reference headlines;
* :data:`EXPERIMENT_REGISTRY` names every definition -- the figure modules
  register theirs at import time, and user code registers more with
  :func:`register_experiment`;
* :func:`run_experiment` is the single engine behind all of them: resolve
  the platform variants, run one cached cross-product sweep through
  :class:`~repro.experiments.runner.ExperimentRunner`, hand the grid to
  the definition's builders, and return an :class:`ExperimentResult` with
  per-section rows, formatted tables, headline lines and sweep stats.

``python -m repro`` is a thin shell over this module.
"""

from __future__ import annotations

import tempfile
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import (Callable, Dict, List, Optional, Sequence, Tuple,
                    Union)

from repro.core.metrics import ExecutionResult
from repro.core.platform import PlatformConfig
from repro.experiments.platforms import platform_variant
from repro.experiments.runner import (ExperimentConfig, ExperimentRunner,
                                      SweepStats)
from repro.workloads import ALL_WORKLOADS, Workload, workload_by_name

#: One table: a list of flat dict rows (what ``format_table`` renders).
Rows = List[Dict[str, object]]

#: Result grid keyed by (workload, policy, platform_name).
Grid = Dict[Tuple[str, str, str], ExecutionResult]


def _platform_slice(grid: Grid, name: str, swept: Sequence[str], where: str
                    ) -> Dict[Tuple[str, str], ExecutionResult]:
    """One variant's slice of a grid, keyed by (workload, policy)."""
    if name not in swept:
        raise ValueError(
            f"platform {name!r} is not part of this {where}; swept: "
            f"{', '.join(swept)}")
    return {(workload, policy): result
            for (workload, policy, platform), result in grid.items()
            if platform == name}


@dataclass
class ExperimentContext:
    """Everything a definition's builders may need, in one place."""

    definition: "ExperimentDef"
    config: ExperimentConfig
    platform_names: Tuple[str, ...]
    platforms: "OrderedDict[str, PlatformConfig]"
    workloads: List[Workload]
    grid: Grid
    stats: SweepStats
    parallel: bool
    workers: Optional[int]
    cache_dir: Optional[str]

    def platform_grid(self, name: str
                      ) -> Dict[Tuple[str, str], ExecutionResult]:
        """One variant's slice of the grid, keyed by (workload, policy)."""
        return _platform_slice(self.grid, name, self.platform_names, "run")


#: Builds the experiment's tables from the swept grid.
SectionBuilder = Callable[[ExperimentContext], "OrderedDict[str, Rows]"]

#: Produces human-readable headline lines (paper-reference comparisons).
HeadlineBuilder = Callable[[ExperimentContext], List[str]]


@dataclass(frozen=True)
class ExperimentDef:
    """A declarative figure/table definition.

    ``build`` receives the full :class:`ExperimentContext` and returns
    ordered ``{section: rows}`` tables; use :func:`per_platform` to lift a
    single-platform builder over the platform axis.  ``policies`` may be
    empty for compile-only experiments (no sweep runs; the builder does
    its own work, e.g. Table 3's characterization).  ``composite`` names
    member experiments instead -- they run in order against one shared
    result cache and their sections are concatenated.
    """

    name: str
    title: str
    build: Optional[SectionBuilder] = None
    policies: Tuple[str, ...] = ()
    #: Workload registry names; ``None`` means all six Table 3 workloads.
    workloads: Optional[Tuple[str, ...]] = None
    #: Platform variants swept when the caller does not choose any.
    default_platforms: Tuple[str, ...] = ("default",)
    description: str = ""
    headline: Optional[HeadlineBuilder] = None
    #: Paper-reported reference numbers the headline compares against.
    paper_refs: Tuple[str, ...] = ()
    #: Member experiment names (makes this a composite definition).
    composite: Tuple[str, ...] = ()

    def axes_summary(self) -> str:
        """Short human-readable axes description for ``repro list``."""
        if self.composite:
            return f"composite of {len(self.composite)} experiments"
        workloads = (f"{len(self.workloads)} workloads" if self.workloads
                     else f"{len(ALL_WORKLOADS)} workloads")
        if not self.policies:
            return f"{workloads}, compile-only"
        platforms = ("" if self.default_platforms == ("default",)
                     else f" x {len(self.default_platforms)} platforms")
        return f"{workloads} x {len(self.policies)} policies{platforms}"


#: Every registered experiment, keyed by name (registration order kept).
EXPERIMENT_REGISTRY: "OrderedDict[str, ExperimentDef]" = OrderedDict()


def register_experiment(definition: ExperimentDef, *,
                        overwrite: bool = False) -> ExperimentDef:
    """Add a definition to :data:`EXPERIMENT_REGISTRY` (returns it)."""
    if definition.build is None and not definition.composite:
        raise ValueError(
            f"experiment {definition.name!r} needs a build callable or "
            "composite members")
    if not overwrite and definition.name in EXPERIMENT_REGISTRY:
        raise ValueError(
            f"experiment {definition.name!r} is already registered; pass "
            "overwrite=True to replace it")
    EXPERIMENT_REGISTRY[definition.name] = definition
    return definition


def _ensure_builtin_experiments() -> None:
    """Importing the package imports every figure module, which registers
    its definition; this makes that explicit for direct registry users."""
    import repro.experiments  # noqa: F401


def experiment_def(name: str) -> ExperimentDef:
    """Look up a registered experiment; unknown names fail with the list."""
    _ensure_builtin_experiments()
    try:
        return EXPERIMENT_REGISTRY[name]
    except KeyError:
        known = ", ".join(EXPERIMENT_REGISTRY)
        raise ValueError(
            f"unknown experiment {name!r}; available: {known}") from None


def available_experiments() -> Tuple[str, ...]:
    """Registered experiment names, in registration order."""
    _ensure_builtin_experiments()
    return tuple(EXPERIMENT_REGISTRY)


def per_platform(builder: Callable[
        [ExperimentContext, str, Dict[Tuple[str, str], ExecutionResult]],
        "OrderedDict[str, Rows]"]) -> SectionBuilder:
    """Lift a single-platform table builder over the platform axis.

    The wrapped builder is called once per swept variant with that
    variant's (workload, policy)-keyed grid slice.  With more than one
    variant, section names gain a ``<variant>/`` prefix so the per-variant
    tables stay distinguishable in one report.
    """
    def build(ctx: ExperimentContext) -> "OrderedDict[str, Rows]":
        sections: "OrderedDict[str, Rows]" = OrderedDict()
        multi = len(ctx.platform_names) > 1
        for name in ctx.platform_names:
            for key, rows in builder(ctx, name,
                                     ctx.platform_grid(name)).items():
                sections[f"{name}/{key}" if multi else key] = rows
        return sections
    return build


#: Version of the ``repro run --json`` document layout.  Bump whenever a
#: top-level key is added, removed or changes meaning, so downstream
#: consumers (dashboards, regression diffs) can detect layout drift
#: instead of silently misreading fields.  Version 1: the initial
#: versioned layout (experiment/platforms/sections/headline/sweeps).
RESULT_SCHEMA_VERSION = 1


@dataclass
class ExperimentResult:
    """What :func:`run_experiment` returns."""

    name: str
    sections: "OrderedDict[str, Rows]"
    headline: List[str] = field(default_factory=list)
    #: One (experiment name, stats) entry per sweep that actually ran.
    stats: List[Tuple[str, SweepStats]] = field(default_factory=list)
    grid: Grid = field(default_factory=dict)
    platform_names: Tuple[str, ...] = ("default",)

    def platform_grid(self, name: str = "default"
                      ) -> Dict[Tuple[str, str], ExecutionResult]:
        """One variant's (workload, policy)-keyed slice of the raw grid."""
        return _platform_slice(self.grid, name, self.platform_names,
                               "result")

    def formatted(self) -> "OrderedDict[str, str]":
        """``{section: aligned plain-text table}`` in section order."""
        from repro.experiments.report import format_table
        return OrderedDict((name, format_table(rows))
                           for name, rows in self.sections.items())

    def to_jsonable(self) -> Dict[str, object]:
        """A JSON-serializable summary (``repro run --json`` writes this)."""
        return {
            "schema": RESULT_SCHEMA_VERSION,
            "experiment": self.name,
            "platforms": list(self.platform_names),
            "sections": {name: rows for name, rows in self.sections.items()},
            "headline": list(self.headline),
            "sweeps": [{"experiment": name, "pairs": stats.pairs,
                        "executed": stats.executed,
                        "cache_hits": stats.cache_hits,
                        "workers": stats.workers,
                        "platforms": stats.platforms,
                        "parallel": stats.parallel}
                       for name, stats in self.stats],
        }


def run_experiment(experiment: Union[str, ExperimentDef],
                   config: Optional[ExperimentConfig] = None, *,
                   platforms: Optional[Sequence[str]] = None,
                   parallel: bool = True, workers: Optional[int] = None,
                   cache_dir: Optional[str] = None) -> ExperimentResult:
    """Run one registered (or ad-hoc) experiment definition.

    ``platforms`` overrides the definition's default platform axis with
    registered variant names, resolved against ``config.platform`` as the
    base shape.  The sweep itself is one cached cross-product: all
    variants of all (workload, policy) pairs shard over the same pool and
    share the same on-disk cache as every other experiment.
    """
    definition = (experiment if isinstance(experiment, ExperimentDef)
                  else experiment_def(experiment))
    config = config or ExperimentConfig()
    if definition.composite:
        return _run_composite(definition, config, platforms=platforms,
                              parallel=parallel, workers=workers,
                              cache_dir=cache_dir)
    platform_names = (tuple(platforms) if platforms
                      else definition.default_platforms)
    if len(set(platform_names)) != len(platform_names):
        # Catch this before the OrderedDict below silently dedups (the
        # names key both the grid and the per-variant section prefixes).
        raise ValueError(
            f"duplicate platform variant in {platform_names}; each variant "
            "may appear once per run")
    resolved = OrderedDict(
        (name, platform_variant(name, base=config.platform))
        for name in platform_names)
    workloads = (config.workloads() if definition.workloads is None else
                 [workload_by_name(name, scale=config.workload_scale)
                  for name in definition.workloads])
    runner = ExperimentRunner(config)
    if definition.policies:
        grid: Grid = runner.sweep(
            definition.policies, workloads, platforms=list(resolved.items()),
            parallel=parallel, workers=workers, cache_dir=cache_dir)
        stats = runner.last_sweep_stats
        sweeps = [(definition.name, stats)]
    else:
        grid, stats, sweeps = {}, SweepStats(platforms=len(resolved)), []
    ctx = ExperimentContext(
        definition=definition, config=config, platform_names=platform_names,
        platforms=resolved, workloads=workloads, grid=grid, stats=stats,
        parallel=parallel, workers=workers, cache_dir=cache_dir)
    sections = definition.build(ctx)
    headline = definition.headline(ctx) if definition.headline else []
    return ExperimentResult(name=definition.name, sections=sections,
                            headline=headline, stats=sweeps, grid=dict(grid),
                            platform_names=platform_names)


def _run_composite(definition: ExperimentDef, config: ExperimentConfig, *,
                   platforms: Optional[Sequence[str]],
                   parallel: bool, workers: Optional[int],
                   cache_dir: Optional[str]) -> ExperimentResult:
    """Run a composite's members in order against one shared cache."""
    if cache_dir is None:
        # A per-call throwaway cache: members share plenty of pairs (the
        # Fig. 5 baselines are a subset of Fig. 7's), so each common unit
        # is simulated exactly once per report even uncached.
        with tempfile.TemporaryDirectory(prefix="sweep_cache_") as shared:
            return _run_composite(definition, config, platforms=platforms,
                                  parallel=parallel, workers=workers,
                                  cache_dir=shared)
    sections: "OrderedDict[str, Rows]" = OrderedDict()
    headline: List[str] = []
    stats: List[Tuple[str, SweepStats]] = []
    grid: Grid = {}
    platform_names: Tuple[str, ...] = (tuple(platforms) if platforms
                                       else ("default",))
    for member in definition.composite:
        result = run_experiment(member, config, platforms=platforms,
                                parallel=parallel, workers=workers,
                                cache_dir=cache_dir)
        for key, rows in result.sections.items():
            if key in sections:
                raise ValueError(
                    f"composite {definition.name!r}: member {member!r} "
                    f"produced duplicate section {key!r}")
            sections[key] = rows
        headline.extend(result.headline)
        stats.extend(result.stats)
        grid.update(result.grid)
    return ExperimentResult(name=definition.name, sections=sections,
                            headline=headline, stats=stats, grid=grid,
                            platform_names=platform_names)
