"""Named platform variants: the sweeps' third axis.

The paper evaluates one platform shape, but the reproduction's backend
registry (PR 3) grows the platform's compute roster purely through
:class:`~repro.core.platform.PlatformConfig` knobs.  This module names
those shapes so experiment sweeps can cross them with (workload, policy)
pairs the same way gem5 configs name system shapes:

* ``default`` -- the paper's trio (pooled ISP, PuD-SSD, IFP);
* ``multicore-isp`` -- the ISP pool split into per-core backends
  ``isp[0..4)``, each with its own execution queue;
* ``cxl-pud`` -- the opt-in CXL-attached PuD tier enabled;
* ``default-feedback`` / ``multicore-isp-feedback`` /
  ``cxl-pud-feedback`` -- the same three shapes with the
  contention-aware cost model (``contention_feedback=True``) switched on,
  so feedback on/off is itself a sweepable platform axis (the
  ``contention`` experiment crosses all six).

A variant is a *factory* from a base configuration to a grown one, so the
same variant applies to the full-size experiment platform and to the tiny
platforms the tests use.  User code registers additional variants with
:func:`register_platform_variant`; every registered name is immediately
accepted by ``ExperimentRunner.sweep(platforms=...)``, every experiment
definition and the ``python -m repro run ... --platform NAME`` CLI.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Dict, Optional, Tuple

from repro.common import MIB
from repro.core.platform import PlatformConfig
from repro.dram.cxl import CXLPuDConfig
from repro.ssd.config import GCVictimPolicy
from repro.ssd.lifetime import (DriveAgeProfile, LifetimeConfig,
                                MID_LIFE_PROFILE, NEAR_EOL_PROFILE)

#: A variant maps a base platform configuration to the variant's shape.
PlatformFactory = Callable[[PlatformConfig], PlatformConfig]

#: Per-core ISP backends registered by the ``multicore-isp`` variant.
MULTICORE_ISP_CORES = 4

#: Registry of named platform variants (registration order is preserved
#: and is the order ``python -m repro list`` shows them in).
PLATFORM_VARIANTS: Dict[str, PlatformFactory] = {}


def experiment_platform_config() -> PlatformConfig:
    """The base platform configuration used by the experiment harnesses.

    Capacity windows are scaled down together with the workload footprints
    so the paper's regime (dataset >> SSD DRAM, dataset >> host cache)
    holds while a full sweep stays fast.  This is the single source of
    truth: the figure harnesses, the golden tests and
    ``benchmarks/conftest.py`` all build their ``ExperimentConfig`` from
    this factory (via the ``platform`` field default), so they cannot
    drift apart.  Platform variants grow *from* this base (or from any
    explicitly supplied one).
    """
    return PlatformConfig(
        dram_compute_window_bytes=2 * MIB,
        sram_window_bytes=512 * 1024,
        host_cache_bytes=2 * MIB,
    )


def register_platform_variant(name: str, factory: PlatformFactory, *,
                              overwrite: bool = False) -> PlatformFactory:
    """Register a named platform variant for use as a sweep axis value.

    Returns the factory so the call can be used as a decorator helper.
    Re-registering an existing name requires ``overwrite=True`` so typos
    cannot silently shadow a built-in shape.
    """
    if not overwrite and name in PLATFORM_VARIANTS:
        raise ValueError(
            f"platform variant {name!r} is already registered; pass "
            "overwrite=True to replace it")
    PLATFORM_VARIANTS[name] = factory
    return factory


def available_platform_variants() -> Tuple[str, ...]:
    """Registered variant names, in registration order."""
    return tuple(PLATFORM_VARIANTS)


def platform_variant(name: str,
                     base: Optional[PlatformConfig] = None) -> PlatformConfig:
    """Resolve a variant name into a concrete :class:`PlatformConfig`.

    ``base`` defaults to :func:`experiment_platform_config`; tests and
    examples pass their own (e.g. a tiny-SSD configuration) and still get
    the variant's roster growth applied on top.
    """
    try:
        factory = PLATFORM_VARIANTS[name]
    except KeyError:
        known = ", ".join(PLATFORM_VARIANTS)
        raise ValueError(
            f"unknown platform variant {name!r}; known variants: {known}"
        ) from None
    return factory(base if base is not None else experiment_platform_config())


def _default_variant(base: PlatformConfig) -> PlatformConfig:
    return base


def _multicore_isp_variant(base: PlatformConfig) -> PlatformConfig:
    return dataclasses.replace(base, isp_cores=MULTICORE_ISP_CORES)


def _cxl_pud_variant(base: PlatformConfig) -> PlatformConfig:
    return dataclasses.replace(base, cxl_pud=CXLPuDConfig())


def _reference_decisions_variant(base: PlatformConfig) -> PlatformConfig:
    """The default platform driven by the golden per-instruction offload
    path (``batched_offload=False``) -- bit-identical results by contract,
    kept as a CI smoke axis so the reference loop stays exercised."""
    return dataclasses.replace(base, batched_offload=False)


def with_contention_feedback(config: PlatformConfig) -> PlatformConfig:
    """The same platform shape with the contention-aware cost model on."""
    return dataclasses.replace(config, contention_feedback=True)


def with_drive_age(config: PlatformConfig,
                   profile: DriveAgeProfile) -> PlatformConfig:
    """The same platform shape on an aged drive with background GC/WL on.

    Turning the background flash engine on together with the age profile
    is deliberate: an aged drive without maintenance traffic is not a
    state a real device can be in (GC is what keeps it writable), and the
    fresh-drive seed behavior is already the engine-off default.
    """
    return dataclasses.replace(
        config,
        lifetime=dataclasses.replace(config.lifetime, background_flash=True,
                                     drive_age=profile))


def with_adaptive_ftl(config: PlatformConfig) -> PlatformConfig:
    """The same shape with the adaptive-FTL ablation knobs switched on
    (cost-benefit GC victim selection + hot/cold write separation)."""
    return dataclasses.replace(
        config,
        ssd=dataclasses.replace(
            config.ssd,
            ftl=dataclasses.replace(
                config.ssd.ftl,
                gc_victim_policy=GCVictimPolicy.COST_BENEFIT,
                hot_cold_separation=True)))


def _feedback_variant(inner: PlatformFactory) -> PlatformFactory:
    """Compose a variant factory with ``contention_feedback=True``."""
    def factory(base: PlatformConfig) -> PlatformConfig:
        return with_contention_feedback(inner(base))
    return factory


register_platform_variant("default", _default_variant)
register_platform_variant("multicore-isp", _multicore_isp_variant)
register_platform_variant("cxl-pud", _cxl_pud_variant)
register_platform_variant("reference-decisions", _reference_decisions_variant)
register_platform_variant("default-feedback",
                          _feedback_variant(_default_variant))
register_platform_variant("multicore-isp-feedback",
                          _feedback_variant(_multicore_isp_variant))
register_platform_variant("cxl-pud-feedback",
                          _feedback_variant(_cxl_pud_variant))


def _midlife_variant(base: PlatformConfig) -> PlatformConfig:
    """Mid-life drive: background GC/WL on, contention feedback on so the
    cost model sees (and the monitor records) the maintenance traffic."""
    return with_drive_age(with_contention_feedback(base), MID_LIFE_PROFILE)


def _aged_variant(base: PlatformConfig) -> PlatformConfig:
    """Near-end-of-life drive under persistent GC pressure."""
    return with_drive_age(with_contention_feedback(base), NEAR_EOL_PROFILE)


def _aged_adaptive_variant(base: PlatformConfig) -> PlatformConfig:
    """Near-EOL drive with the adaptive-FTL knobs on (the ablation twin
    of ``default-aged``: same wear state, smarter victim selection)."""
    return with_adaptive_ftl(_aged_variant(base))


register_platform_variant("default-midlife", _midlife_variant)
register_platform_variant("default-aged", _aged_variant)
register_platform_variant("default-aged-adaptive", _aged_adaptive_variant)
