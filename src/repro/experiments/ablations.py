"""Design-choice ablations as registered experiments.

The cost-model-feature, coherence-policy and vector-width ablations used
to live only as hand-rolled loops in ``benchmarks/test_bench_ablations.py``;
this module makes each one a first-class :class:`ExperimentDef` so they
run through ``python -m repro run <name>`` (and the CLI smoke tests cover
them) while the benchmarks import the shared row builders instead of
duplicating the loops.

These are not (workload x policy) sweeps -- each varies something the
sweep engine's :class:`RunSpec` does not carry (a ``CostModelConfig``, a
``CoherencePolicy``, a ``VectorizerConfig``) -- so the definitions follow
Table 3's compile-only pattern: an empty policy axis and a builder that
drives its own serial runs off ``ctx.config``.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import replace
from typing import Dict, List, Sequence

from repro.core.coherence import CoherencePolicy
from repro.core.compiler.vectorizer import VectorizerConfig
from repro.core.offload.cost_model import CostModelConfig
from repro.core.offload.policies import ConduitPolicy
from repro.core.platform import SSDPlatform
from repro.core.runtime import ConduitRuntime
from repro.experiments.registry import (ExperimentContext, ExperimentDef,
                                        register_experiment)
from repro.experiments.runner import ExperimentConfig, ExperimentRunner
from repro.workloads import workload_by_name

Rows = List[Dict[str, object]]

#: Cost-function feature ablations (DESIGN.md): drop one feature, or
#: combine the overlap delays with a sum instead of the paper's max.
COST_ABLATIONS: "OrderedDict[str, CostModelConfig]" = OrderedDict((
    ("full", CostModelConfig()),
    ("no-queueing-delay", CostModelConfig(include_queueing_delay=False)),
    ("no-data-movement", CostModelConfig(include_data_movement=False)),
    ("no-dependence-delay", CostModelConfig(include_dependence_delay=False)),
    ("sum-of-delays", CostModelConfig(combine_delays_with_max=False)),
))

#: Workloads the ablations run on (chosen to stress the varied knob).
COST_ABLATION_WORKLOAD = "LlaMA2 Inference"
COHERENCE_ABLATION_WORKLOAD = "heat-3d"
VECTOR_WIDTH_ABLATION_WORKLOAD = "heat-3d"

#: Compile-time vector widths the width ablation compares.
ABLATION_VECTOR_WIDTHS = (4096, 1024, 256)


def cost_ablation_rows(config: ExperimentConfig) -> Rows:
    """One Conduit run per cost-model variant on LLaMA2 Inference."""
    runner = ExperimentRunner(config)
    workload = workload_by_name(COST_ABLATION_WORKLOAD,
                                scale=config.workload_scale)
    rows: Rows = []
    for name, cost_config in COST_ABLATIONS.items():
        result = runner.run_with_policy(workload, ConduitPolicy(cost_config))
        rows.append({"variant": name,
                     "time_ms": result.total_time_ns / 1e6,
                     "energy_mJ": result.total_energy_nj / 1e6})
    return rows


def coherence_ablation_rows(config: ExperimentConfig) -> Rows:
    """Lazy (paper) vs strict flush-on-every-write coherence on heat-3d."""
    workload = workload_by_name(COHERENCE_ABLATION_WORKLOAD,
                                scale=config.workload_scale)
    program, _ = workload.vector_program()
    rows: Rows = []
    for name, policy in (("lazy", CoherencePolicy.LAZY),
                         ("strict", CoherencePolicy.STRICT)):
        platform = SSDPlatform(replace(config.platform,
                                       coherence_policy=policy))
        result = ConduitRuntime(platform, config.runtime).execute(
            program, ConduitPolicy(), workload.name)
        rows.append({"coherence": name,
                     "time_ms": result.total_time_ns / 1e6,
                     "flushes": platform.coherence.flushes})
    return rows


def vector_width_ablation_rows(
        config: ExperimentConfig,
        widths: Sequence[int] = ABLATION_VECTOR_WIDTHS) -> Rows:
    """The page-aligned 4096-element width vs narrower widths (heat-3d)."""
    workload = workload_by_name(VECTOR_WIDTH_ABLATION_WORKLOAD,
                                scale=config.workload_scale)
    rows: Rows = []
    for width in widths:
        program, _ = workload.vector_program(
            VectorizerConfig(vector_width=width))
        platform = SSDPlatform(config.platform)
        result = ConduitRuntime(platform, config.runtime).execute(
            program, ConduitPolicy(), workload.name)
        rows.append({"vector_width": width,
                     "instructions": result.instructions,
                     "time_ms": result.total_time_ns / 1e6,
                     "avg_overhead_us": result.offload_overhead_avg_ns / 1e3})
    return rows


def _build_cost(ctx: ExperimentContext) -> "OrderedDict[str, Rows]":
    return OrderedDict(cost_ablation=cost_ablation_rows(ctx.config))


def _build_coherence(ctx: ExperimentContext) -> "OrderedDict[str, Rows]":
    return OrderedDict(coherence_ablation=coherence_ablation_rows(ctx.config))


def _build_vector_width(ctx: ExperimentContext) -> "OrderedDict[str, Rows]":
    return OrderedDict(
        vector_width_ablation=vector_width_ablation_rows(ctx.config))


COST_ABLATION_DEF = register_experiment(ExperimentDef(
    name="cost_ablation",
    title="Cost-function feature ablation -- drop one Eqn. 1 term at a time",
    description="Conduit on LLaMA2 Inference with the queueing-delay, "
                "data-movement or dependence-delay feature dropped (and "
                "max-of-delays replaced by a sum).",
    workloads=(COST_ABLATION_WORKLOAD,),
    build=_build_cost,
))

COHERENCE_ABLATION_DEF = register_experiment(ExperimentDef(
    name="coherence_ablation",
    title="Coherence ablation -- lazy (paper) vs strict flush-on-write",
    description="Conduit on heat-3d under lazy vs strict coherence, with "
                "the flush counts that explain the gap.",
    workloads=(COHERENCE_ABLATION_WORKLOAD,),
    build=_build_coherence,
))

VECTOR_WIDTH_ABLATION_DEF = register_experiment(ExperimentDef(
    name="vector_width_ablation",
    title="Vector-width ablation -- page-aligned 4096 vs narrower vectors",
    description="Conduit on heat-3d at compile-time vector widths 4096 / "
                "1024 / 256: instruction counts and per-instruction "
                "offloading overhead.",
    workloads=(VECTOR_WIDTH_ABLATION_WORKLOAD,),
    build=_build_vector_width,
))
