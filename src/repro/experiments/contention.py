"""Contention-feedback ablation: the cost model with its eyes open.

The ROADMAP's open modelling item: the per-instruction greedy argmin
ignores global link contention, so on the ``cxl-pud`` roster the
LLM-Training row shifts decisions onto the CXL tier yet *regresses*
end-to-end.  ``PlatformConfig.contention_feedback`` closes the loop with
live movement-overrun feedback (:mod:`repro.core.contention`); this
experiment is the demonstration: Conduit with feedback off and on across
the three platform shapes, with the host-only CPU baseline alongside.

Feedback on/off is itself a platform axis -- the ``*-feedback`` variants
of :mod:`repro.experiments.platforms` -- so the whole ablation is one
cached cross-product sweep: (workloads x {Conduit, CPU} x 6 variants).
Each table row pairs a base roster with its feedback twin and reports
both times, the feedback speedup, and the fraction of decisions landing
on registry-grown backends in each mode, so the decision shift and its
end-to-end consequence sit side by side.

Registered as the ``contention`` experiment
(``python -m repro run contention``).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, List, Optional, Tuple

from repro.common import Resource
from repro.core.metrics import ExecutionResult
from repro.experiments.registry import (ExperimentContext, ExperimentDef,
                                        ExperimentResult, register_experiment,
                                        run_experiment)
from repro.experiments.report import format_table
from repro.experiments.runner import ExperimentConfig

#: Workloads whose operation mix exercises all resource families (the
#: LLM-Training row is the one the ROADMAP documents regressing).
CONTENTION_WORKLOADS = ("LLM Training", "LlaMA2 Inference", "XOR Filter")

#: The feedback-off/on pairs swept by default: each base roster next to
#: its ``contention_feedback=True`` twin.
CONTENTION_PLATFORMS = ("default", "default-feedback",
                        "multicore-isp", "multicore-isp-feedback",
                        "cxl-pud", "cxl-pud-feedback")

#: The suffix pairing a feedback variant with its base roster.
FEEDBACK_SUFFIX = "-feedback"

#: Policy whose decisions the feedback corrects, and the host baseline.
CONTENTION_POLICY = "Conduit"
HOST_BASELINE = "CPU"


def _grown_fraction(result: ExecutionResult) -> float:
    """Fraction of decisions on registry-grown (non-trio) backends."""
    return sum(value
               for resource, value in result.ssd_resource_fractions().items()
               if resource not in (Resource.ISP, Resource.PUD, Resource.IFP))


def _paired_rosters(platform_names: Tuple[str, ...]
                    ) -> List[Tuple[str, Optional[str]]]:
    """(base, feedback-twin-or-None) pairs among the swept variants.

    Keeps the run usable under a ``--platform`` override: a base swept
    without its twin still produces a row (with the feedback columns
    empty), and a twin swept alone is reported as its own base.
    """
    names = list(platform_names)
    pairs: List[Tuple[str, Optional[str]]] = []
    for name in names:
        if name.endswith(FEEDBACK_SUFFIX):
            if name[:-len(FEEDBACK_SUFFIX)] in names:
                continue  # reported as its base's twin
            pairs.append((name, None))
        else:
            twin = name + FEEDBACK_SUFFIX
            pairs.append((name, twin if twin in names else None))
    return pairs


def _sections(ctx: ExperimentContext) -> "OrderedDict[str, List[Dict]]":
    rows: List[Dict[str, object]] = []
    for workload in ctx.workloads:
        for base, twin in _paired_rosters(ctx.platform_names):
            off = ctx.grid[(workload.name, CONTENTION_POLICY, base)]
            host = ctx.grid.get((workload.name, HOST_BASELINE, base))
            row: Dict[str, object] = {
                "workload": workload.name,
                "roster": base,
                "greedy_ms": off.total_time_ns / 1e6,
                "grown_greedy": _grown_fraction(off),
            }
            if twin is not None:
                on = ctx.grid[(workload.name, CONTENTION_POLICY, twin)]
                row["feedback_ms"] = on.total_time_ns / 1e6
                row["feedback_speedup"] = (off.total_time_ns /
                                           on.total_time_ns)
                row["grown_feedback"] = _grown_fraction(on)
            if host is not None:
                row["host_ms"] = host.total_time_ns / 1e6
            rows.append(row)
    return OrderedDict(contention=rows)


def _headline(ctx: ExperimentContext) -> List[str]:
    """The ROADMAP regression, quantified: LLM Training on cxl-pud."""
    lines: List[str] = []
    key_off = ("LLM Training", CONTENTION_POLICY, "cxl-pud")
    key_on = ("LLM Training", CONTENTION_POLICY, "cxl-pud-feedback")
    key_host = ("LLM Training", HOST_BASELINE, "cxl-pud")
    if key_off in ctx.grid and key_on in ctx.grid:
        off = ctx.grid[key_off].total_time_ns
        on = ctx.grid[key_on].total_time_ns
        closed = "closed" if on <= off else "NOT closed"
        line = (f"LLM Training on cxl-pud: {off / 1e6:.2f} ms greedy -> "
                f"{on / 1e6:.2f} ms with contention feedback "
                f"({off / on:.2f}x, regression {closed}")
        if key_host in ctx.grid:
            host = ctx.grid[key_host].total_time_ns
            beats = "beats" if on <= host else "still behind"
            line += f"; host-only {host / 1e6:.2f} ms, {beats} host"
        lines.append(line + ")")
    return lines


CONTENTION_DEF = register_experiment(ExperimentDef(
    name="contention",
    title="Contention-feedback ablation -- greedy vs link-aware cost model",
    description="Conduit with the contention-aware cost model off and on "
                "across the default / multicore-isp / cxl-pud rosters, "
                "next to the host-only baseline (the ROADMAP's LLM "
                "Training CXL regression, closed).",
    policies=(CONTENTION_POLICY, HOST_BASELINE),
    workloads=CONTENTION_WORKLOADS,
    default_platforms=CONTENTION_PLATFORMS,
    build=_sections,
    headline=_headline,
    paper_refs=("Section 4.5 prices movement from uncontended tables; the "
                "feedback extension keeps Eqn. 2's argmin honest under "
                "link contention.",),
))


def run_contention(config: Optional[ExperimentConfig] = None, *,
                   parallel: bool = False, workers: Optional[int] = None,
                   cache_dir: Optional[str] = None) -> ExperimentResult:
    """Run the contention-feedback ablation; returns the full result."""
    return run_experiment(CONTENTION_DEF, config, parallel=parallel,
                          workers=workers, cache_dir=cache_dir)


def main(config: Optional[ExperimentConfig] = None) -> str:
    result = run_contention(config)
    text = format_table(result.sections["contention"], float_digits=3)
    print(CONTENTION_DEF.title)
    print(text)
    for line in result.headline:
        print(line)
    return text


if __name__ == "__main__":  # deprecation shim -> python -m repro run …
    from repro.__main__ import run_module_shim
    run_module_shim("contention")
