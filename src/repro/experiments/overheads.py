"""Section 4.5 -- storage and runtime overheads of Conduit.

Measures the metadata/translation-table storage footprint in SSD DRAM and
the per-instruction runtime overhead (feature collection plus instruction
transformation).  The paper reports a ~1.5 KiB translation table and an
average runtime overhead of 3.77 us (up to 33 us).
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.core.offload.transform import InstructionTransformer
from repro.core.platform import SSDPlatform
from repro.experiments.runner import (ExperimentConfig, ExperimentRunner,
                                      default_sweep_cache_dir)
from repro.workloads import AESWorkload


def run_overheads(config: Optional[ExperimentConfig] = None, *,
                  parallel: bool = True, workers: Optional[int] = None,
                  cache_dir: Optional[str] = None) -> Dict[str, float]:
    """Measure Conduit's storage and runtime overheads."""
    config = config or ExperimentConfig()
    platform = SSDPlatform(config.platform)
    transformer = InstructionTransformer(platform)
    runner = ExperimentRunner(config)
    workload = AESWorkload(scale=config.workload_scale)
    result = runner.sweep(("Conduit",), [workload], parallel=parallel,
                          workers=workers,
                          cache_dir=cache_dir)[(workload.name, "Conduit")]
    return {
        "translation_table_bytes": float(transformer.table_bytes()),
        "coherence_metadata_bytes_per_page": 3.0,
        "avg_runtime_overhead_us": result.offload_overhead_avg_ns / 1000.0,
        "max_runtime_overhead_us": result.offload_overhead_max_ns / 1000.0,
        "paper_avg_runtime_overhead_us": 3.77,
        "paper_max_runtime_overhead_us": 33.0,
        "paper_translation_table_bytes": 1.5 * 1024,
    }


def main(config: Optional[ExperimentConfig] = None) -> Dict[str, float]:
    overheads = run_overheads(config, cache_dir=default_sweep_cache_dir())
    for key, value in overheads.items():
        print(f"{key}: {value:.2f}")
    return overheads


if __name__ == "__main__":
    main()
