"""Section 4.5 -- storage and runtime overheads of Conduit.

Measures the metadata/translation-table storage footprint in SSD DRAM and
the per-instruction runtime overhead (feature collection plus instruction
transformation).  The paper reports a ~1.5 KiB translation table and an
average runtime overhead of 3.77 us (up to 33 us).

Registered as the ``overheads`` experiment (``python -m repro run
overheads``).  On grown platform variants the translation table covers the
grown roster, so the storage overhead is reported per variant.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Optional

from repro.core.offload.transform import InstructionTransformer
from repro.core.platform import SSDPlatform
from repro.experiments.registry import (ExperimentContext, ExperimentDef,
                                        per_platform, register_experiment,
                                        run_experiment)
from repro.experiments.runner import (ExperimentConfig,
                                      default_sweep_cache_dir)
from repro.workloads import AESWorkload


def _metrics_from_grid(grid, platform_config) -> Dict[str, float]:
    transformer = InstructionTransformer(SSDPlatform(platform_config))
    result = grid[(AESWorkload.name, "Conduit")]
    return {
        "translation_table_bytes": float(transformer.table_bytes()),
        "coherence_metadata_bytes_per_page": 3.0,
        "avg_runtime_overhead_us": result.offload_overhead_avg_ns / 1000.0,
        "max_runtime_overhead_us": result.offload_overhead_max_ns / 1000.0,
        "paper_avg_runtime_overhead_us": 3.77,
        "paper_max_runtime_overhead_us": 33.0,
        "paper_translation_table_bytes": 1.5 * 1024,
    }


def _sections(ctx: ExperimentContext, platform_name, grid):
    metrics = _metrics_from_grid(grid, ctx.platforms[platform_name])
    return OrderedDict(overheads=[
        {"metric": key, "value": value} for key, value in metrics.items()])


OVERHEADS_DEF = register_experiment(ExperimentDef(
    name="overheads",
    title="Section 4.5 -- storage and runtime overheads of Conduit",
    description="Translation-table footprint plus per-instruction runtime "
                "overhead, measured on the AES workload.",
    policies=("Conduit",),
    workloads=(AESWorkload.name,),
    build=per_platform(_sections),
    paper_refs=("~1.5 KiB translation table",
                "runtime overhead avg 3.77 us, max 33 us"),
), overwrite=True)


def run_overheads(config: Optional[ExperimentConfig] = None, *,
                  parallel: bool = True, workers: Optional[int] = None,
                  cache_dir: Optional[str] = None) -> Dict[str, float]:
    """Measure Conduit's storage and runtime overheads."""
    config = config or ExperimentConfig()
    result = run_experiment(OVERHEADS_DEF, config, parallel=parallel,
                            workers=workers, cache_dir=cache_dir)
    return _metrics_from_grid(result.platform_grid("default"),
                              config.platform)


def main(config: Optional[ExperimentConfig] = None) -> Dict[str, float]:
    overheads = run_overheads(config, cache_dir=default_sweep_cache_dir())
    for key, value in overheads.items():
        print(f"{key}: {value:.2f}")
    return overheads


if __name__ == "__main__":  # deprecation shim -> python -m repro run overheads
    from repro.__main__ import run_module_shim
    run_module_shim("overheads")
