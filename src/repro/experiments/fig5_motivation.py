"""Fig. 5 -- effectiveness of prior offloading approaches.

Reproduces the motivation study of Section 3.2: speedups of GPU, ISP,
PuD-SSD, Flash-Cosmos, Ares-Flash, BW-Offloading, DM-Offloading and an Ideal
policy over the host CPU across the six workloads, plus the geometric mean.
The paper's headline observations:

* DM-Offloading is the best prior offloading technique (~2.3x over CPU);
* it still trails the Ideal policy by ~2.5x on average;
* BW-Offloading underperforms DM-Offloading (~11%);
* the GPU is comparable to DM-Offloading on the data-parallel kernels.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.core.metrics import ExecutionResult
from repro.experiments.report import format_table, nested_to_rows
from repro.experiments.runner import (FIG5_POLICIES, ExperimentConfig,
                                      ExperimentRunner, speedup_table)


def run_motivation(config: Optional[ExperimentConfig] = None
                   ) -> Dict[str, Dict[str, float]]:
    """Run the Fig. 5 sweep; returns {workload: {policy: speedup}}."""
    config = config or ExperimentConfig()
    runner = ExperimentRunner(config)
    results = runner.sweep(FIG5_POLICIES)
    policies = [policy for policy in FIG5_POLICIES if policy != "CPU"]
    return speedup_table(results, policies)


def run_motivation_with_results(config: Optional[ExperimentConfig] = None
                                ) -> Tuple[Dict[str, Dict[str, float]],
                                           Dict[Tuple[str, str],
                                                ExecutionResult]]:
    """Like :func:`run_motivation` but also returns the raw results."""
    config = config or ExperimentConfig()
    runner = ExperimentRunner(config)
    results = runner.sweep(FIG5_POLICIES)
    policies = [policy for policy in FIG5_POLICIES if policy != "CPU"]
    return speedup_table(results, policies), results


def main(config: Optional[ExperimentConfig] = None) -> str:
    table = run_motivation(config)
    text = format_table(nested_to_rows(table))
    print("Fig. 5 -- speedup over CPU (higher is better)")
    print(text)
    return text


if __name__ == "__main__":
    main()
