"""Fig. 5 -- effectiveness of prior offloading approaches.

Reproduces the motivation study of Section 3.2: speedups of GPU, ISP,
PuD-SSD, Flash-Cosmos, Ares-Flash, BW-Offloading, DM-Offloading and an Ideal
policy over the host CPU across the six workloads, plus the geometric mean.
The paper's headline observations:

* DM-Offloading is the best prior offloading technique (~2.3x over CPU);
* it still trails the Ideal policy by ~2.5x on average;
* BW-Offloading underperforms DM-Offloading (~11%);
* the GPU is comparable to DM-Offloading on the data-parallel kernels.

Registered as the ``fig5`` experiment (``python -m repro run fig5``).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Optional, Tuple

from repro.core.metrics import ExecutionResult
from repro.experiments.registry import (ExperimentDef, per_platform,
                                        register_experiment, run_experiment)
from repro.experiments.report import format_table, nested_to_rows
from repro.experiments.runner import (FIG5_POLICIES, ExperimentConfig,
                                      default_sweep_cache_dir, speedup_table)

#: Policies normalized against the CPU baseline in the Fig. 5 table.
_TABLE_POLICIES = tuple(policy for policy in FIG5_POLICIES
                        if policy != "CPU")


def _sections(ctx, platform_name, grid):
    return OrderedDict(
        fig5=nested_to_rows(speedup_table(grid, _TABLE_POLICIES)))


FIG5_DEF = register_experiment(ExperimentDef(
    name="fig5",
    title="Fig. 5 -- speedup of prior offloading approaches over CPU",
    description="Motivation study: every prior technique plus the Ideal "
                "policy, normalized to the host CPU.",
    policies=FIG5_POLICIES,
    build=per_platform(_sections),
    paper_refs=("DM-Offloading ~2.3x CPU, ~2.5x below Ideal",
                "BW-Offloading ~11% below DM-Offloading"),
), overwrite=True)


def run_motivation_with_results(config: Optional[ExperimentConfig] = None, *,
                                parallel: bool = True,
                                workers: Optional[int] = None,
                                cache_dir: Optional[str] = None
                                ) -> Tuple[Dict[str, Dict[str, float]],
                                           Dict[Tuple[str, str],
                                                ExecutionResult]]:
    """Run the Fig. 5 sweep; returns the speedup table and raw results."""
    result = run_experiment(FIG5_DEF, config, parallel=parallel,
                            workers=workers, cache_dir=cache_dir)
    grid = result.platform_grid("default")
    return speedup_table(grid, _TABLE_POLICIES), grid


def run_motivation(config: Optional[ExperimentConfig] = None, *,
                   parallel: bool = True, workers: Optional[int] = None,
                   cache_dir: Optional[str] = None
                   ) -> Dict[str, Dict[str, float]]:
    """Run the Fig. 5 sweep; returns {workload: {policy: speedup}}."""
    table, _ = run_motivation_with_results(config, parallel=parallel,
                                           workers=workers,
                                           cache_dir=cache_dir)
    return table


def main(config: Optional[ExperimentConfig] = None) -> str:
    table = run_motivation(config, cache_dir=default_sweep_cache_dir())
    text = format_table(nested_to_rows(table))
    print("Fig. 5 -- speedup over CPU (higher is better)")
    print(text)
    return text


if __name__ == "__main__":  # deprecation shim -> python -m repro run fig5
    from repro.__main__ import run_module_shim
    run_module_shim("fig5")
