"""Fig. 5 -- effectiveness of prior offloading approaches.

Reproduces the motivation study of Section 3.2: speedups of GPU, ISP,
PuD-SSD, Flash-Cosmos, Ares-Flash, BW-Offloading, DM-Offloading and an Ideal
policy over the host CPU across the six workloads, plus the geometric mean.
The paper's headline observations:

* DM-Offloading is the best prior offloading technique (~2.3x over CPU);
* it still trails the Ideal policy by ~2.5x on average;
* BW-Offloading underperforms DM-Offloading (~11%);
* the GPU is comparable to DM-Offloading on the data-parallel kernels.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.core.metrics import ExecutionResult
from repro.experiments.report import format_table, nested_to_rows
from repro.experiments.runner import (FIG5_POLICIES, ExperimentConfig,
                                      ExperimentRunner,
                                      default_sweep_cache_dir, speedup_table)


def run_motivation_with_results(config: Optional[ExperimentConfig] = None, *,
                                parallel: bool = True,
                                workers: Optional[int] = None,
                                cache_dir: Optional[str] = None
                                ) -> Tuple[Dict[str, Dict[str, float]],
                                           Dict[Tuple[str, str],
                                                ExecutionResult]]:
    """Run the Fig. 5 sweep; returns the speedup table and raw results."""
    config = config or ExperimentConfig()
    runner = ExperimentRunner(config)
    results = runner.sweep(FIG5_POLICIES, parallel=parallel, workers=workers,
                           cache_dir=cache_dir)
    policies = [policy for policy in FIG5_POLICIES if policy != "CPU"]
    return speedup_table(results, policies), results


def run_motivation(config: Optional[ExperimentConfig] = None, *,
                   parallel: bool = True, workers: Optional[int] = None,
                   cache_dir: Optional[str] = None
                   ) -> Dict[str, Dict[str, float]]:
    """Run the Fig. 5 sweep; returns {workload: {policy: speedup}}."""
    table, _ = run_motivation_with_results(config, parallel=parallel,
                                           workers=workers,
                                           cache_dir=cache_dir)
    return table


def main(config: Optional[ExperimentConfig] = None) -> str:
    table = run_motivation(config, cache_dir=default_sweep_cache_dir())
    text = format_table(nested_to_rows(table))
    print("Fig. 5 -- speedup over CPU (higher is better)")
    print(text)
    return text


if __name__ == "__main__":
    main()
