"""Variant comparison: diff two platform variants' result grids.

Experiments sweep a (workload x policy x platform-variant) cross-product;
this module answers the follow-up question every variant axis raises:
*what changed* between two variants, pair by pair.  :func:`compare_grids`
diffs two (workload, policy)-keyed grid slices into flat rows (time and
energy ratios plus the maintenance counters the lifetime subsystem
attaches), and :func:`run_compare` runs one cached sweep of a registered
experiment over exactly the two variants and returns the versioned,
JSON-stable comparison document that backs the ``python -m repro
compare`` subcommand.

The lifetime experiment uses the same machinery for its fresh-vs-aged
headline, so the CLI and the report can never disagree about what a
comparison means.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Tuple

from repro.core.metrics import ExecutionResult, geometric_mean
from repro.experiments.registry import ExperimentDef, experiment_def
from repro.experiments.runner import ExperimentConfig, ExperimentRunner
from repro.experiments.platforms import platform_variant
from repro.workloads import workload_by_name

#: Version of the ``repro compare --json`` document layout.  Bump whenever
#: a top-level or per-row key is added, removed or changes meaning.
#: Version 1: the initial layout (schema/experiment/base/other/rows/
#: summary, rows keyed workload/policy/base_ms/other_ms/time_ratio/
#: base_energy_mj/other_energy_mj/energy_ratio/base_gc_pages/
#: other_gc_pages).
COMPARE_SCHEMA_VERSION = 1


def _ratio(base: float, other: float) -> float:
    """``other / base`` with defined edges: 0/0 is 1.0 (nothing changed,
    not an infinite regression) and x/0 for x > 0 is ``inf`` (a genuinely
    unnormalizable blow-up, excluded from the summary geomeans)."""
    if base > 0:
        return other / base
    if other == 0:
        return 1.0
    return float("inf")


def _gc_pages(result: ExecutionResult) -> int:
    """Pages relocated by maintenance during the run (0 pre-lifetime)."""
    if result.maintenance is None:
        return 0
    return (result.maintenance.gc_relocated_pages +
            result.maintenance.wl_migrated_pages)


def compare_grids(base: Dict[Tuple[str, str], ExecutionResult],
                  other: Dict[Tuple[str, str], ExecutionResult]
                  ) -> List[Dict[str, object]]:
    """Diff two (workload, policy)-keyed grids into flat comparison rows.

    Only pairs present in *both* grids produce a row (a ``--platform``
    override can legitimately sweep different subsets); ``time_ratio`` and
    ``energy_ratio`` are other/base, so values above 1 mean the ``other``
    variant is slower / hungrier.
    """
    rows: List[Dict[str, object]] = []
    for key in sorted(base):
        if key not in other:
            continue
        workload, policy = key
        left, right = base[key], other[key]
        row: Dict[str, object] = {
            "workload": workload,
            "policy": policy,
            "base_ms": left.total_time_ns / 1e6,
            "other_ms": right.total_time_ns / 1e6,
            "time_ratio": _ratio(left.total_time_ns, right.total_time_ns),
            "base_energy_mj": left.total_energy_nj / 1e6,
            "other_energy_mj": right.total_energy_nj / 1e6,
            "energy_ratio": _ratio(left.total_energy_nj,
                                   right.total_energy_nj),
            "base_gc_pages": _gc_pages(left),
            "other_gc_pages": _gc_pages(right),
        }
        rows.append(row)
    return rows


def _summary(rows: List[Dict[str, object]]) -> Dict[str, object]:
    """Aggregate comparison rows into the document's summary block."""
    if not rows:
        return {"pairs": 0}
    # Infinite ratios (x/0 blow-ups) are reported per-row but excluded
    # from the geomeans: log(inf) would poison the aggregate into inf,
    # hiding every finite pair's contribution.
    ratios = [row["time_ratio"] for row in rows
              if math.isfinite(row["time_ratio"])]
    energy = [row["energy_ratio"] for row in rows
              if math.isfinite(row["energy_ratio"])]
    worst = max(rows, key=lambda row: row["time_ratio"])
    return {
        "pairs": len(rows),
        "geomean_time_ratio": geometric_mean(ratios),
        "geomean_energy_ratio": geometric_mean(energy),
        "max_time_ratio": worst["time_ratio"],
        "max_time_ratio_pair": [worst["workload"], worst["policy"]],
    }


def run_compare(experiment: str, base_name: str, other_name: str,
                config: Optional[ExperimentConfig] = None, *,
                parallel: bool = True, workers: Optional[int] = None,
                cache_dir: Optional[str] = None) -> Dict[str, object]:
    """Sweep one experiment's axes over two variants and diff the grids.

    Runs the experiment's (workload x policy) axes over exactly
    ``base_name`` and ``other_name`` as one cached cross-product sweep
    (shared with every other experiment's cache), then returns the
    versioned comparison document.
    """
    definition: ExperimentDef = experiment_def(experiment)
    if definition.composite or not definition.policies:
        raise ValueError(
            f"experiment {definition.name!r} has no sweep of its own; "
            "compare needs a policy-sweeping experiment")
    if base_name == other_name:
        raise ValueError(
            f"comparing variant {base_name!r} against itself is a no-op")
    config = config or ExperimentConfig()
    resolved = [(name, platform_variant(name, base=config.platform))
                for name in (base_name, other_name)]
    workloads = (config.workloads() if definition.workloads is None else
                 [workload_by_name(name, scale=config.workload_scale)
                  for name in definition.workloads])
    runner = ExperimentRunner(config)
    grid = runner.sweep(definition.policies, workloads, platforms=resolved,
                        parallel=parallel, workers=workers,
                        cache_dir=cache_dir)
    base_slice = {(workload, policy): result
                  for (workload, policy, name), result in grid.items()
                  if name == base_name}
    other_slice = {(workload, policy): result
                   for (workload, policy, name), result in grid.items()
                   if name == other_name}
    rows = compare_grids(base_slice, other_slice)
    return {
        "schema": COMPARE_SCHEMA_VERSION,
        "experiment": definition.name,
        "base": base_name,
        "other": other_name,
        "rows": rows,
        "summary": _summary(rows),
        "sweep": runner.last_sweep_stats.summary(),
    }
