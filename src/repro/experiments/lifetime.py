"""Device-lifetime experiment: does the offload benefit survive drive age?

The paper evaluates a fresh drive, but NDP offloading lives or dies on
the shared flash channels -- exactly the resource background GC and
wear-leveling consume as a drive ages.  This experiment sweeps the same
(workload x policy) axes over four drive states:

* ``default-feedback`` -- the fresh-drive baseline (contention-aware cost
  model on, background engine off);
* ``default-midlife`` -- a mid-life drive: moderate fragmentation, the
  background GC/WL engine turning maintenance into live channel traffic;
* ``default-aged`` -- a near-end-of-life drive under persistent GC
  pressure (free blocks below the GC threshold for the whole run);
* ``default-aged-adaptive`` -- the same near-EOL wear state with the
  adaptive-FTL ablation on (cost-benefit victim selection + hot/cold
  write separation).

Per variant it reports Fig. 7-style speedup and energy tables, plus a
GC-pressure table (relocations, erases, stall time, write amplification,
wear variance) built from the ``maintenance`` stats attached to every
result.  The headline is the paper-extending claim: Conduit's speedup
over CPU on a fresh drive next to the same ratio at near-EOL, via the
same :func:`~repro.experiments.compare.compare_grids` machinery as the
``python -m repro compare`` CLI.

Registered as the ``lifetime`` experiment
(``python -m repro run lifetime``).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, List, Optional, Tuple

from repro.core.metrics import ExecutionResult, geometric_mean
from repro.experiments.compare import compare_grids
from repro.experiments.registry import (ExperimentContext, ExperimentDef,
                                        ExperimentResult, register_experiment,
                                        run_experiment)
from repro.experiments.report import format_table, nested_to_rows
from repro.experiments.runner import (ExperimentConfig, energy_table,
                                      speedup_table)

#: Workloads whose movement mix keeps the flash channels busy (the same
#: trio the contention ablation uses, so the two experiments' numbers are
#: directly comparable).
LIFETIME_WORKLOADS = ("LLM Training", "LlaMA2 Inference", "XOR Filter")

#: Host baseline, two in-SSD single-resource policies, and Conduit.
LIFETIME_POLICIES = ("CPU", "ISP", "PuD-SSD", "Conduit")

#: The drive-age axis, fresh first (the comparison base).
LIFETIME_PLATFORMS = ("default-feedback", "default-midlife",
                      "default-aged", "default-aged-adaptive")

#: The fresh baseline and the headline's aged counterpart.
FRESH_PLATFORM = "default-feedback"
AGED_PLATFORM = "default-aged"


def _pressure_rows(name: str,
                   grid: Dict[Tuple[str, str], ExecutionResult]
                   ) -> List[Dict[str, object]]:
    """One GC-pressure row per (workload, policy) run of a variant."""
    rows: List[Dict[str, object]] = []
    for (workload, policy) in sorted(grid):
        stats = grid[(workload, policy)].maintenance
        if stats is None:
            continue
        rows.append({
            "workload": workload,
            "policy": policy,
            "gc_pages": stats.gc_relocated_pages,
            "gc_erases": stats.gc_erased_blocks,
            "wl_pages": stats.wl_migrated_pages,
            "stall_ms": stats.foreground_stall_ns / 1e6,
            "busy_ms": stats.background_busy_ns / 1e6,
            "write_amp": stats.write_amplification,
            "wear_var": stats.erase_count_variance,
            "free_frac": stats.free_block_fraction,
        })
    return rows


def _sections(ctx: ExperimentContext) -> "OrderedDict[str, List[Dict]]":
    sections: "OrderedDict[str, List[Dict[str, object]]]" = OrderedDict()
    policies = [p for p in LIFETIME_POLICIES if p != "CPU"]
    for name in ctx.platform_names:
        grid = ctx.platform_grid(name)
        sections[f"{name}/speedup"] = nested_to_rows(
            speedup_table(grid, policies))
        energy = energy_table(grid, LIFETIME_POLICIES)
        sections[f"{name}/energy"] = [
            {"workload": workload, "policy": policy, **parts}
            for workload, row in energy.items()
            for policy, parts in row.items()]
        sections[f"{name}/gc-pressure"] = _pressure_rows(name, grid)
    if (FRESH_PLATFORM in ctx.platform_names
            and AGED_PLATFORM in ctx.platform_names):
        sections["fresh-vs-aged"] = compare_grids(
            ctx.platform_grid(FRESH_PLATFORM),
            ctx.platform_grid(AGED_PLATFORM))
    return sections


def _conduit_benefit(grid: Dict[Tuple[str, str], ExecutionResult]
                     ) -> float:
    """Geomean Conduit-over-CPU speedup across the swept workloads."""
    ratios = [grid[(workload, "CPU")].total_time_ns /
              grid[(workload, "Conduit")].total_time_ns
              for workload in {w for w, _ in grid}
              if (workload, "CPU") in grid and (workload, "Conduit") in grid]
    return geometric_mean(ratios) if ratios else 0.0


def _headline(ctx: ExperimentContext) -> List[str]:
    lines: List[str] = []
    benefits = {name: _conduit_benefit(ctx.platform_grid(name))
                for name in ctx.platform_names}
    fresh = benefits.get(FRESH_PLATFORM)
    aged = benefits.get(AGED_PLATFORM)
    if fresh and aged:
        survives = "survives" if aged > 1.0 else "does NOT survive"
        lines.append(
            f"Offload benefit vs drive age: Conduit {fresh:.2f}x CPU "
            f"fresh -> {aged:.2f}x at near-EOL "
            f"({100 * aged / fresh:.0f}% retained; benefit {survives})")
    for name in ctx.platform_names:
        grid = ctx.platform_grid(name)
        total_gc = sum(result.maintenance.gc_relocated_pages
                       for result in grid.values()
                       if result.maintenance is not None)
        total_erase = sum(result.maintenance.gc_erased_blocks +
                          result.maintenance.wl_erased_blocks
                          for result in grid.values()
                          if result.maintenance is not None)
        samples = max((result.maintenance.contention_samples
                       for result in grid.values()
                       if result.maintenance is not None), default=0)
        lines.append(
            f"[{name}] Conduit {benefits[name]:.2f}x CPU; background GC "
            f"relocated {total_gc} pages, erased {total_erase} blocks "
            f"(contention monitor saw {samples} movements)")
    return lines


LIFETIME_DEF = register_experiment(ExperimentDef(
    name="lifetime",
    title="Device lifetime -- offload benefit vs drive age under live "
          "GC/wear traffic",
    description="Fig. 7-style speedup/energy plus GC-pressure tables "
                "across fresh / mid-life / near-EOL drive states, with "
                "background GC and wear-leveling as real traffic on the "
                "shared flash channels (and the adaptive-FTL ablation at "
                "near-EOL).",
    policies=LIFETIME_POLICIES,
    workloads=LIFETIME_WORKLOADS,
    default_platforms=LIFETIME_PLATFORMS,
    build=_sections,
    headline=_headline,
    paper_refs=("Section 4.4: GC and wear-leveling run in both regular "
                "I/O and computation mode; the lifetime axis makes their "
                "channel traffic a live contention source instead of a "
                "fresh-drive assumption.",),
))


def run_lifetime(config: Optional[ExperimentConfig] = None, *,
                 parallel: bool = True, workers: Optional[int] = None,
                 cache_dir: Optional[str] = None) -> ExperimentResult:
    """Run the device-lifetime experiment; returns the full result."""
    return run_experiment(LIFETIME_DEF, config, parallel=parallel,
                          workers=workers, cache_dir=cache_dir)


def main(config: Optional[ExperimentConfig] = None) -> str:
    result = run_lifetime(config)
    texts = []
    for name, rows in result.sections.items():
        text = format_table(rows, float_digits=3)
        print(f"== {name} ==")
        print(text)
        texts.append(text)
    for line in result.headline:
        print(line)
    return "\n".join(texts)


if __name__ == "__main__":  # deprecation shim -> python -m repro run …
    from repro.__main__ import run_module_shim
    run_module_shim("lifetime")
