"""Execution queues for SSD computation resources.

The paper adds a dedicated execution queue to each SSD computation resource
(ISP, PuD-SSD, IFP) so that (1) the offloader can track each resource's
utilization through its queueing delay and (2) multiple resources can
execute independent instructions concurrently (Section 5.1, "NDP
Extensions").  Conduit's cost function consumes the *resource queueing
delay*: the cumulative estimated execution latency of the instructions
currently enqueued (Section 4.5, footnote 5).

:class:`ExecutionQueue` implements exactly that: a running counter of
pending work plus a reservation-based service model backed by
:class:`repro.ssd.events.MultiServer` so die-/bank-/core-level parallelism
is captured.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional

from repro.common import ResourceLike
from repro.ssd.events import MultiServer, Reservation


@dataclass(slots=True)
class QueueEntry:
    """Bookkeeping for one instruction enqueued on a resource."""

    instruction_id: int
    enqueue_time: float
    estimated_latency: float
    start_time: float = 0.0
    completion_time: float = 0.0


class ExecutionQueue:
    """Execution queue of one SSD computation resource.

    Parameters
    ----------
    resource:
        Which computation resource this queue feeds.
    parallelism:
        Number of sub-units that can execute enqueued instructions
        concurrently (e.g. flash dies for IFP, DRAM banks for PuD-SSD,
        compute cores for ISP).
    """

    def __init__(self, resource: ResourceLike, parallelism: int = 1) -> None:
        self.resource = resource
        self.servers = MultiServer(f"{resource.value}-queue", parallelism)
        #: Running counter of estimated execution latency of enqueued but
        #: not yet completed instructions (the paper's footnote-5 counter).
        self._pending_latency = 0.0
        self._parallelism = self.servers.servers
        self._pending: Dict[int, QueueEntry] = {}
        self.completed: List[QueueEntry] = []

    @property
    def parallelism(self) -> int:
        return self.servers.servers

    @property
    def depth(self) -> int:
        """Number of instructions currently enqueued and not completed."""
        return len(self._pending)

    def queueing_delay(self, now: float) -> float:
        """Estimated delay a new instruction would wait before starting.

        This is the paper's running-counter estimate (Section 4.5, fn. 5):
        the cumulative estimated execution latency of the instructions
        currently enqueued, normalised by the queue's parallelism (a
        resource with many parallel sub-units drains its backlog faster).
        Stall time those instructions spend waiting for their own operands
        is *not* included -- the offloader cannot observe it cheaply.
        """
        return self._pending_latency / self._parallelism

    def pending_latency(self) -> float:
        """The raw running counter of enqueued estimated latencies."""
        return self._pending_latency

    def enqueue(self, instruction_id: int, now: float,
                estimated_latency: float) -> QueueEntry:
        """Record dispatch of an instruction; increments the counter."""
        entry = QueueEntry(instruction_id=instruction_id, enqueue_time=now,
                           estimated_latency=estimated_latency)
        self._pending[instruction_id] = entry
        self._pending_latency += estimated_latency
        return entry

    def reserve(self, instruction_id: int, ready_time: float,
                duration: float) -> Reservation:
        """Reserve an execution slot for an enqueued instruction."""
        entry = self._pending[instruction_id]
        reservation = self.servers.reserve(ready_time, duration)
        entry.start_time = reservation.start
        entry.completion_time = reservation.end
        return reservation

    def complete(self, instruction_id: int) -> QueueEntry:
        """Mark an instruction complete; decrements the counter."""
        entry = self._pending.pop(instruction_id)
        self._pending_latency -= entry.estimated_latency
        if self._pending_latency < 1e-9:
            self._pending_latency = 0.0
        self.completed.append(entry)
        return entry

    def utilization(self, elapsed: float) -> float:
        return self.servers.utilization(elapsed)


class ResourceQueueSet:
    """A read-mostly view over the execution queues of many backends.

    The queues themselves are owned by the registered compute backends
    (each :class:`~repro.core.backends.ComputeBackend` carries its own
    queue); this set is the platform-level aggregate the feature collector
    and utilization-based policies consume.  Construct it from any
    ``identity -> queue`` mapping (the registry's
    :meth:`~repro.core.backends.BackendRegistry.queues` in production,
    hand-built dicts in tests).
    """

    def __init__(self,
                 queues: Mapping[ResourceLike, ExecutionQueue]) -> None:
        self.queues: Dict[ResourceLike, ExecutionQueue] = dict(queues)

    @classmethod
    def of(cls, *queues: ExecutionQueue) -> "ResourceQueueSet":
        """Build a set from queues keyed by their own resource identity."""
        return cls({queue.resource: queue for queue in queues})

    def __getitem__(self, resource: ResourceLike) -> ExecutionQueue:
        return self.queues[resource]

    def __contains__(self, resource: ResourceLike) -> bool:
        return resource in self.queues

    def queueing_delays(self, now: float) -> Dict[ResourceLike, float]:
        return {resource: queue.queueing_delay(now)
                for resource, queue in self.queues.items()}

    def total_completed(self) -> int:
        return sum(len(queue.completed) for queue in self.queues.values())

    def busiest(self, now: float) -> Optional[ResourceLike]:
        delays = self.queueing_delays(now)
        if not delays:
            return None
        return max(delays, key=delays.get)
