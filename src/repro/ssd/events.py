"""Event-driven simulation kernel.

The SSD simulator in this repository is event driven, like the MQSim-derived
simulator used by the paper: every latency-bearing activity (a flash read, a
DMA transfer over a flash channel, a bulk-bitwise operation in DRAM, the
completion of an offloaded vector instruction) is represented as an event on
a global virtual clock measured in nanoseconds.

Two building blocks live here:

* :class:`EventScheduler` -- a priority-queue scheduler with a monotonically
  advancing virtual clock.
* :class:`Server` / :class:`MultiServer` / :class:`SharedBus` -- reservation
  based resource models used for computation resources (controller cores,
  DRAM banks, flash dies) and shared interconnects (flash channels, the SSD
  DRAM bus, PCIe).  They answer the question "if a job of duration *d*
  arrives at time *t*, when does it start and finish?", which is exactly the
  information the runtime offloader's cost function needs (queueing delay)
  and what the event engine needs to schedule completion events.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from repro.common import SimulationError

EventCallback = Callable[["Event"], None]

#: Batch sizes below this run the plain scalar recurrence; numpy's
#: fixed per-call overhead only pays off beyond a handful of elements.
_VECTOR_MIN_BATCH = 16


def chain_finish_times(arrivals: np.ndarray, durations,
                       free: float) -> Tuple[np.ndarray, float]:
    """Finish times of an FCFS reservation chain, vectorized bit-exactly.

    Computes ``f[i] = max(arrivals[i], f[i-1]) + durations[i]`` with
    ``f[-1] = free`` -- the exact recurrence :meth:`Server.reserve` applies
    per job -- and returns ``(finish_times, new_free)``.

    Bit-exactness with the scalar loop is non-negotiable (the vectorized
    movement engine is validated by equality against the object engine), so
    no closed form that re-associates floating-point additions is allowed
    (``free + i * d`` differs from ``i`` repeated additions in ULPs).  Three
    regimes cover the practical inputs:

    * **saturated** (no bubbles: every arrival lands while the resource is
      still busy): the chain is pure repeated addition, which
      ``np.add.accumulate`` reproduces exactly because it accumulates
      sequentially, element by element;
    * **idle** (a bubble at every element: each arrival lands at or after
      the previous finish): ``f[i] = arrivals[i] + durations[i]``
      elementwise, the same single addition the scalar loop performs;
    * **mixed**: fall back to the scalar recurrence.

    Each vectorized candidate is only returned after a self-consistency
    check proves it equals the scalar chain, so the result is bit-identical
    to per-job :meth:`Server.reserve` calls in every case.
    """
    n = len(arrivals)
    if n == 0:
        return np.empty(0, dtype=np.float64), free
    scalar_duration = not isinstance(durations, np.ndarray)
    first_duration = durations if scalar_duration else durations[0]
    a0 = arrivals[0]
    head = (a0 if a0 > free else free) + first_duration
    if n >= _VECTOR_MIN_BATCH:
        # Saturated candidate: repeated addition via sequential accumulate.
        buf = np.empty(n, dtype=np.float64)
        buf[0] = head
        if scalar_duration:
            buf[1:] = durations
        else:
            buf[1:] = durations[1:]
        cand = np.add.accumulate(buf)
        if np.all(arrivals[1:] <= cand[:-1]):
            return cand, float(cand[-1])
        # Idle candidate: every job starts at its own arrival.
        alt = arrivals + durations
        if a0 >= free and np.all(arrivals[1:] >= alt[:-1]):
            return alt, float(alt[-1])
    ends = np.empty(n, dtype=np.float64)
    prev = free
    if scalar_duration:
        for i in range(n):
            a = arrivals[i]
            prev = (a if a > prev else prev) + durations
            ends[i] = prev
    else:
        for i in range(n):
            a = arrivals[i]
            prev = (a if a > prev else prev) + durations[i]
            ends[i] = prev
    return ends, float(prev)


def sequential_sum(start: float, deltas) -> float:
    """``start + d0 + d1 + ...`` accumulated strictly left to right.

    Matches the running-counter updates of the scalar engine (e.g.
    ``busy_time += duration`` per job): ``np.add.accumulate`` adds one
    element at a time, unlike ``np.sum``'s pairwise reduction, so the
    result is bit-identical to the Python loop.
    """
    n = len(deltas)
    if n == 0:
        return start
    if n < _VECTOR_MIN_BATCH:
        for delta in deltas:
            start += delta
        return start
    buf = np.empty(n, dtype=np.float64)
    buf[0] = start + deltas[0]
    buf[1:] = deltas[1:]
    return float(np.add.accumulate(buf)[-1])


def repeat_sum(start: float, delta: float, count: int) -> float:
    """``start`` plus ``count`` repeated additions of ``delta``, exactly."""
    if count <= 0:
        return start
    if count < _VECTOR_MIN_BATCH:
        for _ in range(count):
            start += delta
        return start
    buf = np.full(count, delta, dtype=np.float64)
    buf[0] = start + delta
    return float(np.add.accumulate(buf)[-1])


@dataclass(order=True)
class Event:
    """A single scheduled event.

    Events compare by ``(time, priority, seq)`` so that ties at the same
    timestamp are broken first by explicit priority and then by insertion
    order, which keeps the simulation deterministic.
    """

    time: float
    priority: int
    seq: int
    callback: EventCallback = field(compare=False)
    label: str = field(compare=False, default="")
    payload: object = field(compare=False, default=None)
    cancelled: bool = field(compare=False, default=False)
    #: Scheduler owning this event; lets ``cancel`` keep the scheduler's
    #: live-event counter exact without scanning the heap.
    scheduler: Optional["EventScheduler"] = field(compare=False, default=None,
                                                 repr=False)
    executed: bool = field(compare=False, default=False)

    def cancel(self) -> None:
        """Mark the event as cancelled; it will be skipped when popped."""
        if self.cancelled or self.executed:
            return
        self.cancelled = True
        if self.scheduler is not None:
            self.scheduler._on_cancel()


class EventScheduler:
    """Priority-queue based discrete-event scheduler."""

    def __init__(self) -> None:
        self._queue: List[Event] = []
        self._seq = itertools.count()
        self._now = 0.0
        self._processed = 0
        self._live = 0

    @property
    def now(self) -> float:
        """Current virtual time in nanoseconds."""
        return self._now

    @property
    def pending(self) -> int:
        """Number of not-yet-processed (and not cancelled) events.

        Maintained as a live counter (incremented on ``schedule``,
        decremented on execution and cancellation) so the query is O(1)
        instead of a full heap scan.
        """
        return self._live

    def _on_cancel(self) -> None:
        self._live -= 1

    @property
    def processed(self) -> int:
        """Number of events that have been executed so far."""
        return self._processed

    def schedule(self, time: float, callback: EventCallback, *,
                 label: str = "", payload: object = None,
                 priority: int = 0) -> Event:
        """Schedule ``callback`` to run at absolute virtual ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule event '{label}' at {time} ns; "
                f"clock is already at {self._now} ns"
            )
        event = Event(time=time, priority=priority, seq=next(self._seq),
                      callback=callback, label=label, payload=payload,
                      scheduler=self)
        heapq.heappush(self._queue, event)
        self._live += 1
        return event

    def schedule_after(self, delay: float, callback: EventCallback, *,
                       label: str = "", payload: object = None,
                       priority: int = 0) -> Event:
        """Schedule ``callback`` to run ``delay`` nanoseconds from now."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay} for '{label}'")
        return self.schedule(self._now + delay, callback, label=label,
                             payload=payload, priority=priority)

    def step(self) -> Optional[Event]:
        """Pop and execute the next event; return it (or None if empty)."""
        while self._queue:
            event = heapq.heappop(self._queue)
            if event.cancelled:
                continue
            self._now = event.time
            self._processed += 1
            self._live -= 1
            event.executed = True
            event.callback(event)
            return event
        return None

    def run(self, until: Optional[float] = None,
            max_events: Optional[int] = None) -> float:
        """Run events until the queue drains, ``until`` or ``max_events``.

        Returns the final virtual time.
        """
        executed = 0
        while self._queue:
            if max_events is not None and executed >= max_events:
                break
            next_event = self._peek()
            if next_event is None:
                break
            if until is not None and next_event.time > until:
                # Clamp, never rewind: an ``until`` in the past must not
                # move the monotonic clock backwards.
                if until > self._now:
                    self._now = until
                break
            self.step()
            executed += 1
        return self._now

    def _peek(self) -> Optional[Event]:
        # Opportunistically prune cancelled events so they do not pile up
        # at the front of the heap (their live count was already released
        # by ``Event.cancel``).
        while self._queue and self._queue[0].cancelled:
            heapq.heappop(self._queue)
        return self._queue[0] if self._queue else None


@dataclass(slots=True)
class Reservation:
    """The outcome of reserving a resource: when work starts and ends."""

    start: float
    end: float
    server_index: int = 0

    # ``wait`` is filled in by the resources below; dataclass fields keep it
    # explicit rather than recomputing from an arrival time we do not store.
    _wait: float = 0.0

    @property
    def wait(self) -> float:
        """Queueing delay experienced before the work started."""
        return self._wait


class Server:
    """A single-server FCFS resource (e.g. one embedded controller core).

    The server tracks the time at which it becomes free.  ``reserve`` books a
    job of a given duration at the earliest possible time not before
    ``arrival`` and returns the resulting :class:`Reservation`.
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self._free_at = 0.0
        self.busy_time = 0.0
        self.jobs = 0

    @property
    def free_at(self) -> float:
        return self._free_at

    def queueing_delay(self, arrival: float) -> float:
        """Delay a job arriving at ``arrival`` would wait before starting."""
        return max(0.0, self._free_at - arrival)

    def reserve(self, arrival: float, duration: float) -> Reservation:
        if duration < 0:
            raise SimulationError(
                f"negative duration {duration} on server {self.name}")
        free = self._free_at
        start = arrival if arrival >= free else free
        end = start + duration
        self._free_at = end
        self.busy_time += duration
        self.jobs += 1
        return Reservation(start, end, 0, start - arrival)

    def reserve_batch(self, arrivals: List[float],
                      duration: float) -> List[float]:
        """Reserve one equal-duration job per arrival; return finish times.

        Exactly equivalent to calling :meth:`reserve` once per arrival in
        order (same start/finish chain, same busy time and job count), but
        performed as one bulk booking so run-batched data movement can
        reserve a whole contiguous page run with a single call.
        """
        if duration < 0:
            raise SimulationError(
                f"negative duration {duration} on server {self.name}")
        free = self._free_at
        busy = self.busy_time
        ends: List[float] = []
        append = ends.append
        for arrival in arrivals:
            free = (arrival if arrival > free else free) + duration
            busy += duration
            append(free)
        self._free_at = free
        self.busy_time = busy
        self.jobs += len(ends)
        return ends

    def reserve_batch_array(self, arrivals: np.ndarray,
                            duration: float) -> np.ndarray:
        """Vectorized :meth:`reserve_batch`: ndarray in, ndarray out.

        Bit-identical to per-arrival :meth:`reserve` calls (finish chain,
        busy time, job count); the fast path of the vectorized movement
        engine (``PlatformConfig.vectorized_movement``).
        """
        if duration < 0:
            raise SimulationError(
                f"negative duration {duration} on server {self.name}")
        ends, free = chain_finish_times(arrivals, duration, self._free_at)
        self._free_at = free
        self.busy_time = repeat_sum(self.busy_time, duration, len(ends))
        self.jobs += len(ends)
        return ends

    def utilization(self, elapsed: float) -> float:
        """Fraction of ``elapsed`` time this server spent busy."""
        if elapsed <= 0:
            return 0.0
        return min(1.0, self.busy_time / elapsed)


class MultiServer:
    """A pool of identical FCFS servers (e.g. flash dies, DRAM banks).

    Jobs are placed on the server that frees up first, which models the
    simulator's ability to exploit die- and bank-level parallelism.
    """

    def __init__(self, name: str, servers: int) -> None:
        if servers <= 0:
            raise SimulationError(f"{name}: server count must be positive")
        self.name = name
        self._free_at = [0.0] * servers
        self.busy_time = 0.0
        self.jobs = 0

    @property
    def servers(self) -> int:
        return len(self._free_at)

    def queueing_delay(self, arrival: float) -> float:
        return max(0.0, min(self._free_at) - arrival)

    def reserve(self, arrival: float, duration: float,
                server_index: Optional[int] = None) -> Reservation:
        if duration < 0:
            raise SimulationError(
                f"negative duration {duration} on pool {self.name}")
        free = self._free_at
        if server_index is None:
            # First-least-loaded server; list.index(min(...)) keeps the
            # same first-minimum tie-break as an argmin scan.
            server_index = free.index(min(free))
        server_free = free[server_index]
        start = arrival if arrival >= server_free else server_free
        end = start + duration
        free[server_index] = end
        self.busy_time += duration
        self.jobs += 1
        return Reservation(start, end, server_index, start - arrival)

    def reserve_batch(self, arrivals: Sequence[float], duration: float,
                      server_indices: Optional[Sequence[int]] = None
                      ) -> np.ndarray:
        """Reserve one equal-duration job per arrival; return finish times.

        The batch entry point of the run-batched/vectorized movement
        engine, bit-identical to per-arrival :meth:`reserve` calls.  With
        explicit ``server_indices`` (data pinned to specific dies/banks)
        each server's sub-sequence is an independent FCFS chain, so the
        batch decomposes into one :func:`chain_finish_times` per touched
        server; without, the least-loaded choice depends on the evolving
        pool state and the booking loop stays scalar.
        """
        if duration < 0:
            raise SimulationError(
                f"negative duration {duration} on pool {self.name}")
        n = len(arrivals)
        ends = np.empty(n, dtype=np.float64)
        free = self._free_at
        if server_indices is None:
            for i in range(n):
                index = free.index(min(free))
                a = arrivals[i]
                f = free[index]
                f = (a if a > f else f) + duration
                free[index] = f
                ends[i] = f
        else:
            arrivals = np.asarray(arrivals, dtype=np.float64)
            indices = np.asarray(server_indices)
            for index in np.unique(indices):
                positions = np.flatnonzero(indices == index)
                sub_ends, new_free = chain_finish_times(
                    arrivals[positions], duration, free[index])
                free[index] = new_free
                ends[positions] = sub_ends
        self.busy_time = repeat_sum(self.busy_time, duration, n)
        self.jobs += n
        return ends

    def utilization(self, elapsed: float) -> float:
        if elapsed <= 0:
            return 0.0
        return min(1.0, self.busy_time / (elapsed * self.servers))


class SharedBus:
    """A bandwidth-limited shared interconnect (flash channel, DRAM bus).

    Transfers occupy the bus for ``size / bandwidth`` and are serialized:
    this captures the flash-channel contention the paper identifies as the
    main cost of naively combining ISP and IFP (Section 3.1).
    """

    def __init__(self, name: str, bandwidth_bytes_per_ns: float) -> None:
        if bandwidth_bytes_per_ns <= 0:
            raise SimulationError(f"{name}: bandwidth must be positive")
        self.name = name
        self.bandwidth = bandwidth_bytes_per_ns
        self._server = Server(name)
        self.bytes_moved = 0.0

    @property
    def free_at(self) -> float:
        return self._server.free_at

    def transfer_time(self, size_bytes: float) -> float:
        """Uncontended time to move ``size_bytes`` over this bus."""
        return size_bytes / self.bandwidth

    def queueing_delay(self, arrival: float) -> float:
        return self._server.queueing_delay(arrival)

    def transfer(self, arrival: float, size_bytes: float) -> Reservation:
        """Reserve the bus for a transfer of ``size_bytes`` at ``arrival``."""
        self.bytes_moved += size_bytes
        return self._server.reserve(arrival, size_bytes / self.bandwidth)

    def transfer_batch(self, arrivals: List[float],
                       size_bytes_each: float) -> List[float]:
        """Reserve back-to-back equal-sized transfers; return finish times.

        The single sized booking of the run-batched data-movement engine:
        one call occupies the bus exactly like ``len(arrivals)`` consecutive
        :meth:`transfer` calls (bubbles included when a later arrival lands
        after the previous transfer drains), so timing equivalence with the
        per-page path is preserved by construction.
        """
        duration = self.transfer_time(size_bytes_each)
        ends = self._server.reserve_batch(arrivals, duration)
        self.bytes_moved += size_bytes_each * len(ends)
        return ends

    def transfer_batch_array(self, arrivals: np.ndarray,
                             size_bytes_each: float) -> np.ndarray:
        """Vectorized :meth:`transfer_batch`: ndarray in, ndarray out."""
        duration = self.transfer_time(size_bytes_each)
        ends = self._server.reserve_batch_array(arrivals, duration)
        self.bytes_moved += size_bytes_each * len(ends)
        return ends

    def utilization(self, elapsed: float) -> float:
        return self._server.utilization(elapsed)


class BusGroup:
    """A set of interchangeable buses (e.g. the SSD's eight flash channels).

    ``transfer`` picks the least-loaded bus unless the caller pins the
    transfer to a specific channel (data already striped onto a channel must
    use that channel).
    """

    def __init__(self, name: str, count: int,
                 bandwidth_bytes_per_ns: float) -> None:
        if count <= 0:
            raise SimulationError(f"{name}: bus count must be positive")
        self.name = name
        self.buses = [SharedBus(f"{name}[{i}]", bandwidth_bytes_per_ns)
                      for i in range(count)]

    def __len__(self) -> int:
        return len(self.buses)

    def transfer_time(self, size_bytes: float) -> float:
        return self.buses[0].transfer_time(size_bytes)

    def queueing_delay(self, arrival: float) -> float:
        return min(bus.queueing_delay(arrival) for bus in self.buses)

    def transfer(self, arrival: float, size_bytes: float,
                 channel: Optional[int] = None) -> Reservation:
        buses = self.buses
        if channel is None:
            # First-least-loaded bus (same tie-break as an argmin scan).
            free_ats = [bus._server._free_at for bus in buses]
            channel = free_ats.index(min(free_ats))
        reservation = buses[channel].transfer(arrival, size_bytes)
        reservation.server_index = channel
        return reservation

    def transfer_batch(self, arrivals: Sequence[float],
                       size_bytes_each: float,
                       channels: Optional[Sequence[int]] = None
                       ) -> np.ndarray:
        """Reserve one equal-sized transfer per arrival; return finish times.

        The group-level batch entry point of the vectorized movement
        engine, bit-identical to per-transfer :meth:`transfer` calls.
        With explicit ``channels`` (striped data pinned to its channel) the
        batch decomposes into one independent chain per touched bus;
        without, the least-loaded choice evolves per transfer and the
        booking loop stays scalar.
        """
        n = len(arrivals)
        ends = np.empty(n, dtype=np.float64)
        if channels is None:
            buses = self.buses
            for i in range(n):
                channel = min(range(len(buses)),
                              key=lambda b: buses[b].free_at)
                reservation = buses[channel].transfer(arrivals[i],
                                                      size_bytes_each)
                ends[i] = reservation.end
            return ends
        arrivals = np.asarray(arrivals, dtype=np.float64)
        indices = np.asarray(channels)
        for channel in np.unique(indices):
            positions = np.flatnonzero(indices == channel)
            ends[positions] = self.buses[channel].transfer_batch_array(
                arrivals[positions], size_bytes_each)
        return ends

    @property
    def bytes_moved(self) -> float:
        return sum(bus.bytes_moved for bus in self.buses)

    def utilization(self, elapsed: float) -> float:
        if elapsed <= 0:
            return 0.0
        return sum(bus.utilization(elapsed) for bus in self.buses) / len(self.buses)
