"""Wear-leveling.

Static wear-leveling: when the spread between the most- and least-erased
blocks exceeds a configurable multiple of the mean erase count, the
wear-leveler migrates the valid pages of the least-erased (cold) block so
that future writes wear it instead of the hot blocks.  This is the standard
technique MQSim (and real FTL firmware) uses to extend SSD endurance; the
paper relies on it for both regular I/O mode and computation mode
(Section 4.4).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.ssd.config import FTLConfig
from repro.ssd.ftl import FlashTranslationLayer
from repro.ssd.nand import FlashBlock


@dataclass
class WearLevelingResult:
    """Summary of one wear-leveling pass."""

    triggered: bool
    migrated_pages: int = 0
    erased_blocks: int = 0
    latency_ns: float = 0.0


class WearLeveler:
    """Static wear-leveler driven by the erase-count spread."""

    def __init__(self, ftl: FlashTranslationLayer, config: FTLConfig) -> None:
        self.ftl = ftl
        self.config = config
        self.invocations = 0
        self.total_migrated = 0
        # Erase-count statistics only change when a block is erased, so the
        # (full-array) imbalance scan is re-run only after new erases.
        self._erases_at_last_check = -1
        self._cached_imbalance = 1.0

    def imbalance(self) -> float:
        """Ratio of the maximum erase count to the mean (1.0 = balanced)."""
        array = self.ftl.array
        if array.erases == 0:
            return 1.0
        if array.erases != self._erases_at_last_check:
            minimum, mean, maximum = array.erase_count_stats()
            self._cached_imbalance = maximum / mean if mean else 1.0
            self._erases_at_last_check = array.erases
        return self._cached_imbalance

    def needs_leveling(self) -> bool:
        return self.imbalance() > self.config.wear_leveling_threshold

    def coldest_block(self) -> Optional[FlashBlock]:
        """Least-erased block holding valid data (the migration victim).

        Erase-count ties break on the lowest physical block address so the
        pick never depends on block materialization order (determinism
        once wear-leveling runs mid-simulation).
        """
        coldest: Optional[FlashBlock] = None
        coldest_key = None
        for block in self.ftl.array.iter_blocks():
            if block.valid_pages == 0:
                continue
            key = (block.erase_count, block.address)
            if coldest_key is None or key < coldest_key:
                coldest = block
                coldest_key = key
        return coldest

    def level(self) -> WearLevelingResult:
        """Migrate the coldest block's data if the spread is too large."""
        if not self.needs_leveling():
            return WearLevelingResult(triggered=False)
        coldest = self.coldest_block()
        if coldest is None:
            return WearLevelingResult(triggered=False)
        self.invocations += 1
        result = WearLevelingResult(triggered=True)
        nand = self.ftl.array.config
        # Drain until live-empty (the allocator may stripe a relocation
        # back into the block being drained); erasing on a stale snapshot
        # would lose the re-landed pages.
        while coldest.valid_pages > 0:
            for lpa in coldest.valid_lpas():
                self.ftl.relocate(lpa)
                result.migrated_pages += 1
                result.latency_ns += (nand.read_latency_ns +
                                      nand.program_latency_ns)
        self.ftl.array.erase_block(coldest.address)
        result.erased_blocks = 1
        result.latency_ns += nand.erase_latency_ns
        self.total_migrated += result.migrated_pages
        return result
