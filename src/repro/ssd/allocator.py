"""Page allocation with NDP data-layout constraints.

The FTL's page allocation policy decides which physical block receives the
next programmed page.  Conduit extends MQSim's allocator to enforce the
data-layout constraints of the NDP paradigms (Section 4.4):

* **IFP (Flash-Cosmos)**: all operands of a bulk bitwise AND must reside in
  pages of the *same flash block*; operands of an OR must be in different
  blocks of the *same plane*.  The allocator therefore supports *colocated*
  allocation, which places a group of logical pages into one block (or one
  plane).
* **Striped allocation** spreads consecutive logical pages across channels
  and dies to maximise internal parallelism, which is MQSim's default
  channel-first striping.
"""

from __future__ import annotations

import enum
from typing import Dict, Iterable, List, Optional

from repro.common import SimulationError
from repro.ssd.nand import (FlashBlock, NANDArray, PhysicalBlockAddress,
                            PhysicalPageAddress)


class AllocationPolicy(enum.Enum):
    """How consecutive logical pages are spread over the flash array."""

    CHANNEL_STRIPED = "channel-striped"
    DIE_STRIPED = "die-striped"
    COLOCATED_BLOCK = "colocated-block"
    COLOCATED_PLANE = "colocated-plane"


class PageAllocator:
    """Selects physical blocks/pages for incoming writes.

    The allocator keeps one "active" (partially written) block per
    (channel, die, plane) and rotates across channels/dies according to the
    allocation policy.  It never programs a page out of order within a block
    (NAND constraint; enforced by :class:`FlashBlock`).
    """

    def __init__(self, array: NANDArray,
                 policy: AllocationPolicy = AllocationPolicy.CHANNEL_STRIPED
                 ) -> None:
        self.array = array
        self.policy = policy
        self.config = array.config
        self._next_channel = 0
        self._next_die = 0
        self._next_plane = 0
        #: Active block per (channel, die, plane).
        self._active: Dict[tuple, PhysicalBlockAddress] = {}
        #: Separate active blocks for the cold write stream (GC / WL
        #: relocations under hot/cold separation), so relocated cold data
        #: stops interleaving with hot foreground writes in one block.
        self._active_cold: Dict[tuple, PhysicalBlockAddress] = {}
        #: Free-block cursors per (channel, die, plane).
        self._free_cursor: Dict[tuple, int] = {}

    # -- Free-block management ------------------------------------------------

    def _find_free_block(self, channel: int, die: int,
                         plane: int) -> Optional[PhysicalBlockAddress]:
        key = (channel, die, plane)
        plane_obj = self.array.die(channel, die).plane(plane)
        start = self._free_cursor.get(key, 0)
        blocks = plane_obj.block_count
        for offset in range(blocks):
            index = (start + offset) % blocks
            # Freeness is checked without materializing the block; only the
            # block actually selected gets built (lazy NAND array).
            if plane_obj.is_free_block(index):
                self._free_cursor[key] = (index + 1) % blocks
                return PhysicalBlockAddress(channel, die, plane, index)
        return None

    def _active_block(self, channel: int, die: int, plane: int, *,
                      cold: bool = False) -> FlashBlock:
        active = self._active_cold if cold else self._active
        key = (channel, die, plane)
        address = active.get(key)
        if address is not None:
            block = self.array.block(address)
            if not block.is_full:
                return block
        new_address = self._find_free_block(channel, die, plane)
        if new_address is None:
            raise SimulationError(
                f"no free blocks on channel {channel} die {die} plane "
                f"{plane}; garbage collection required")
        active[key] = new_address
        return self.array.block(new_address)

    # -- Allocation ------------------------------------------------------------

    def _advance_stripe(self) -> tuple:
        channel, die, plane = self._next_channel, self._next_die, self._next_plane
        if self.policy is AllocationPolicy.CHANNEL_STRIPED:
            self._next_channel = (self._next_channel + 1) % self.config.channels
            if self._next_channel == 0:
                self._next_die = (self._next_die + 1) % self.config.dies_per_channel
                if self._next_die == 0:
                    self._next_plane = ((self._next_plane + 1)
                                        % self.config.planes_per_die)
        else:  # DIE_STRIPED
            self._next_die = (self._next_die + 1) % self.config.dies_per_channel
            if self._next_die == 0:
                self._next_channel = ((self._next_channel + 1)
                                      % self.config.channels)
                if self._next_channel == 0:
                    self._next_plane = ((self._next_plane + 1)
                                        % self.config.planes_per_die)
        return channel, die, plane

    def allocate(self, lpa: int, *, cold: bool = False) -> PhysicalPageAddress:
        """Allocate and program one page for logical page ``lpa``.

        ``cold=True`` routes the page to the cold write stream's active
        blocks (hot/cold separation); the default path is bit-identical
        to the single-stream allocator.
        """
        if self.policy in (AllocationPolicy.CHANNEL_STRIPED,
                           AllocationPolicy.DIE_STRIPED):
            channel, die, plane = self._advance_stripe()
        else:
            channel, die, plane = (self._next_channel, self._next_die,
                                   self._next_plane)
        block = self._active_block(channel, die, plane, cold=cold)
        return self.array.program_page(block.address, lpa)

    def allocate_colocated(self, lpas: Iterable[int]) -> List[PhysicalPageAddress]:
        """Place a group of logical pages into a single block.

        Used to satisfy the Flash-Cosmos constraint that all operands of an
        in-flash bitwise AND live in the same block.  Raises if the group is
        larger than a block.
        """
        lpas = list(lpas)
        if len(lpas) > self.config.pages_per_block:
            raise SimulationError(
                f"cannot colocate {len(lpas)} pages in one block of "
                f"{self.config.pages_per_block} pages")
        channel, die, plane = self._advance_stripe()
        address = self._find_free_block(channel, die, plane)
        if address is None:
            raise SimulationError("no free block available for colocation")
        addresses = [self.array.program_page(address, lpa) for lpa in lpas]
        return addresses

    def allocation_balance(self) -> Dict[int, int]:
        """Programmed pages per channel (used to test striping fairness)."""
        balance: Dict[int, int] = {c: 0 for c in range(self.config.channels)}
        for block in self.array.iter_blocks():
            balance[block.address.channel] += block.write_cursor
        return balance
