"""Flash translation layer: L2P mapping with a DFTL-style mapping cache.

The FTL translates each logical page address (LPA) to its current physical
page address (PPA).  The paper's simulator implements a demand-based L2P
mapping cache (DFTL): only a subset of mapping entries is cached in SSD
DRAM; the rest are fetched from flash on demand (Section 5.1).  Conduit
additionally stores three coherence fields per logical page in the L2P
table -- owner, state, version -- which live in
:mod:`repro.core.coherence`; the FTL here exposes the lookup-latency model
those components share (100 ns for a DRAM hit, 30 us for a flash miss;
Section 4.5).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.common import SimulationError
from repro.ssd.allocator import AllocationPolicy, PageAllocator
from repro.ssd.config import FTLConfig, NANDConfig
from repro.ssd.nand import NANDArray, PhysicalPageAddress


@dataclass
class FTLStatistics:
    """Counters the FTL maintains for analysis and tests."""

    lookups: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    host_writes: int = 0
    relocated_pages: int = 0
    translation_latency_ns: float = 0.0

    @property
    def hit_rate(self) -> float:
        if self.lookups == 0:
            return 0.0
        return self.cache_hits / self.lookups


class MappingCache:
    """LRU cache of L2P mapping entries held in SSD DRAM (DFTL)."""

    def __init__(self, capacity_entries: int) -> None:
        if capacity_entries <= 0:
            raise SimulationError("mapping cache must hold at least 1 entry")
        self.capacity = capacity_entries
        self._entries: "OrderedDict[int, PhysicalPageAddress]" = OrderedDict()
        #: Bumped on every *membership* change (a new key inserted --
        #: including the capacity evictions that follow within the same
        #: call -- or a present key invalidated); pure LRU refreshes leave
        #: it untouched.  The wave-batched offload engine snapshots it to
        #: prove its precollected hit/miss partitions are still live.
        self.version = 0

    def __len__(self) -> int:
        return len(self._entries)

    def lookup(self, lpa: int) -> Optional[PhysicalPageAddress]:
        if lpa not in self._entries:
            return None
        self._entries.move_to_end(lpa)
        return self._entries[lpa]

    def insert(self, lpa: int, ppa: PhysicalPageAddress) -> None:
        entries = self._entries
        if lpa in entries:
            entries.move_to_end(lpa)
        else:
            self.version += 1
        entries[lpa] = ppa
        while len(entries) > self.capacity:
            entries.popitem(last=False)

    def invalidate(self, lpa: int) -> None:
        if self._entries.pop(lpa, None) is not None:
            self.version += 1


class FlashTranslationLayer:
    """Page-level FTL with demand-cached mapping table."""

    def __init__(self, array: NANDArray, config: FTLConfig,
                 allocation_policy: AllocationPolicy =
                 AllocationPolicy.CHANNEL_STRIPED) -> None:
        self.array = array
        self.config = config
        self.allocator = PageAllocator(array, allocation_policy)
        self.mapping: Dict[int, PhysicalPageAddress] = {}
        cache_entries = max(
            1, int(config.mapping_cache_coverage * array.config.pages))
        self.cache = MappingCache(cache_entries)
        self.stats = FTLStatistics()

    # -- Address translation ---------------------------------------------------

    def translate(self, lpa: int) -> Optional[PhysicalPageAddress]:
        """Translate without charging latency (used internally)."""
        return self.mapping.get(lpa)

    def lookup(self, lpa: int) -> tuple:
        """Translate ``lpa`` and return ``(ppa, latency_ns)``.

        The latency follows the DFTL model: a cached entry costs a DRAM
        lookup (100 ns); a miss costs a flash read of the mapping page
        (30 us) after which the entry is cached.
        """
        self.stats.lookups += 1
        cached = self.cache.lookup(lpa)
        if cached is not None:
            self.stats.cache_hits += 1
            latency = self.config.l2p_dram_lookup_ns
        else:
            self.stats.cache_misses += 1
            latency = self.config.l2p_flash_lookup_ns
            ppa = self.mapping.get(lpa)
            if ppa is not None:
                self.cache.insert(lpa, ppa)
        self.stats.translation_latency_ns += latency
        return self.mapping.get(lpa), latency

    def lookup_run(self, base_lpa: int, count: int
                   ) -> Tuple[list, np.ndarray]:
        """Bulk :meth:`lookup` over the contiguous run ``[base, base+count)``.

        Returns ``(ppas, translation_ns)`` with one entry per page.  Side
        effects (LRU touch order, demand-fill inserts and evictions, every
        statistics counter including the sequentially accumulated
        translation latency) are bit-identical to per-page :meth:`lookup`
        calls in ascending order; the LRU bookkeeping is inlined to keep
        the vectorized movement engine's hot loop tight.
        """
        stats = self.stats
        cache = self.cache
        entries = cache._entries
        insert = cache.insert
        mapping_get = self.mapping.get
        hit_latency = self.config.l2p_dram_lookup_ns
        miss_latency = self.config.l2p_flash_lookup_ns
        translations = np.empty(count, dtype=np.float64)
        ppas: List[object] = []
        append = ppas.append
        hits = 0
        latency_total = stats.translation_latency_ns
        for offset in range(count):
            lpa = base_lpa + offset
            if lpa in entries:
                entries.move_to_end(lpa)
                hits += 1
                latency = hit_latency
                ppa = mapping_get(lpa)
            else:
                latency = miss_latency
                ppa = mapping_get(lpa)
                if ppa is not None:
                    insert(lpa, ppa)
            latency_total += latency
            translations[offset] = latency
            append(ppa)
        stats.lookups += count
        stats.cache_hits += hits
        stats.cache_misses += count - hits
        stats.translation_latency_ns = latency_total
        return ppas, translations

    # -- Write path --------------------------------------------------------------

    def write(self, lpa: int) -> PhysicalPageAddress:
        """Write (or overwrite) one logical page.

        Out-of-place update: the previous physical page, if any, is
        invalidated and a fresh page is programmed.
        """
        previous = self.mapping.get(lpa)
        if previous is not None:
            self.array.invalidate_page(previous)
        ppa = self.allocator.allocate(lpa)
        self.mapping[lpa] = ppa
        self.cache.insert(lpa, ppa)
        self.stats.host_writes += 1
        return ppa

    def write_colocated(self, lpas) -> Dict[int, PhysicalPageAddress]:
        """Write a group of logical pages into one block (IFP layout)."""
        lpas = list(lpas)
        for lpa in lpas:
            previous = self.mapping.get(lpa)
            if previous is not None:
                self.array.invalidate_page(previous)
        addresses = self.allocator.allocate_colocated(lpas)
        result = {}
        for lpa, ppa in zip(lpas, addresses):
            self.mapping[lpa] = ppa
            self.cache.insert(lpa, ppa)
            self.stats.host_writes += 1
            result[lpa] = ppa
        return result

    def relocate(self, lpa: int, *,
                 cold: Optional[bool] = None) -> PhysicalPageAddress:
        """Move a valid logical page to a fresh physical page (GC / WL).

        ``cold`` overrides the configured hot/cold-separation default;
        relocated data is cold by definition, so under separation it goes
        to the allocator's cold write stream.
        """
        previous = self.mapping.get(lpa)
        if previous is None:
            raise SimulationError(f"cannot relocate unmapped LPA {lpa}")
        if cold is None:
            cold = self.config.hot_cold_separation
        self.array.invalidate_page(previous)
        ppa = self.allocator.allocate(lpa, cold=cold)
        self.mapping[lpa] = ppa
        self.cache.insert(lpa, ppa)
        self.stats.relocated_pages += 1
        return ppa

    def trim(self, lpa: int) -> None:
        """Invalidate a logical page (host TRIM / dataset teardown)."""
        previous = self.mapping.pop(lpa, None)
        if previous is not None:
            self.array.invalidate_page(previous)
        self.cache.invalidate(lpa)

    # -- Occupancy ---------------------------------------------------------------

    def mapped_pages(self) -> int:
        return len(self.mapping)

    def free_block_fraction(self) -> float:
        return self.array.free_block_count() / self.array.total_blocks

    def mapping_table_bytes(self) -> int:
        return len(self.mapping) * self.config.mapping_entry_bytes
