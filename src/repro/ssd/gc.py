"""Garbage collection.

Greedy victim selection: when the fraction of free blocks drops below the
configured start threshold, the garbage collector repeatedly picks the block
with the most invalid pages, relocates its still-valid pages through the FTL
and erases it, until the stop threshold is reached.  The caller (the SSD
device model) charges read/program/erase latencies for the relocations so GC
interferes with foreground work the way it does in the paper's simulator.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.ssd.config import FTLConfig, GCVictimPolicy
from repro.ssd.ftl import FlashTranslationLayer
from repro.ssd.nand import FlashBlock, PhysicalBlockAddress


@dataclass
class GCResult:
    """Summary of one garbage-collection invocation."""

    triggered: bool
    erased_blocks: int = 0
    relocated_pages: int = 0
    latency_ns: float = 0.0


class GarbageCollector:
    """Greedy (most-invalid-pages-first) garbage collector."""

    def __init__(self, ftl: FlashTranslationLayer, config: FTLConfig) -> None:
        self.ftl = ftl
        self.config = config
        self.invocations = 0
        self.total_erased = 0
        self.total_relocated = 0

    # -- Victim selection ---------------------------------------------------

    def needs_collection(self) -> bool:
        return self.ftl.free_block_fraction() < self.config.gc_start_threshold

    def select_victim(self) -> Optional[FlashBlock]:
        """Pick the victim block under the configured policy.

        Score ties break on the lowest physical block address: victim
        choice must not depend on block materialization order, or a run
        that exercises GC stops being reproducible across equivalent
        histories.
        """
        if self.config.gc_victim_policy is GCVictimPolicy.COST_BENEFIT:
            return self._select_cost_benefit()
        best: Optional[FlashBlock] = None
        best_key = None
        for block in self.ftl.array.iter_blocks():
            invalid = block.invalid_pages
            if invalid == 0:
                continue
            key = (-invalid, block.address)
            if best_key is None or key < best_key:
                best = block
                best_key = key
        return best

    def _select_cost_benefit(self) -> Optional[FlashBlock]:
        """Cost-benefit victim score (adaptive-FTL policy axis).

        ``(invalid / (valid + 1))`` is the reclaim-per-relocation benefit;
        the wear term ``1 / (1 + erase_count / (1 + mean))`` discounts
        already-worn blocks so victim churn doubles as wear-leveling.
        """
        _, mean_erase, _ = self.ftl.array.erase_count_stats()
        best: Optional[FlashBlock] = None
        best_key = None
        for block in self.ftl.array.iter_blocks():
            invalid = block.invalid_pages
            if invalid == 0:
                continue
            score = (invalid / (block.valid_pages + 1.0) /
                     (1.0 + block.erase_count / (1.0 + mean_erase)))
            key = (-score, block.address)
            if best_key is None or key < best_key:
                best = block
                best_key = key
        return best

    # -- Collection ----------------------------------------------------------

    def collect(self) -> GCResult:
        """Run garbage collection if needed; return a summary."""
        if not self.needs_collection():
            return GCResult(triggered=False)
        self.invocations += 1
        result = GCResult(triggered=True)
        array = self.ftl.array
        nand = array.config
        while self.ftl.free_block_fraction() < self.config.gc_stop_threshold:
            victim = self.select_victim()
            if victim is None or victim.invalid_pages == 0:
                break
            # Drain until *live*-empty, not until a snapshot is consumed:
            # the allocator may stripe a relocation into the victim block
            # itself, and erasing on the stale snapshot would destroy it.
            # Terminates because a full block receives no new allocations.
            while victim.valid_pages > 0:
                victims_lpas: List[int] = victim.valid_lpas()
                for lpa in victims_lpas:
                    self.ftl.relocate(lpa)
                    result.relocated_pages += 1
                    result.latency_ns += (nand.read_latency_ns +
                                          nand.program_latency_ns)
            address: PhysicalBlockAddress = victim.address
            array.erase_block(address)
            result.erased_blocks += 1
            result.latency_ns += nand.erase_latency_ns
        self.total_erased += result.erased_blocks
        self.total_relocated += result.relocated_pages
        return result
