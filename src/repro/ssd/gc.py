"""Garbage collection.

Greedy victim selection: when the fraction of free blocks drops below the
configured start threshold, the garbage collector repeatedly picks the block
with the most invalid pages, relocates its still-valid pages through the FTL
and erases it, until the stop threshold is reached.  The caller (the SSD
device model) charges read/program/erase latencies for the relocations so GC
interferes with foreground work the way it does in the paper's simulator.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.ssd.config import FTLConfig
from repro.ssd.ftl import FlashTranslationLayer
from repro.ssd.nand import FlashBlock, PhysicalBlockAddress


@dataclass
class GCResult:
    """Summary of one garbage-collection invocation."""

    triggered: bool
    erased_blocks: int = 0
    relocated_pages: int = 0
    latency_ns: float = 0.0


class GarbageCollector:
    """Greedy (most-invalid-pages-first) garbage collector."""

    def __init__(self, ftl: FlashTranslationLayer, config: FTLConfig) -> None:
        self.ftl = ftl
        self.config = config
        self.invocations = 0
        self.total_erased = 0
        self.total_relocated = 0

    # -- Victim selection ---------------------------------------------------

    def needs_collection(self) -> bool:
        return self.ftl.free_block_fraction() < self.config.gc_start_threshold

    def select_victim(self) -> Optional[FlashBlock]:
        """Pick the block with the most invalid pages (greedy policy)."""
        best: Optional[FlashBlock] = None
        best_invalid = 0
        for block in self.ftl.array.iter_blocks():
            invalid = block.invalid_pages
            if invalid > best_invalid:
                best = block
                best_invalid = invalid
        return best

    # -- Collection ----------------------------------------------------------

    def collect(self) -> GCResult:
        """Run garbage collection if needed; return a summary."""
        if not self.needs_collection():
            return GCResult(triggered=False)
        self.invocations += 1
        result = GCResult(triggered=True)
        array = self.ftl.array
        nand = array.config
        while self.ftl.free_block_fraction() < self.config.gc_stop_threshold:
            victim = self.select_victim()
            if victim is None or victim.invalid_pages == 0:
                break
            victims_lpas: List[int] = victim.valid_lpas()
            for lpa in victims_lpas:
                self.ftl.relocate(lpa)
                result.relocated_pages += 1
                result.latency_ns += (nand.read_latency_ns +
                                      nand.program_latency_ns)
            address: PhysicalBlockAddress = victim.address
            array.erase_block(address)
            result.erased_blocks += 1
            result.latency_ns += nand.erase_latency_ns
        self.total_erased += result.erased_blocks
        self.total_relocated += result.relocated_pages
        return result
