"""NVMe host interface.

Models the host<->SSD communication paths Conduit relies on (Section 4.4):

* Regular I/O: reads and writes of logical pages over NVMe/PCIe.
* Binary transfer: Conduit repurposes the existing NVMe admin commands for
  firmware update -- ``fw-download`` and ``fw-commit`` -- extended with a
  flag that tells the controller the payload is a Conduit binary rather than
  FTL firmware.
* Operating modes: *regular I/O mode* (host I/O and FTL operations) and
  *computation mode* (all SSD resources are devoted to NDP; host I/O is
  suspended until the host switches the device back).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.common import SimulationError
from repro.ssd.config import HostInterfaceConfig
from repro.ssd.events import SharedBus


class SSDMode(enum.Enum):
    """Operating modes of the SSD (Section 4.4, Host-SSD Communication)."""

    REGULAR_IO = "regular-io"
    COMPUTATION = "computation"


class AdminOpcode(enum.Enum):
    """Subset of NVMe admin opcodes the model understands."""

    FIRMWARE_DOWNLOAD = "fw-download"
    FIRMWARE_COMMIT = "fw-commit"
    SET_FEATURES = "set-features"


@dataclass
class AdminCommand:
    """One NVMe admin command submitted by the host."""

    opcode: AdminOpcode
    payload_bytes: int = 0
    #: Conduit's extension flag: marks a firmware download as a Conduit
    #: binary instead of vendor FTL firmware.
    conduit_binary: bool = False


@dataclass
class TransferRecord:
    """Completed host<->SSD transfer, for statistics and tests."""

    start_ns: float
    end_ns: float
    size_bytes: int
    direction: str

    @property
    def latency_ns(self) -> float:
        return self.end_ns - self.start_ns


@dataclass
class CommittedBinary:
    """A Conduit binary that has been downloaded and committed."""

    size_bytes: int
    committed_at_ns: float
    slot: int


class NVMeInterface:
    """NVMe command processing and the PCIe link to the host."""

    def __init__(self, config: HostInterfaceConfig) -> None:
        self.config = config
        self.pcie = SharedBus("pcie", config.pcie_bandwidth_bytes_per_ns)
        self.mode = SSDMode.REGULAR_IO
        self.transfers: List[TransferRecord] = []
        self.committed_binaries: List[CommittedBinary] = []
        self._staged_binary_bytes = 0
        self._staged_is_conduit = False

    # -- Data path -------------------------------------------------------------

    def host_transfer(self, now: float, size_bytes: int,
                      direction: str) -> TransferRecord:
        """Move ``size_bytes`` between host memory and the SSD over PCIe."""
        if direction not in ("host-to-ssd", "ssd-to-host"):
            raise SimulationError(f"unknown transfer direction {direction}")
        start = now + self.config.nvme_command_latency_ns
        reservation = self.pcie.transfer(start, size_bytes)
        record = TransferRecord(start_ns=now, end_ns=reservation.end,
                                size_bytes=size_bytes, direction=direction)
        self.transfers.append(record)
        return record

    def host_transfer_run(self, arrivals: List[float], size_bytes_each: int,
                          direction: str) -> List[float]:
        """Move one equal-sized payload per arrival over PCIe; return ends.

        Run-batched variant of :meth:`host_transfer`: each payload still
        pays the NVMe command latency from its own arrival time, but the
        PCIe link is reserved once for the whole run
        (:meth:`repro.ssd.events.SharedBus.transfer_batch`), which occupies
        the bus exactly like back-to-back per-page transfers.  A single
        aggregate :class:`TransferRecord` covers the run.
        """
        if direction not in ("host-to-ssd", "ssd-to-host"):
            raise SimulationError(f"unknown transfer direction {direction}")
        if not arrivals:
            return []
        command = self.config.nvme_command_latency_ns
        ends = self.pcie.transfer_batch([now + command for now in arrivals],
                                        size_bytes_each)
        self.transfers.append(TransferRecord(
            start_ns=arrivals[0], end_ns=ends[-1],
            size_bytes=size_bytes_each * len(ends), direction=direction))
        return ends

    def host_transfer_run_array(self, arrivals: "np.ndarray",
                                size_bytes_each: int,
                                direction: str) -> "np.ndarray":
        """Vectorized :meth:`host_transfer_run`: ndarray in, ndarray out."""
        if direction not in ("host-to-ssd", "ssd-to-host"):
            raise SimulationError(f"unknown transfer direction {direction}")
        if len(arrivals) == 0:
            return np.empty(0, dtype=np.float64)
        command = self.config.nvme_command_latency_ns
        ends = self.pcie.transfer_batch_array(arrivals + command,
                                              size_bytes_each)
        self.transfers.append(TransferRecord(
            start_ns=float(arrivals[0]), end_ns=float(ends[-1]),
            size_bytes=size_bytes_each * len(ends), direction=direction))
        return ends

    def host_transfer_latency(self, size_bytes: int) -> float:
        """Uncontended host transfer latency for ``size_bytes``."""
        return (self.config.nvme_command_latency_ns +
                self.pcie.transfer_time(size_bytes))

    # -- Admin commands -----------------------------------------------------------

    def submit_admin(self, now: float, command: AdminCommand) -> float:
        """Process an admin command; returns its completion time."""
        end = now + self.config.nvme_command_latency_ns
        if command.opcode is AdminOpcode.FIRMWARE_DOWNLOAD:
            end = self._firmware_download(now, command)
        elif command.opcode is AdminOpcode.FIRMWARE_COMMIT:
            end = self._firmware_commit(now, command)
        elif command.opcode is AdminOpcode.SET_FEATURES:
            pass  # mode switching is done via enter_*_mode below
        return end

    def _firmware_download(self, now: float, command: AdminCommand) -> float:
        if command.payload_bytes <= 0:
            raise SimulationError("fw-download requires a payload")
        chunk = self.config.firmware_download_chunk_bytes
        remaining = command.payload_bytes
        time = now
        while remaining > 0:
            piece = min(chunk, remaining)
            record = self.host_transfer(time, piece, "host-to-ssd")
            time = record.end_ns
            remaining -= piece
        self._staged_binary_bytes += command.payload_bytes
        self._staged_is_conduit = command.conduit_binary
        return time

    def _firmware_commit(self, now: float, command: AdminCommand) -> float:
        if self._staged_binary_bytes == 0:
            raise SimulationError("fw-commit without a staged download")
        end = now + self.config.nvme_command_latency_ns
        if self._staged_is_conduit or command.conduit_binary:
            self.committed_binaries.append(CommittedBinary(
                size_bytes=self._staged_binary_bytes, committed_at_ns=end,
                slot=len(self.committed_binaries)))
        self._staged_binary_bytes = 0
        self._staged_is_conduit = False
        return end

    def download_binary(self, now: float, size_bytes: int) -> float:
        """Convenience path: fw-download chunks followed by fw-commit."""
        end = self.submit_admin(now, AdminCommand(
            AdminOpcode.FIRMWARE_DOWNLOAD, payload_bytes=size_bytes,
            conduit_binary=True))
        return self.submit_admin(end, AdminCommand(
            AdminOpcode.FIRMWARE_COMMIT, conduit_binary=True))

    @property
    def latest_binary(self) -> Optional[CommittedBinary]:
        return self.committed_binaries[-1] if self.committed_binaries else None

    # -- Operating modes ------------------------------------------------------------

    def enter_computation_mode(self) -> None:
        self.mode = SSDMode.COMPUTATION

    def enter_regular_io_mode(self) -> None:
        self.mode = SSDMode.REGULAR_IO

    def check_host_io_allowed(self) -> None:
        """Host I/O is suspended while the SSD is in computation mode."""
        if self.mode is SSDMode.COMPUTATION:
            raise SimulationError(
                "host I/O is suspended while the SSD is in computation mode")

    # -- Statistics -----------------------------------------------------------------

    @property
    def bytes_to_host(self) -> int:
        return sum(t.size_bytes for t in self.transfers
                   if t.direction == "ssd-to-host")

    @property
    def bytes_from_host(self) -> int:
        return sum(t.size_bytes for t in self.transfers
                   if t.direction == "host-to-ssd")
