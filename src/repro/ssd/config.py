"""SSD configuration (Table 2 of the paper).

The default values reproduce the simulated SSD the paper evaluates: a 2 TB
48-wordline-layer 3D TLC NAND SSD with 8 channels, 8 dies per channel,
2 planes per die, 2 048 blocks per plane and 4 KiB pages, a 1.2 GB/s flash
channel, PCIe 4.0 host interface (8 GB/s), SLC-mode NAND latencies from
Flash-Cosmos (tREAD = 22.5 us, tPROG = 400 us, tERASE = 3.5 ms), ParaBit /
Flash-Cosmos in-flash operation latencies (tAND/OR = 20 ns, tXOR = 30 ns,
latch transfer = 20 ns) and tDMA = 3.3 us, and five ARM Cortex-R8 cores at
1.5 GHz in the SSD controller.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.common import ConfigurationError, GIB, KIB, MS, NS, US


class GCVictimPolicy(enum.Enum):
    """How the garbage collector picks its victim block.

    ``GREEDY`` (the seed's policy) maximises reclaimed pages per erase by
    taking the block with the most invalid pages.  ``COST_BENEFIT``
    additionally weighs the relocation cost of the block's remaining
    valid pages and its wear (a worn block is a worse victim), the
    classic adaptive-FTL victim score.
    """

    GREEDY = "greedy"
    COST_BENEFIT = "cost-benefit"


@dataclass(frozen=True)
class NANDConfig:
    """Geometry and timing of the NAND flash subsystem."""

    channels: int = 8
    dies_per_channel: int = 8
    planes_per_die: int = 2
    blocks_per_plane: int = 2048
    pages_per_block: int = 196          # 4 x 48 wordlines (Table 2)
    #: Flash page size.  Conduit's compile-time vector width (4096 x 32-bit)
    #: is chosen to match one NAND page of 16 KiB (Section 4.3.1).
    page_size_bytes: int = 16 * KIB

    # SLC-mode latencies (Flash-Cosmos enhanced SLC programming).
    read_latency_ns: float = 22.5 * US       # tR
    program_latency_ns: float = 400.0 * US   # tPROG
    erase_latency_ns: float = 3500.0 * US    # tBERS

    # In-flash computation latencies (per multi-wordline-sensing operation).
    and_or_latency_ns: float = 20.0 * NS     # tAND/OR (ParaBit)
    xor_latency_ns: float = 30.0 * NS        # tXOR (Flash-Cosmos)
    latch_transfer_latency_ns: float = 20.0 * NS

    # Transfer of one page between the page buffer and the flash controller.
    dma_latency_ns: float = 3.3 * US         # tDMA

    # Flash channel bandwidth (ONFI-style bus), bytes per nanosecond.
    channel_bandwidth_gbps: float = 1.2

    # Command transfer latency over the channel (per command).
    command_latency_ns: float = 200.0 * NS

    def __post_init__(self) -> None:
        for name in ("channels", "dies_per_channel", "planes_per_die",
                     "blocks_per_plane", "pages_per_block",
                     "page_size_bytes"):
            if getattr(self, name) <= 0:
                raise ConfigurationError(f"NANDConfig.{name} must be positive")

    @property
    def channel_bandwidth_bytes_per_ns(self) -> float:
        return self.channel_bandwidth_gbps

    @property
    def dies(self) -> int:
        return self.channels * self.dies_per_channel

    @property
    def planes(self) -> int:
        return self.dies * self.planes_per_die

    @property
    def blocks(self) -> int:
        return self.planes * self.blocks_per_plane

    @property
    def pages(self) -> int:
        return self.blocks * self.pages_per_block

    @property
    def capacity_bytes(self) -> int:
        return self.pages * self.page_size_bytes


@dataclass(frozen=True)
class ControllerConfig:
    """SSD controller: embedded cores and SRAM."""

    cores: int = 5                      # ARM Cortex-R8 cores
    clock_ghz: float = 1.5
    #: Effective SIMD datapath width of the embedded cores.  The paper
    #: stresses that the controller cores have *limited* SIMD parallelism
    #: (32-bit registers, Section 2.2), which is what caps ISP throughput.
    simd_width_bytes: int = 4
    sram_bytes: int = 8 * 1024 * KIB    # on-controller scratch memory

    #: Cores reserved for FTL / host communication / Conduit's offloader.
    #: The paper dedicates one core to offloaded computation and keeps the
    #: others for latency-critical firmware tasks (Section 4.3.2).
    compute_cores: int = 1

    def __post_init__(self) -> None:
        if self.cores <= 0 or self.compute_cores <= 0:
            raise ConfigurationError("controller core counts must be positive")
        if self.compute_cores > self.cores:
            raise ConfigurationError(
                "compute_cores cannot exceed total controller cores")

    @property
    def cycle_ns(self) -> float:
        return 1.0 / self.clock_ghz


@dataclass(frozen=True)
class HostInterfaceConfig:
    """Host interface (NVMe over PCIe 4.0 x4, 8 GB/s external bandwidth)."""

    pcie_bandwidth_gbps: float = 8.0
    nvme_command_latency_ns: float = 5.0 * US
    firmware_download_chunk_bytes: int = 128 * KIB

    @property
    def pcie_bandwidth_bytes_per_ns(self) -> float:
        return self.pcie_bandwidth_gbps


@dataclass(frozen=True)
class FTLConfig:
    """Flash translation layer parameters."""

    #: Fraction of the L2P mapping table cached in SSD DRAM (DFTL-style
    #: demand caching).  Lookups that miss the cache pay a flash read.
    mapping_cache_coverage: float = 0.25
    mapping_entry_bytes: int = 8
    l2p_dram_lookup_ns: float = 100.0 * NS   # Section 4.5
    l2p_flash_lookup_ns: float = 30.0 * US   # Section 4.5

    #: Garbage collection starts when the fraction of free blocks drops
    #: below this threshold and stops at the stop threshold.
    gc_start_threshold: float = 0.05
    gc_stop_threshold: float = 0.10

    #: Wear-leveling swaps a cold block when the erase-count spread exceeds
    #: this factor of the mean.
    wear_leveling_threshold: float = 1.5

    overprovisioning: float = 0.07

    # -- Adaptive-FTL policy axis (registered ablation) ---------------------

    #: GC victim-selection policy; ``GREEDY`` is the seed's behaviour.
    gc_victim_policy: GCVictimPolicy = GCVictimPolicy.GREEDY
    #: Route GC/WL relocations (cold data) to their own active blocks so
    #: they stop interleaving with hot foreground writes in the same
    #: block.  Off by default -- the single-stream allocator is the
    #: seed's bit-exact behaviour.
    hot_cold_separation: bool = False

    def __post_init__(self) -> None:
        if not 0.0 < self.mapping_cache_coverage <= 1.0:
            raise ConfigurationError(
                "mapping_cache_coverage must be in (0, 1]")
        if self.gc_start_threshold >= self.gc_stop_threshold:
            raise ConfigurationError(
                "gc_start_threshold must be below gc_stop_threshold")


@dataclass(frozen=True)
class SSDEnergyConfig:
    """Per-operation energy values (Table 2), in nanojoules."""

    flash_read_nj_per_channel: float = 20_500.0     # 20.5 uJ / channel read
    flash_program_nj_per_channel: float = 55_000.0
    flash_erase_nj_per_block: float = 120_000.0
    ifp_and_or_nj_per_kb: float = 10.0
    ifp_xor_nj_per_kb: float = 20.0
    ifp_latch_transfer_nj_per_kb: float = 10.0
    dma_nj_per_channel: float = 7_656.0              # 7.656 uJ / channel DMA
    dram_bbop_nj: float = 0.864                      # per bulk bitwise op row
    dram_access_nj_per_kb: float = 150.0
    controller_core_active_power_mw: float = 450.0
    controller_core_idle_power_mw: float = 45.0
    pcie_nj_per_kb: float = 620.0
    host_dram_nj_per_kb: float = 260.0
    #: Whole-device active power of the SSD (Samsung 980 Pro class),
    #: charged for the duration of a run on top of per-operation energies.
    ssd_active_power_w: float = 8.0
    #: Host package idle power charged while computation happens inside the
    #: SSD (the host still burns power waiting for NDP results).
    host_idle_power_w: float = 25.0


@dataclass(frozen=True)
class SSDConfig:
    """Top-level simulated SSD configuration (Table 2)."""

    nand: NANDConfig = field(default_factory=NANDConfig)
    controller: ControllerConfig = field(default_factory=ControllerConfig)
    host_interface: HostInterfaceConfig = field(
        default_factory=HostInterfaceConfig)
    ftl: FTLConfig = field(default_factory=FTLConfig)
    energy: SSDEnergyConfig = field(default_factory=SSDEnergyConfig)

    #: SSD-internal DRAM capacity; 2 GB LPDDR4-1866 in Table 2.
    dram_capacity_bytes: int = 2 * GIB

    @property
    def capacity_bytes(self) -> int:
        return self.nand.capacity_bytes

    def scaled(self, *, channels: int = None, dies_per_channel: int = None,
               blocks_per_plane: int = None) -> "SSDConfig":
        """Return a copy with a smaller/larger geometry (for fast tests)."""
        nand = NANDConfig(
            channels=channels or self.nand.channels,
            dies_per_channel=dies_per_channel or self.nand.dies_per_channel,
            planes_per_die=self.nand.planes_per_die,
            blocks_per_plane=blocks_per_plane or self.nand.blocks_per_plane,
            pages_per_block=self.nand.pages_per_block,
            page_size_bytes=self.nand.page_size_bytes,
            read_latency_ns=self.nand.read_latency_ns,
            program_latency_ns=self.nand.program_latency_ns,
            erase_latency_ns=self.nand.erase_latency_ns,
            and_or_latency_ns=self.nand.and_or_latency_ns,
            xor_latency_ns=self.nand.xor_latency_ns,
            latch_transfer_latency_ns=self.nand.latch_transfer_latency_ns,
            dma_latency_ns=self.nand.dma_latency_ns,
            channel_bandwidth_gbps=self.nand.channel_bandwidth_gbps,
            command_latency_ns=self.nand.command_latency_ns,
        )
        return SSDConfig(nand=nand, controller=self.controller,
                         host_interface=self.host_interface, ftl=self.ftl,
                         energy=self.energy,
                         dram_capacity_bytes=self.dram_capacity_bytes)


def small_ssd_config() -> SSDConfig:
    """A reduced-geometry SSD used by unit tests and quick examples."""
    return SSDConfig().scaled(channels=4, dies_per_channel=2,
                              blocks_per_plane=64)
