"""SSD storage substrate: event-driven NAND SSD model (MQSim-style)."""

from repro.ssd.allocator import AllocationPolicy, PageAllocator
from repro.ssd.config import (ControllerConfig, FTLConfig,
                              HostInterfaceConfig, NANDConfig, SSDConfig,
                              SSDEnergyConfig, small_ssd_config)
from repro.ssd.events import (BusGroup, Event, EventScheduler, MultiServer,
                              Reservation, Server, SharedBus)
from repro.ssd.flash_controller import FlashChannelSubsystem
from repro.ssd.ftl import FlashTranslationLayer, MappingCache
from repro.ssd.gc import GarbageCollector, GCResult
from repro.ssd.nand import (FlashBlock, FlashDie, FlashPlane, NANDArray,
                            PageState, PhysicalBlockAddress,
                            PhysicalPageAddress)
from repro.ssd.nvme import (AdminCommand, AdminOpcode, NVMeInterface,
                            SSDMode)
from repro.ssd.queues import ExecutionQueue, ResourceQueueSet
from repro.ssd.ssd import SSD, PageAccessTiming, SSDStatistics
from repro.ssd.wear_leveling import WearLeveler, WearLevelingResult

__all__ = [
    "AllocationPolicy", "PageAllocator", "ControllerConfig", "FTLConfig",
    "HostInterfaceConfig", "NANDConfig", "SSDConfig", "SSDEnergyConfig",
    "small_ssd_config", "BusGroup", "Event", "EventScheduler", "MultiServer",
    "Reservation", "Server", "SharedBus", "FlashChannelSubsystem",
    "FlashTranslationLayer", "MappingCache", "GarbageCollector", "GCResult",
    "FlashBlock", "FlashDie", "FlashPlane", "NANDArray", "PageState",
    "PhysicalBlockAddress", "PhysicalPageAddress", "AdminCommand",
    "AdminOpcode", "NVMeInterface", "SSDMode", "ExecutionQueue",
    "ResourceQueueSet", "SSD", "PageAccessTiming", "SSDStatistics",
    "WearLeveler", "WearLevelingResult",
]
