"""Top-level SSD storage device.

Composes the NAND array, flash channel subsystem, FTL (with DFTL mapping
cache), garbage collector, wear-leveler and NVMe host interface into one
device that the NDP platform (:mod:`repro.core.platform`) builds on.

This module is the *storage* substrate: it knows how to place datasets on
flash, translate addresses, serve page reads/writes with realistic timing,
and run maintenance (GC / wear-leveling).  Computation resources (ISP,
PuD-SSD, IFP) are layered on top by the platform.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence

import numpy as np

from repro.common import SimulationError
from repro.ssd.allocator import AllocationPolicy
from repro.ssd.config import SSDConfig
from repro.ssd.flash_controller import (FlashChannelSubsystem,
                                        FlashOperationTiming)
from repro.ssd.ftl import FlashTranslationLayer
from repro.ssd.gc import GarbageCollector, GCResult
from repro.ssd.nand import NANDArray, PhysicalPageAddress
from repro.ssd.nvme import NVMeInterface, SSDMode
from repro.ssd.wear_leveling import WearLeveler, WearLevelingResult


@dataclass
class PageAccessTiming:
    """Timing of one logical-page access through the full storage path."""

    lpa: int
    ppa: Optional[PhysicalPageAddress]
    start_ns: float
    end_ns: float
    translation_ns: float
    flash_ns: float

    @property
    def latency_ns(self) -> float:
        return self.end_ns - self.start_ns


@dataclass
class SSDStatistics:
    """Aggregate counters for the storage device."""

    logical_reads: int = 0
    logical_writes: int = 0
    gc_invocations: int = 0
    wl_invocations: int = 0
    maintenance_latency_ns: float = 0.0


class SSD:
    """A simulated NAND-flash SSD (storage view)."""

    def __init__(self, config: Optional[SSDConfig] = None, *,
                 allocation_policy: AllocationPolicy =
                 AllocationPolicy.CHANNEL_STRIPED) -> None:
        self.config = config or SSDConfig()
        self.array = NANDArray(self.config.nand)
        self.channels = FlashChannelSubsystem(self.config.nand)
        self.ftl = FlashTranslationLayer(self.array, self.config.ftl,
                                         allocation_policy)
        self.gc = GarbageCollector(self.ftl, self.config.ftl)
        self.wear_leveler = WearLeveler(self.ftl, self.config.ftl)
        self.nvme = NVMeInterface(self.config.host_interface)
        self.stats = SSDStatistics()
        #: Background maintenance engine (``repro.ssd.lifetime``); when
        #: attached it replaces the legacy synchronous GC/WL latency
        #: charge with real traffic on the shared channels.
        self.background = None

    # -- Properties -------------------------------------------------------------

    @property
    def page_size(self) -> int:
        return self.config.nand.page_size_bytes

    @property
    def total_pages(self) -> int:
        return self.config.nand.pages

    @property
    def mode(self) -> SSDMode:
        return self.nvme.mode

    # -- Dataset placement --------------------------------------------------------

    def populate(self, lpas: Iterable[int], *,
                 colocated_groups: Optional[Sequence[Sequence[int]]] = None
                 ) -> None:
        """Place a dataset on flash without charging simulation time.

        The paper assumes all application data resides in the SSD before
        execution starts (Section 4.4), so dataset placement is a zero-time
        setup step.  ``colocated_groups`` lists groups of logical pages that
        must share a flash block to satisfy IFP layout constraints.
        """
        colocated: set = set()
        if colocated_groups:
            for group in colocated_groups:
                group = list(group)
                self.ftl.write_colocated(group)
                colocated.update(group)
        for lpa in lpas:
            if lpa in colocated:
                continue
            self.ftl.write(lpa)

    # -- Flash-level access with timing ----------------------------------------------

    def location_of(self, lpa: int) -> Optional[PhysicalPageAddress]:
        """Physical location of a logical page (no latency charged)."""
        return self.ftl.translate(lpa)

    def read_page(self, now: float, lpa: int, *,
                  transfer_out: bool = True) -> PageAccessTiming:
        """Read one logical page from flash (into the flash controller)."""
        ppa, translation_ns = self.ftl.lookup(lpa)
        if ppa is None:
            raise SimulationError(f"read of unmapped logical page {lpa}")
        timing = self.channels.read_page(now + translation_ns, ppa.channel,
                                         ppa.die, transfer_out=transfer_out)
        self.stats.logical_reads += 1
        end = timing.end
        if self.background is not None:
            # Background maintenance runs while the device serves reads
            # too (its relocations queue on the same channels/dies); the
            # returned stall is nonzero only under critical free-block
            # pressure, when GC preempts the foreground entirely.
            end += self.background.pulse(end)
        return PageAccessTiming(lpa=lpa, ppa=ppa, start_ns=now,
                                end_ns=end,
                                translation_ns=translation_ns,
                                flash_ns=timing.end - now - translation_ns)

    def read_run(self, now: float, base_lpa: int, count: int, *,
                 transfer_out: bool = True) -> List[PageAccessTiming]:
        """Read a contiguous run of logical pages arriving together.

        Run-batched variant of :meth:`read_page` used by the data-movement
        engine: pages are still sensed and streamed individually (a run is
        striped over channels and dies, and every page pays its own L2P
        translation), but the loop is tight and the logical-read counter is
        bumped once for the whole run.
        """
        lookup = self.ftl.lookup
        read = self.channels.read_page
        timings: List[PageAccessTiming] = []
        for lpa in range(base_lpa, base_lpa + count):
            ppa, translation_ns = lookup(lpa)
            if ppa is None:
                raise SimulationError(f"read of unmapped logical page {lpa}")
            timing = read(now + translation_ns, ppa.channel, ppa.die,
                          transfer_out=transfer_out)
            timings.append(PageAccessTiming(
                lpa=lpa, ppa=ppa, start_ns=now, end_ns=timing.end,
                translation_ns=translation_ns,
                flash_ns=timing.end - now - translation_ns))
        self.stats.logical_reads += count
        if timings and self.background is not None:
            # One pulse per run (not per page): the engine's chains are
            # milliseconds long, so a run-level duty cycle loses nothing,
            # and a stall would surface at the next operation anyway via
            # the engine's busy horizon.
            self.background.pulse(timings[-1].end_ns)
        return timings

    def read_run_array(self, now: float, base_lpa: int, count: int, *,
                       transfer_out: bool = True) -> "np.ndarray":
        """Vectorized :meth:`read_run`: per-page end times as an ndarray.

        Same storage-path side effects (L2P cache churn, channel/die
        reservations, statistics) as :meth:`read_run`, bit-exactly, but
        without materialising per-page :class:`PageAccessTiming` objects.
        """
        ppas, translations = self.ftl.lookup_run(base_lpa, count)
        channels = np.empty(count, dtype=np.int64)
        dies = np.empty(count, dtype=np.int64)
        for offset, ppa in enumerate(ppas):
            if ppa is None:
                raise SimulationError(
                    f"read of unmapped logical page {base_lpa + offset}")
            channels[offset] = ppa.channel
            dies[offset] = ppa.die
        ends = self.channels.read_run_batch(now + translations, channels,
                                            dies, transfer_out=transfer_out)
        self.stats.logical_reads += count
        if count and self.background is not None:
            self.background.pulse(float(ends[-1]))
        return ends

    def write_page(self, now: float, lpa: int) -> PageAccessTiming:
        """Write one logical page (out-of-place update) with timing."""
        ppa, translation_ns = self.ftl.lookup(lpa)
        new_ppa = self.ftl.write(lpa)
        timing = self.channels.program_page(now + translation_ns,
                                            new_ppa.channel, new_ppa.die)
        self.stats.logical_writes += 1
        maintenance = self.run_maintenance(timing.end)
        return PageAccessTiming(lpa=lpa, ppa=new_ppa, start_ns=now,
                                end_ns=timing.end + maintenance,
                                translation_ns=translation_ns,
                                flash_ns=timing.end - now - translation_ns)

    # -- Host I/O path (NVMe + PCIe) ---------------------------------------------------

    def host_read(self, now: float, lpas: Sequence[int]) -> float:
        """Host reads logical pages; returns the completion time."""
        self.nvme.check_host_io_allowed()
        finish = now
        for lpa in lpas:
            access = self.read_page(now, lpa)
            transfer = self.nvme.host_transfer(access.end_ns, self.page_size,
                                               "ssd-to-host")
            finish = max(finish, transfer.end_ns)
        return finish

    def host_write(self, now: float, lpas: Sequence[int]) -> float:
        """Host writes logical pages; returns the completion time."""
        self.nvme.check_host_io_allowed()
        finish = now
        for lpa in lpas:
            transfer = self.nvme.host_transfer(now, self.page_size,
                                               "host-to-ssd")
            access = self.write_page(transfer.end_ns, lpa)
            finish = max(finish, access.end_ns)
        return finish

    # -- Maintenance -------------------------------------------------------------------

    def attach_background_engine(self, engine) -> None:
        """Route maintenance through a background flash engine.

        ``engine`` is a :class:`~repro.ssd.lifetime.engine.
        BackgroundFlashEngine` (duck-typed here so the storage substrate
        does not import the lifetime subsystem).  Once attached,
        :meth:`run_maintenance` pulses it with the foreground write's
        completion time instead of charging the legacy synchronous
        latency.
        """
        self.background = engine

    def run_maintenance(self, now: float = 0.0) -> float:
        """Run GC and wear-leveling if needed; return the added latency.

        With a background engine attached, maintenance becomes channel
        traffic at time ``now``; the returned latency is then zero except
        under critical free-block pressure (foreground write throttling).
        """
        if self.background is not None:
            return self.background.pulse(now)
        latency = 0.0
        gc_result: GCResult = self.gc.collect()
        if gc_result.triggered:
            self.stats.gc_invocations += 1
            latency += gc_result.latency_ns
        wl_result: WearLevelingResult = self.wear_leveler.level()
        if wl_result.triggered:
            self.stats.wl_invocations += 1
            latency += wl_result.latency_ns
        self.stats.maintenance_latency_ns += latency
        return latency

    # -- Mode switching ------------------------------------------------------------------

    def enter_computation_mode(self) -> None:
        self.nvme.enter_computation_mode()

    def enter_regular_io_mode(self) -> None:
        self.nvme.enter_regular_io_mode()
