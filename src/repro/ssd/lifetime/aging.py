"""Drive-age profiles: deterministic pre-aging of the NAND array.

A fresh simulated SSD is 99%+ free blocks, so the garbage collector's
free-block trigger (:meth:`GarbageCollector.needs_collection`) can never
fire at experiment scale -- the paper's fresh-drive assumption baked into
the model.  A :class:`DriveAgeProfile` replays a drive's write history as
a zero-time setup step instead:

* most of each plane becomes *static cold data* -- fully-valid blocks that
  are accounted arithmetically (never materialized, mirroring the lazy
  NAND array) and squeeze the free-block fraction down to the profile's
  ``free_fraction``;
* a seeded number of blocks per plane are *fragmented*: partially
  programmed with filler logical pages, a seeded fraction of which are
  invalid -- these are the GC victims that generate real relocation
  traffic on the shared channels once the background engine runs;
* per-block erase counts are pre-seeded from the profile's RNG, so wear
  statistics (and the wear-leveler's imbalance trigger) start from a
  worn, not pristine, distribution.

Everything is drawn from one ``random.Random(profile.seed)`` stream
walked in fixed geometry order, so a profile applied twice to the same
configuration produces bit-identical array state.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Optional

from repro.common import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.ssd.ssd import SSD


@dataclass(frozen=True)
class DriveAgeProfile:
    """How worn the drive is when the simulation starts.

    The profile is pure configuration data (frozen, hashable, folded into
    the sweep cache key); :func:`apply_drive_age` turns it into array
    state.
    """

    name: str = "fresh"
    #: Free-block fraction the pre-aged drive starts at.  Below the FTL's
    #: ``gc_start_threshold`` (0.05 by default) the garbage collector is
    #: under pressure from the first foreground write.
    free_fraction: float = 0.99
    #: Fragmented blocks per plane: the pre-seeded GC victim population.
    fragmented_blocks_per_plane: int = 0
    #: Fraction of each fragmented block's pages that are programmed.
    fragment_fill_fraction: float = 0.25
    #: Probability a programmed fragment page is invalid (reclaimable).
    fragment_invalid_fraction: float = 0.5
    #: Erase count of the (unmaterialized) static cold blocks.
    cold_erase_count: int = 0
    #: Per-fragment-block erase counts are drawn uniformly from this range.
    fragment_erase_count_min: int = 0
    fragment_erase_count_max: int = 0
    #: Write amplification the drive's (unsimulated) history had already
    #: reached; reported as the floor of the measured WA metric.
    prior_write_amplification: float = 1.0
    #: Seed of the profile's private RNG stream.
    seed: int = 20260807

    def __post_init__(self) -> None:
        if not 0.0 < self.free_fraction <= 1.0:
            raise ConfigurationError(
                "DriveAgeProfile.free_fraction must be in (0, 1]")
        if self.fragmented_blocks_per_plane < 0:
            raise ConfigurationError(
                "DriveAgeProfile.fragmented_blocks_per_plane must be >= 0")
        if not 0.0 < self.fragment_fill_fraction <= 1.0:
            raise ConfigurationError(
                "DriveAgeProfile.fragment_fill_fraction must be in (0, 1]")
        if not 0.0 <= self.fragment_invalid_fraction <= 1.0:
            raise ConfigurationError(
                "DriveAgeProfile.fragment_invalid_fraction must be in "
                "[0, 1]")
        if self.cold_erase_count < 0 or self.fragment_erase_count_min < 0:
            raise ConfigurationError(
                "DriveAgeProfile erase counts must be >= 0")
        if self.fragment_erase_count_max < self.fragment_erase_count_min:
            raise ConfigurationError(
                "DriveAgeProfile.fragment_erase_count_max must be >= "
                "fragment_erase_count_min")
        if self.prior_write_amplification < 1.0:
            raise ConfigurationError(
                "DriveAgeProfile.prior_write_amplification must be >= 1.0")


#: A drive half-way through its life: free space still above the GC start
#: threshold most of the time, mild fragmentation, moderate wear.
MID_LIFE_PROFILE = DriveAgeProfile(
    name="mid-life",
    free_fraction=0.048,
    fragmented_blocks_per_plane=2,
    fragment_fill_fraction=0.25,
    fragment_invalid_fraction=0.7,
    cold_erase_count=1200,
    fragment_erase_count_min=900,
    fragment_erase_count_max=1600,
    prior_write_amplification=1.6,
)

#: A drive near end-of-life: free space below the GC start threshold (the
#: collector is busy from the first write), a larger victim population
#: with *more valid data per victim* (each reclaimed block costs more
#: relocation traffic), and a wide erase-count spread that trips the
#: static wear-leveler.
NEAR_EOL_PROFILE = DriveAgeProfile(
    name="near-eol",
    free_fraction=0.042,
    fragmented_blocks_per_plane=4,
    fragment_fill_fraction=0.25,
    fragment_invalid_fraction=0.45,
    cold_erase_count=2700,
    fragment_erase_count_min=2200,
    fragment_erase_count_max=4400,
    prior_write_amplification=2.8,
)

#: Named profiles, for CLI/docs discovery.
DRIVE_AGE_PROFILES: Dict[str, DriveAgeProfile] = {
    "mid-life": MID_LIFE_PROFILE,
    "near-eol": NEAR_EOL_PROFILE,
}


@dataclass(frozen=True)
class LifetimeConfig:
    """Platform-level lifetime knobs (a :class:`PlatformConfig` field).

    Defaults preserve the seed's behaviour bit-exactly: no pre-aging, no
    background engine, maintenance handled by the legacy synchronous path.
    """

    #: Run GC / wear-leveling as background traffic on the shared flash
    #: channels (:class:`~repro.ssd.lifetime.engine.BackgroundFlashEngine`)
    #: instead of the legacy synchronous latency charge.
    background_flash: bool = False
    #: Maximum page relocations one background step may issue; the engine
    #: is serialized (a step only starts after the previous one's flash
    #: reservations finished), so this bounds the background duty cycle.
    gc_pages_per_step: int = 24
    #: Static wear-leveling migrates at most this many blocks per run
    #: (real firmware runs static WL at a slow fixed cadence).
    wl_blocks_per_run: int = 4
    #: Pre-age the drive before the run (``None`` = factory fresh).
    drive_age: Optional[DriveAgeProfile] = None

    def __post_init__(self) -> None:
        if self.gc_pages_per_step < 1:
            raise ConfigurationError(
                "LifetimeConfig.gc_pages_per_step must be >= 1")
        if self.wl_blocks_per_run < 0:
            raise ConfigurationError(
                "LifetimeConfig.wl_blocks_per_run must be >= 0")


def apply_drive_age(ssd: "SSD", profile: DriveAgeProfile) -> None:
    """Pre-age an SSD's array in place (zero simulated time).

    Must run before dataset placement.  Filler logical pages live above
    the drive's logical capacity so they can never collide with workload
    LPAs; valid filler pages are registered in the FTL mapping (GC and
    wear-leveling relocate them through the ordinary
    :meth:`FlashTranslationLayer.relocate` path).  Operation counters are
    reset afterwards: the pre-aged state is history, not simulated work,
    so energy and wear-rate accounting start clean.
    """
    array = ssd.array
    ftl = ssd.ftl
    nand = array.config
    rng = random.Random(profile.seed)
    filler_lpa = nand.pages  # first LPA past the logical capacity
    fill_pages = max(1, int(profile.fragment_fill_fraction *
                            nand.pages_per_block))
    for channel in range(nand.channels):
        for die in range(nand.dies_per_channel):
            for plane_index in range(nand.planes_per_die):
                plane = array.die(channel, die).plane(plane_index)
                blocks = plane.block_count
                fragmented = min(profile.fragmented_blocks_per_plane,
                                 max(0, blocks - 2))
                free_target = max(2, round(profile.free_fraction * blocks))
                cold = max(0, blocks - fragmented - free_target)
                array.mark_cold_blocks(channel, die, plane_index, cold,
                                       profile.cold_erase_count)
                for offset in range(fragmented):
                    block = plane.block(cold + offset)
                    for _ in range(fill_pages):
                        lpa = filler_lpa
                        filler_lpa += 1
                        ppa = array.program_page(block.address, lpa)
                        if rng.random() < profile.fragment_invalid_fraction:
                            array.invalidate_page(ppa)
                        else:
                            ftl.mapping[lpa] = ppa
                    block.erase_count = rng.randint(
                        profile.fragment_erase_count_min,
                        profile.fragment_erase_count_max)
    # Pre-aging is replayed history, not simulated work: the operation
    # counters feed wear-rate/energy views of *this run*, so they restart
    # at zero (erase *counts* on the blocks themselves keep the history).
    array.reads = 0
    array.programs = 0
    array.erases = 0
