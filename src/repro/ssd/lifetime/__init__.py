"""Device-lifetime subsystem: background flash activity and drive aging.

The seed model ships a garbage collector and a wear-leveler but runs them
synchronously inside the foreground write path, and every simulation
starts from a factory-fresh drive -- so no experiment ever sees GC.  This
package makes device lifetime a first-class simulation axis:

* :class:`~repro.ssd.lifetime.aging.DriveAgeProfile` pre-ages the NAND
  array deterministically (static cold data, fragmented blocks with
  seeded invalid-page distributions, per-block erase counts) so a run
  starts mid-life or near end-of-life instead of factory fresh;
* :class:`~repro.ssd.lifetime.engine.BackgroundFlashEngine` drives GC and
  wear-leveling *during* the simulation, charging relocation reads,
  programs and erases on the shared flash channels and dies -- foreground
  movements genuinely queue behind background traffic, which the
  contention monitor (:mod:`repro.core.contention`) then observes as
  movement overrun with zero new coupling;
* :class:`~repro.ssd.lifetime.aging.LifetimeConfig` is the platform-level
  knob bundle (engine on/off, per-step relocation budget, drive-age
  profile), folded into the sweep cache key like every other
  :class:`~repro.core.platform.PlatformConfig` field.

With the defaults (engine off, no profile) the storage model behaves
bit-exactly like the seed, mirroring the ``contention_feedback``
contract.
"""

from repro.ssd.lifetime.aging import (DRIVE_AGE_PROFILES, MID_LIFE_PROFILE,
                                      NEAR_EOL_PROFILE, DriveAgeProfile,
                                      LifetimeConfig, apply_drive_age)
from repro.ssd.lifetime.engine import BackgroundFlashEngine, MaintenanceStats

__all__ = [
    "DRIVE_AGE_PROFILES", "MID_LIFE_PROFILE", "NEAR_EOL_PROFILE",
    "DriveAgeProfile", "LifetimeConfig", "apply_drive_age",
    "BackgroundFlashEngine", "MaintenanceStats",
]
