"""Background flash-maintenance engine.

The seed charges GC / wear-leveling as a scalar latency added to the
triggering foreground write (:meth:`SSD.run_maintenance`) -- background
traffic never touches the shared channels, so it can never contend with
foreground data movement.  :class:`BackgroundFlashEngine` replaces that
path when ``LifetimeConfig.background_flash`` is on: every relocation
read/program and every erase is issued through
:class:`~repro.ssd.flash_controller.FlashChannelSubsystem`, reserving the
victim's channel and die like any foreground operation.  Foreground
movements that land on the same channel or die genuinely queue behind the
background chain, the movement-overrun those queues cause is exactly what
the contention monitor (:mod:`repro.core.contention`) samples, and the
cost model reprices offloading under GC pressure with zero new coupling.

Like real firmware, background work is *serialized and budgeted*: one
maintenance chain runs at a time (a pulse while the previous chain's
reservations are still in flight does nothing), and one chain relocates at
most ``gc_pages_per_step`` pages.  Only when free blocks become critically
scarce does the engine throttle the foreground write itself -- the
near-EOL write cliff.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from repro.ssd.lifetime.aging import LifetimeConfig
from repro.ssd.nand import FlashBlock, PhysicalBlockAddress

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.energy.model import EnergyAccount
    from repro.ssd.ssd import SSD


@dataclass
class MaintenanceStats:
    """Device-maintenance view of one run (attached to ExecutionResult).

    Populated by :meth:`SSDPlatform.maintenance_stats` from the background
    engine's counters (or the legacy synchronous GC/WL counters when the
    engine is off) plus the array's wear statistics.
    """

    background_enabled: bool = False
    drive_age: str = "fresh"
    gc_steps: int = 0
    gc_relocated_pages: int = 0
    gc_erased_blocks: int = 0
    wl_runs: int = 0
    wl_migrated_pages: int = 0
    wl_erased_blocks: int = 0
    #: Simulated time the background engine kept flash resources reserved.
    background_busy_ns: float = 0.0
    #: Foreground-write stall imposed by critical free-block pressure.
    foreground_stall_ns: float = 0.0
    free_block_fraction: float = 1.0
    erase_count_min: int = 0
    erase_count_mean: float = 0.0
    erase_count_max: int = 0
    erase_count_variance: float = 0.0
    wear_imbalance: float = 1.0
    #: Floor of the drive's historical WA (profile) and the measured
    #: ``1 + relocated / host_writes`` of this run.
    write_amplification: float = 1.0
    #: Contention-monitor samples taken during the run (movement overruns
    #: observed while background traffic shared the channels).
    contention_samples: int = 0


class BackgroundFlashEngine:
    """Drives GC and wear-leveling as shared-channel background traffic."""

    def __init__(self, ssd: "SSD", config: LifetimeConfig,
                 energy: Optional["EnergyAccount"] = None) -> None:
        self.ssd = ssd
        self.config = config
        self.energy = energy
        #: End time of the in-flight maintenance chain; a pulse before
        #: this does nothing (one chain at a time, like firmware).
        self._busy_until = 0.0
        #: GC hysteresis: once triggered at the start threshold, keep
        #: collecting until the stop threshold (seed semantics).
        self._gc_active = False
        #: Block the wear-leveler is currently draining across pulses.
        self._wl_target: Optional[PhysicalBlockAddress] = None
        #: Free-block fraction below which foreground writes stall behind
        #: GC (write throttling; real drives hit this cliff near EOL).
        self._critical_fraction = (
            ssd.config.ftl.gc_start_threshold / 2.0)
        self.gc_steps = 0
        self.gc_relocated_pages = 0
        self.gc_erased_blocks = 0
        self.wl_runs = 0
        self.wl_migrated_pages = 0
        self.wl_erased_blocks = 0
        self.busy_ns = 0.0
        self.foreground_stall_ns = 0.0

    # -- Foreground hook -----------------------------------------------------

    def pulse(self, now: float) -> float:
        """Give the firmware a maintenance opportunity at time ``now``.

        Called from the foreground write path (every write/eviction is a
        free-block consumer).  Returns the foreground stall in ns: zero
        unless free blocks are critically scarce, in which case the write
        is throttled behind a synchronous GC step.
        """
        ssd = self.ssd
        if ssd.ftl.free_block_fraction() < self._critical_fraction:
            self._gc_step(max(now, self._busy_until))
            stall = max(0.0, self._busy_until - now)
            if stall:
                self.foreground_stall_ns += stall
                ssd.stats.maintenance_latency_ns += stall
            return stall
        if now < self._busy_until:
            return 0.0
        if self._gc_active or ssd.gc.needs_collection():
            self._gc_step(now)
        elif (self.wl_erased_blocks < self.config.wl_blocks_per_run
              and (self._wl_target is not None
                   or ssd.wear_leveler.needs_leveling())):
            self._wl_step(now)
        return 0.0

    # -- GC ------------------------------------------------------------------

    def _gc_step(self, now: float) -> None:
        """Run one budgeted garbage-collection step starting at ``now``."""
        ssd = self.ssd
        gc = ssd.gc
        if ssd.ftl.free_block_fraction() >= self.ssd.config.ftl.gc_stop_threshold:
            self._gc_active = False
            return
        victim = gc.select_victim()
        if victim is None:
            self._gc_active = False
            return
        self._gc_active = True
        gc.invocations += 1
        ssd.stats.gc_invocations += 1
        self.gc_steps += 1
        t, relocated = self._drain(now, victim, self.config.gc_pages_per_step)
        self.gc_relocated_pages += relocated
        gc.total_relocated += relocated
        if victim.valid_pages == 0 and victim.write_cursor > 0:
            t = self._erase(t, victim)
            self.gc_erased_blocks += 1
            gc.total_erased += 1
        self._settle(now, t)

    # -- Wear-leveling -------------------------------------------------------

    def _wl_step(self, now: float) -> None:
        """Advance the static wear-leveling migration by one budget step."""
        ssd = self.ssd
        wl = ssd.wear_leveler
        if self._wl_target is not None:
            block = ssd.array.block(self._wl_target)
            if block.write_cursor == 0:
                # Someone else (GC) reclaimed it; pick a new target later.
                self._wl_target = None
                return
        else:
            block = wl.coldest_block()
            if block is None:
                return
            self._wl_target = block.address
            self.wl_runs += 1
            wl.invocations += 1
            ssd.stats.wl_invocations += 1
        t, migrated = self._drain(now, block, self.config.gc_pages_per_step)
        self.wl_migrated_pages += migrated
        wl.total_migrated += migrated
        if block.valid_pages == 0 and block.write_cursor > 0:
            t = self._erase(t, block)
            self.wl_erased_blocks += 1
            self._wl_target = None
        self._settle(now, t)

    # -- Shared flash mechanics ----------------------------------------------

    def _drain(self, now: float, block: FlashBlock,
               budget: int) -> tuple:
        """Relocate up to ``budget`` of ``block``'s valid pages.

        Each relocation reads the page out of the victim's die and
        programs it at the allocator-chosen destination, both through the
        shared channel subsystem, chained back-to-back (one firmware
        engine).  Returns ``(finish_time, pages_relocated)``.  The page
        list is re-checked live (never erase on a stale snapshot): the
        allocator may stripe relocations *into* the block being drained,
        in which case the caller simply finds ``valid_pages > 0`` and
        retries on a later pulse.
        """
        ssd = self.ssd
        channels = ssd.channels
        ftl = ssd.ftl
        address = block.address
        cold = ftl.config.hot_cold_separation
        t = now
        relocated = 0
        for lpa in block.valid_lpas():
            if relocated >= budget:
                break
            read = channels.read_page(t, address.channel, address.die,
                                      transfer_out=True)
            new_ppa = ftl.relocate(lpa, cold=cold)
            program = channels.program_page(read.end, new_ppa.channel,
                                            new_ppa.die)
            t = program.end
            relocated += 1
        if relocated and self.energy is not None:
            self.energy.charge_run(flash_read_pages=relocated,
                                   flash_program_pages=relocated,
                                   dma_pages=2 * relocated)
        return t, relocated

    def _erase(self, now: float, block: FlashBlock) -> float:
        """Erase a fully-drained block on its channel/die; return end time."""
        address = block.address
        timing = self.ssd.channels.erase_block(now, address.channel,
                                               address.die)
        self.ssd.array.erase_block(address)
        if self.energy is not None:
            self.energy.add_data_movement(
                "flash-erase",
                self.energy.ssd_energy.flash_erase_nj_per_block)
        return timing.end

    def _settle(self, now: float, finish: float) -> None:
        if finish > now:
            self._busy_until = finish
            self.busy_ns += finish - now
