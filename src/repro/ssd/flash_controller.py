"""Flash controllers and flash channels.

A modern SSD has one flash controller (FC) per channel (Section 2.1).  The
FC issues commands to the dies on its channel, moves pages between the die
page buffers and the controller over the shared channel bus, and performs
ECC decoding/encoding.  The channel is the bandwidth-limited shared resource
whose contention the paper repeatedly identifies as the limiting factor of
ISP and PuD-SSD (operands must cross it) and of naive IFP+ISP combinations.

:class:`FlashChannelSubsystem` models the full set of channels and dies as
reservation-based resources and exposes the timing paths the rest of the
simulator needs:

* ``read_page`` -- sense a page inside the die (tR) and optionally stream it
  out over the channel (tDMA + transfer).
* ``program_page`` -- stream a page in and program it (tPROG).
* ``erase_block`` -- erase inside the die.
* ``in_flash_operation`` -- occupy the die (not the channel) for an in-flash
  computation such as a multi-wordline-sensing AND/OR.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.common import SimulationError
from repro.ssd.config import NANDConfig
from repro.ssd.events import BusGroup, MultiServer, Reservation


@dataclass
class FlashOperationTiming:
    """Timing of one flash operation decomposed into its phases."""

    start: float
    die_done: float
    end: float
    channel_busy_ns: float = 0.0

    @property
    def latency(self) -> float:
        return self.end - self.start


class FlashChannelSubsystem:
    """Reservation model of all flash channels, controllers and dies."""

    def __init__(self, config: NANDConfig) -> None:
        self.config = config
        self.channels = BusGroup("flash-channel", config.channels,
                                 config.channel_bandwidth_bytes_per_ns)
        # One MultiServer per channel models the dies behind that channel;
        # dies execute sense/program/erase/in-flash ops independently.
        self.dies = [MultiServer(f"dies[ch{c}]", config.dies_per_channel)
                     for c in range(config.channels)]
        # ECC decode latency approximated as part of the FC pipeline.
        self.ecc_latency_ns = 500.0

    def _check_channel(self, channel: int) -> None:
        if not 0 <= channel < self.config.channels:
            raise SimulationError(f"channel {channel} out of range")

    # -- Data-path operations -----------------------------------------------

    def read_page(self, now: float, channel: int, die: int, *,
                  transfer_out: bool = True) -> FlashOperationTiming:
        """Sense a page and (optionally) transfer it to the controller."""
        self._check_channel(channel)
        # Command transfer over the channel.
        cmd = self.channels.transfer(
            now, self.config.command_latency_ns *
            self.config.channel_bandwidth_bytes_per_ns, channel=channel)
        # Page sensing occupies the die.
        sense = self.dies[channel].reserve(cmd.end,
                                           self.config.read_latency_ns,
                                           server_index=die)
        if not transfer_out:
            return FlashOperationTiming(start=now, die_done=sense.end,
                                        end=sense.end,
                                        channel_busy_ns=cmd.end - cmd.start)
        # Page transfer: tDMA plus streaming the page over the channel bus.
        dma_end = sense.end + self.config.dma_latency_ns
        out = self.channels.transfer(dma_end, self.config.page_size_bytes,
                                     channel=channel)
        end = out.end + self.ecc_latency_ns
        busy = (cmd.end - cmd.start) + (out.end - out.start)
        return FlashOperationTiming(start=now, die_done=sense.end, end=end,
                                    channel_busy_ns=busy)

    def read_run_batch(self, arrivals: np.ndarray, channels: np.ndarray,
                       dies: np.ndarray, *,
                       transfer_out: bool = True) -> np.ndarray:
        """Batched :meth:`read_page`: per-page end times as an ndarray.

        The inner loop of the vectorized movement engine's flash leg.
        Pages group by channel (a page only ever touches its own channel
        bus and die pool, so channels are independent); within a channel
        the exact command/sense/stream-out reservation sequence of
        :meth:`read_page` is replayed on local floats and the bus/die
        bookkeeping (free times, busy time, bytes moved, job counts) is
        written back once.  Bit-identical to per-page calls in order.
        """
        n = len(arrivals)
        ends = np.empty(n, dtype=np.float64)
        config = self.config
        cmd_bytes = (config.command_latency_ns *
                     config.channel_bandwidth_bytes_per_ns)
        page_bytes = config.page_size_bytes
        t_read = config.read_latency_ns
        t_dma = config.dma_latency_ns
        ecc = self.ecc_latency_ns
        for c in np.unique(channels):
            channel = int(c)
            self._check_channel(channel)
            positions = np.flatnonzero(channels == c)
            bus = self.channels.buses[channel]
            pool = self.dies[channel]
            server = bus._server
            cmd_d = bus.transfer_time(cmd_bytes)
            page_d = bus.transfer_time(page_bytes)
            free = server._free_at
            busy = server.busy_time
            moved = bus.bytes_moved
            die_free = pool._free_at
            die_busy = pool.busy_time
            sub_ends = []
            append = sub_ends.append
            pairs = zip(arrivals[positions].tolist(),
                        dies[positions].tolist())
            if transfer_out:
                for arrival, die in pairs:
                    moved += cmd_bytes
                    cmd_end = (arrival if arrival > free else free) + cmd_d
                    free = cmd_end
                    busy += cmd_d
                    die_at = die_free[die]
                    sense_end = (cmd_end if cmd_end > die_at
                                 else die_at) + t_read
                    die_free[die] = sense_end
                    die_busy += t_read
                    dma_end = sense_end + t_dma
                    moved += page_bytes
                    out_end = (dma_end if dma_end > free else free) + page_d
                    free = out_end
                    busy += page_d
                    append(out_end + ecc)
                server.jobs += 2 * len(positions)
            else:
                for arrival, die in pairs:
                    moved += cmd_bytes
                    cmd_end = (arrival if arrival > free else free) + cmd_d
                    free = cmd_end
                    busy += cmd_d
                    die_at = die_free[die]
                    sense_end = (cmd_end if cmd_end > die_at
                                 else die_at) + t_read
                    die_free[die] = sense_end
                    die_busy += t_read
                    append(sense_end)
                server.jobs += len(positions)
            server._free_at = free
            server.busy_time = busy
            bus.bytes_moved = moved
            pool.busy_time = die_busy
            pool.jobs += len(positions)
            ends[positions] = sub_ends
        return ends

    def program_page(self, now: float, channel: int,
                     die: int) -> FlashOperationTiming:
        """Transfer a page into the die and program it (SLC mode)."""
        self._check_channel(channel)
        xfer = self.channels.transfer(now, self.config.page_size_bytes,
                                      channel=channel)
        dma_end = xfer.end + self.config.dma_latency_ns
        program = self.dies[channel].reserve(
            dma_end, self.config.program_latency_ns, server_index=die)
        return FlashOperationTiming(start=now, die_done=program.end,
                                    end=program.end,
                                    channel_busy_ns=xfer.end - xfer.start)

    def erase_block(self, now: float, channel: int,
                    die: int) -> FlashOperationTiming:
        self._check_channel(channel)
        cmd = self.channels.transfer(
            now, self.config.command_latency_ns *
            self.config.channel_bandwidth_bytes_per_ns, channel=channel)
        erase = self.dies[channel].reserve(cmd.end,
                                           self.config.erase_latency_ns,
                                           server_index=die)
        return FlashOperationTiming(start=now, die_done=erase.end,
                                    end=erase.end,
                                    channel_busy_ns=cmd.end - cmd.start)

    def in_flash_operation(self, now: float, channel: int, die: int,
                           duration_ns: float) -> FlashOperationTiming:
        """Occupy a die for an in-flash computation (no channel traffic).

        The command still needs to reach the die over the channel, but the
        operand pages never leave the flash array -- this is the whole point
        of IFP (Section 2.2).
        """
        self._check_channel(channel)
        cmd = self.channels.transfer(
            now, self.config.command_latency_ns *
            self.config.channel_bandwidth_bytes_per_ns, channel=channel)
        op = self.dies[channel].reserve(cmd.end, duration_ns,
                                        server_index=die)
        return FlashOperationTiming(start=now, die_done=op.end, end=op.end,
                                    channel_busy_ns=cmd.end - cmd.start)

    def stream_page_out(self, now: float, channel: int) -> Reservation:
        """Move one already-sensed page from the page buffer to the FC."""
        self._check_channel(channel)
        start = now + self.config.dma_latency_ns
        return self.channels.transfer(start, self.config.page_size_bytes,
                                      channel=channel)

    # -- Estimation helpers (no reservation) ----------------------------------

    def uncontended_read_latency(self, *, transfer_out: bool = True) -> float:
        latency = (self.config.command_latency_ns +
                   self.config.read_latency_ns)
        if transfer_out:
            latency += (self.config.dma_latency_ns +
                        self.channels.transfer_time(
                            self.config.page_size_bytes) +
                        self.ecc_latency_ns)
        return latency

    def uncontended_program_latency(self) -> float:
        return (self.channels.transfer_time(self.config.page_size_bytes) +
                self.config.dma_latency_ns + self.config.program_latency_ns)

    def channel_utilization(self, elapsed: float) -> float:
        return self.channels.utilization(elapsed)

    def die_utilization(self, elapsed: float) -> float:
        if elapsed <= 0:
            return 0.0
        total = sum(pool.utilization(elapsed) for pool in self.dies)
        return total / len(self.dies)
