"""NAND flash subsystem model.

Models the physical organisation described in Section 2.1 / Fig. 1 and 3 of
the paper: channels connect flash controllers to flash chips; each chip has
1-4 independently operating dies; each die has planes; each plane holds
blocks of pages; a page is the read/program granularity and maps to one
wordline of a block.

The model tracks page state (free / valid / invalid), per-block erase
counts and per-die occupancy, which is what the FTL, garbage collector and
wear-leveler need.  Timing comes from :class:`repro.ssd.config.NANDConfig`
and is consumed by the flash controller and the in-flash processing model.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional

from repro.common import SimulationError
from repro.ssd.config import NANDConfig


class PageState(enum.Enum):
    FREE = "free"
    VALID = "valid"
    INVALID = "invalid"


@dataclass(frozen=True, order=True)
class PhysicalPageAddress:
    """Physical address of one flash page."""

    channel: int
    die: int
    plane: int
    block: int
    page: int

    def block_address(self) -> "PhysicalBlockAddress":
        return PhysicalBlockAddress(self.channel, self.die, self.plane,
                                    self.block)


@dataclass(frozen=True, order=True)
class PhysicalBlockAddress:
    """Physical address of one flash block."""

    channel: int
    die: int
    plane: int
    block: int

    def page(self, page: int) -> PhysicalPageAddress:
        return PhysicalPageAddress(self.channel, self.die, self.plane,
                                   self.block, page)


class FlashBlock:
    """One erase block: a column of pages sharing wordlines.

    Page state is stored sparsely (only programmed pages are tracked) so
    that instantiating a full-size multi-terabyte SSD with hundreds of
    thousands of blocks stays cheap -- a block that has never been
    programmed carries no per-page storage at all.
    """

    __slots__ = ("address", "pages", "erase_count", "write_cursor",
                 "_stored", "_invalid")

    def __init__(self, address: PhysicalBlockAddress, pages: int) -> None:
        self.address = address
        self.pages = pages
        self.erase_count = 0
        #: Pages are programmed strictly in order within a block (NAND
        #: constraint); this cursor is the next programmable page index.
        self.write_cursor = 0
        #: Logical page stored in each *valid* physical page.
        self._stored: Dict[int, int] = {}
        #: Physical page indices that have been invalidated.
        self._invalid: set = set()

    @property
    def page_states(self) -> List[PageState]:
        """Dense page-state view (built on demand; used by tests)."""
        states = []
        for page in range(self.pages):
            if page >= self.write_cursor:
                states.append(PageState.FREE)
            elif page in self._invalid:
                states.append(PageState.INVALID)
            else:
                states.append(PageState.VALID)
        return states

    def state_of(self, page: int) -> PageState:
        if page >= self.write_cursor:
            return PageState.FREE
        if page in self._invalid:
            return PageState.INVALID
        return PageState.VALID

    def stored_lpa_of(self, page: int) -> Optional[int]:
        return self._stored.get(page)

    @property
    def free_pages(self) -> int:
        return self.pages - self.write_cursor

    @property
    def valid_pages(self) -> int:
        return len(self._stored)

    @property
    def invalid_pages(self) -> int:
        return len(self._invalid)

    @property
    def is_full(self) -> bool:
        return self.write_cursor >= self.pages

    def program(self, lpa: int) -> int:
        """Program the next free page with logical page ``lpa``.

        Returns the physical page index that was programmed.
        """
        if self.is_full:
            raise SimulationError(
                f"block {self.address} is full; erase before programming")
        page = self.write_cursor
        self._stored[page] = lpa
        self.write_cursor += 1
        return page

    def invalidate(self, page: int) -> None:
        if self.state_of(page) is not PageState.VALID:
            raise SimulationError(
                f"page {page} of block {self.address} is not valid")
        self._invalid.add(page)
        self._stored.pop(page, None)

    def erase(self) -> None:
        self._stored.clear()
        self._invalid.clear()
        self.write_cursor = 0
        self.erase_count += 1

    def valid_lpas(self) -> List[int]:
        """Logical pages that must be relocated before erasing this block."""
        return list(self._stored.values())


class FlashPlane:
    """A plane: a set of blocks sharing the die's peripheral circuitry.

    Blocks are materialized lazily: a full-size SSD has hundreds of
    thousands of blocks, and eagerly building a :class:`FlashBlock` object
    for each dominated platform-construction time.  A block that has never
    been touched is, by definition, free and erased zero times, so only
    touched blocks carry objects; aggregate queries account for the
    untouched remainder arithmetically.
    """

    def __init__(self, channel: int, die: int, plane: int,
                 blocks: int, pages_per_block: int) -> None:
        self.channel = channel
        self.die = die
        self.plane = plane
        self.block_count = blocks
        self.pages_per_block = pages_per_block
        self._blocks: Dict[int, FlashBlock] = {}
        #: Blocks ``[0, cold_blocks)`` hold *static cold data* placed by a
        #: drive-age profile: fully valid, never a GC/WL victim, invisible
        #: to the allocator -- so, like untouched free blocks, they are
        #: accounted arithmetically instead of being materialized (a
        #: near-EOL full-size drive would otherwise need ~500k block
        #: objects and ~50M page entries).
        self.cold_blocks = 0
        #: Erase count attributed to each unmaterialized cold block.
        self.cold_erase_count = 0

    def block(self, index: int) -> FlashBlock:
        block = self._blocks.get(index)
        if block is None:
            if not 0 <= index < self.block_count:
                raise SimulationError(
                    f"block {index} out of range for plane "
                    f"({self.channel}, {self.die}, {self.plane})")
            block = FlashBlock(
                PhysicalBlockAddress(self.channel, self.die, self.plane,
                                     index),
                self.pages_per_block)
            self._blocks[index] = block
        return block

    def is_free_block(self, index: int) -> bool:
        """Whether a block is free, without materializing it."""
        block = self._blocks.get(index)
        if block is None:
            return index >= self.cold_blocks
        return block.write_cursor == 0 and block.valid_pages == 0

    def materialized_blocks(self) -> Iterator[FlashBlock]:
        """The blocks that have been touched (others are free and erased)."""
        return iter(self._blocks.values())

    def unmaterialized_cold_blocks(self) -> int:
        """Cold blocks still accounted arithmetically (never materialized).

        A cold block can only materialize through an explicit
        :meth:`block` call (the allocator and GC never pick one), but the
        accounting stays correct if a test does it anyway.
        """
        if not self.cold_blocks:
            return 0
        return self.cold_blocks - sum(1 for index in self._blocks
                                      if index < self.cold_blocks)

    def free_blocks(self) -> int:
        return (self.block_count - len(self._blocks) -
                self.unmaterialized_cold_blocks() +
                sum(1 for b in self._blocks.values()
                    if b.write_cursor == 0 and b.valid_pages == 0))


class FlashDie:
    """A die: the unit of independent command execution on a chip."""

    def __init__(self, channel: int, die: int, planes: int,
                 blocks_per_plane: int, pages_per_block: int) -> None:
        self.channel = channel
        self.die = die
        self.planes = [
            FlashPlane(channel, die, p, blocks_per_plane, pages_per_block)
            for p in range(planes)
        ]

    def plane(self, index: int) -> FlashPlane:
        return self.planes[index]


class NANDArray:
    """The complete NAND flash array of the SSD."""

    def __init__(self, config: NANDConfig) -> None:
        self.config = config
        self.dies = [
            [FlashDie(channel, die, config.planes_per_die,
                      config.blocks_per_plane, config.pages_per_block)
             for die in range(config.dies_per_channel)]
            for channel in range(config.channels)
        ]
        # Operation counters used by the energy model and tests.
        self.reads = 0
        self.programs = 0
        self.erases = 0
        # Free-block counter maintained incrementally so that GC trigger
        # checks stay O(1) even for full-size (multi-terabyte) geometries.
        self._free_blocks = self.config.blocks

    # -- Navigation --------------------------------------------------------

    def die(self, channel: int, die: int) -> FlashDie:
        return self.dies[channel][die]

    def block(self, address: PhysicalBlockAddress) -> FlashBlock:
        return (self.dies[address.channel][address.die]
                .planes[address.plane].block(address.block))

    def iter_planes(self) -> Iterator[FlashPlane]:
        """Iterate over every plane in geometry order."""
        for channel_dies in self.dies:
            for die in channel_dies:
                yield from die.planes

    def iter_blocks(self) -> Iterator[FlashBlock]:
        """Iterate over the *materialized* blocks.

        Untouched blocks are free, hold no valid or invalid pages and have
        an erase count of zero -- and cold blocks (drive-age profiles) are
        deliberately invisible here, exactly as static data pinned outside
        the FTL's reach -- so every consumer of this iterator (GC victim
        selection, wear-leveling, occupancy statistics) sees the same
        answers as a dense scan of the reclaimable population.
        """
        for plane in self.iter_planes():
            yield from plane.materialized_blocks()

    # -- Drive aging ---------------------------------------------------------

    def mark_cold_blocks(self, channel: int, die: int, plane: int,
                         count: int, erase_count: int = 0) -> None:
        """Declare blocks ``[0, count)`` of a plane as static cold data.

        Cold blocks are fully valid (they hold a drive-age profile's
        replayed history), so they are *not free*: the free-block counter
        drops by ``count`` without materializing anything.  Must run
        before the plane is otherwise touched.
        """
        plane_obj = self.dies[channel][die].planes[plane]
        if not 0 <= count <= plane_obj.block_count:
            raise SimulationError(
                f"cannot mark {count} cold blocks in a plane of "
                f"{plane_obj.block_count}")
        if plane_obj.cold_blocks:
            raise SimulationError(
                f"plane ({channel}, {die}, {plane}) already has cold blocks")
        for index in plane_obj._blocks:
            if index < count:
                raise SimulationError(
                    f"block {index} of plane ({channel}, {die}, {plane}) is "
                    "already materialized; age the drive before placement")
        plane_obj.cold_blocks = count
        plane_obj.cold_erase_count = erase_count
        self._free_blocks -= count

    # -- State-changing operations ------------------------------------------

    def program_page(self, block_address: PhysicalBlockAddress,
                     lpa: int) -> PhysicalPageAddress:
        block = self.block(block_address)
        was_free = block.write_cursor == 0
        page = block.program(lpa)
        if was_free:
            self._free_blocks -= 1
        self.programs += 1
        return block_address.page(page)

    def read_page(self, address: PhysicalPageAddress) -> Optional[int]:
        block = self.block(address.block_address())
        self.reads += 1
        if block.state_of(address.page) is not PageState.VALID:
            return None
        return block.stored_lpa_of(address.page)

    def invalidate_page(self, address: PhysicalPageAddress) -> None:
        self.block(address.block_address()).invalidate(address.page)

    def erase_block(self, address: PhysicalBlockAddress) -> None:
        block = self.block(address)
        was_used = block.write_cursor > 0
        block.erase()
        if was_used:
            self._free_blocks += 1
        self.erases += 1

    # -- Aggregate statistics ------------------------------------------------

    @property
    def total_blocks(self) -> int:
        return self.config.blocks

    def free_block_count(self) -> int:
        return self._free_blocks

    def valid_page_count(self) -> int:
        return sum(block.valid_pages for block in self.iter_blocks())

    def _erase_count_moments(self) -> tuple:
        """(min, max, sum, sum-of-squares, total) over *all* blocks.

        Materialized blocks contribute their own counts; unmaterialized
        cold blocks contribute their plane's cold erase count; the plain
        untouched remainder contributes zeros -- so the moments match a
        dense scan without materializing anything.
        """
        counts = []
        cold_total = 0
        cold_sum = 0
        cold_sq = 0
        cold_min: Optional[int] = None
        cold_max = 0
        for plane in self.iter_planes():
            counts.extend(block.erase_count
                          for block in plane.materialized_blocks())
            cold = plane.unmaterialized_cold_blocks()
            if cold:
                erase_count = plane.cold_erase_count
                cold_total += cold
                cold_sum += cold * erase_count
                cold_sq += cold * erase_count * erase_count
                cold_min = (erase_count if cold_min is None
                            else min(cold_min, erase_count))
                cold_max = max(cold_max, erase_count)
        total_blocks = self.total_blocks
        plain_untouched = total_blocks - len(counts) - cold_total
        minima = []
        if counts:
            minima.append(min(counts))
        if cold_total:
            minima.append(cold_min)
        if plain_untouched:
            minima.append(0)
        minimum = min(minima) if minima else 0
        maximum = max(max(counts, default=0), cold_max)
        total_sum = sum(counts) + cold_sum
        total_sq = sum(count * count for count in counts) + cold_sq
        return minimum, maximum, total_sum, total_sq, total_blocks

    def erase_count_stats(self) -> tuple:
        """Return (min, mean, max) erase counts across all blocks.

        Computed over the materialized blocks, the cold remainder and the
        untouched remainder, so the statistics match a dense scan.
        """
        minimum, maximum, total_sum, _, total = self._erase_count_moments()
        mean = total_sum / total if total else 0.0
        return minimum, mean, maximum

    def erase_count_variance(self) -> float:
        """Population variance of per-block erase counts (wear spread)."""
        _, _, total_sum, total_sq, total = self._erase_count_moments()
        if not total:
            return 0.0
        mean = total_sum / total
        return max(0.0, total_sq / total - mean * mean)

    # -- Timing helpers ------------------------------------------------------

    def read_time_ns(self) -> float:
        """SLC-mode page sensing latency (tR)."""
        return self.config.read_latency_ns

    def program_time_ns(self) -> float:
        return self.config.program_latency_ns

    def erase_time_ns(self) -> float:
        return self.config.erase_latency_ns

    def page_transfer_time_ns(self) -> float:
        """Page-buffer <-> flash-controller DMA time for one page (tDMA)."""
        return self.config.dma_latency_ns
