"""repro: reproduction of Conduit, programmer-transparent NDP in SSDs.

The public API re-exports the pieces a downstream user needs to:

* describe an application as a scalar loop program
  (:class:`repro.ScalarProgram`),
* vectorize it with Conduit's compile-time pass
  (:class:`repro.AutoVectorizer`),
* build the simulated NDP-capable SSD platform
  (:class:`repro.SSDPlatform`),
* execute the program under Conduit or any baseline offloading policy
  (:class:`repro.ConduitRuntime`, :class:`repro.HostRuntime`,
  :func:`repro.make_policy`), and
* inspect results (:class:`repro.ExecutionResult`).
"""

from repro.common import (BackendId, DataLocation, LatencyClass, OpClass,
                          OpType, Resource, SSD_RESOURCES)
from repro.core.backends import BackendRegistry, ComputeBackend
from repro.core.compiler import (AutoVectorizer, Loop, ScalarProgram,
                                 ScalarSection, ScalarStatement,
                                 VectorizerConfig, VectorProgram)
from repro.core.metrics import (ExecutionResult, energy_reduction,
                                geometric_mean, speedup)
from repro.core.offload import (ConduitPolicy, OffloadingPolicy,
                                POLICY_REGISTRY, make_policy)
from repro.core.platform import (PlatformConfig, SSDPlatform,
                                 backend_roster)
from repro.core.runtime import ConduitRuntime, HostRuntime, RuntimeConfig
from repro.dram.cxl import CXLPuDConfig

__version__ = "1.2.0"

__all__ = [
    "BackendId", "DataLocation", "LatencyClass", "OpClass", "OpType",
    "Resource", "SSD_RESOURCES", "BackendRegistry", "ComputeBackend",
    "AutoVectorizer", "Loop", "ScalarProgram",
    "ScalarSection", "ScalarStatement", "VectorizerConfig", "VectorProgram",
    "ExecutionResult", "energy_reduction", "geometric_mean", "speedup",
    "ConduitPolicy", "OffloadingPolicy", "POLICY_REGISTRY", "make_policy",
    "PlatformConfig", "SSDPlatform", "backend_roster", "ConduitRuntime",
    "HostRuntime", "RuntimeConfig", "CXLPuDConfig", "__version__",
]
