"""Seeded zipf hot/cold request streams as generative workloads.

Real serving traffic is skewed: a small hot set absorbs most accesses
(YCSB's zipfian default, every production block-trace study since MSR
Cambridge).  :class:`ZipfWorkload` synthesizes such a stream and lowers
it through exactly the same run-coalescing path as a parsed trace, so a
generative workload and a real trace are indistinguishable to the
compiler and every layer below it.

The generator is a *pure function* of its parameters: all randomness
comes from one ``random.Random(seed)``, so equal ``(seed, scale,
params)`` rebuild bit-identical programs anywhere -- the property the
parallel sweep engine and the on-disk cache rely on.  The address space
is divided into :attr:`ZipfParams.segments` rank-ordered segments whose
access probabilities follow ``1 / rank**theta``; the top-ranked segments
are packed into the hot ``hot_fraction`` of the footprint, so ``theta``
controls *how concentrated* the traffic is and ``hot_fraction`` *how
small* the region absorbing it is.  A configurable fraction of requests
are long sequential bursts -- the scans and compactions that give real
traces their vectorizable sections.
"""

from __future__ import annotations

import bisect
import random
from dataclasses import dataclass, fields
from typing import List, Optional, Tuple

from repro.common import MIB, SimulationError
from repro.workloads.traces.parse import SECTOR_BYTES, TraceRow
from repro.workloads.traces.workload import TraceWorkload

#: Registry name of the built-in skewed stream (default parameters).
ZIPF_HOT_NAME = "zipf-hot"

#: Mean inter-arrival time of the generated stream, in nanoseconds.
_MEAN_INTERARRIVAL_NS = 100_000


@dataclass(frozen=True)
class ZipfParams:
    """Parameters of a generated zipf hot/cold stream (all validated)."""

    #: Zipf skew exponent (0 = uniform; 0.99 is YCSB's default).
    theta: float = 0.99
    #: Fraction of the footprint holding the top-ranked (hot) segments.
    hot_fraction: float = 0.1
    #: Fraction of requests that are reads (the rest write).
    read_fraction: float = 0.7
    #: Total address span the stream touches, in bytes.
    footprint_bytes: int = 8 * MIB
    #: Number of requests generated.
    requests: int = 1024
    #: Size of an ordinary (small) request, in sectors.
    request_sectors: int = 16
    #: Probability a request is a long sequential burst instead.
    sequential_burst: float = 0.05
    #: Size of a sequential burst, in sectors (clamped to its segment).
    burst_sectors: int = 1024
    #: RNG seed: the stream is a pure function of this dataclass.
    seed: int = 42
    #: Rank-ordered address segments the zipf law draws over.
    segments: int = 64

    def __post_init__(self) -> None:
        if self.theta < 0.0:
            raise SimulationError(f"theta must be >= 0, got {self.theta}")
        if not 0.0 < self.hot_fraction < 1.0:
            raise SimulationError(
                f"hot_fraction must be in (0, 1), got {self.hot_fraction}")
        if not 0.0 <= self.read_fraction <= 1.0:
            raise SimulationError(
                f"read_fraction must be in [0, 1], got {self.read_fraction}")
        if not 0.0 <= self.sequential_burst <= 1.0:
            raise SimulationError(f"sequential_burst must be in [0, 1], "
                                  f"got {self.sequential_burst}")
        if self.requests <= 0:
            raise SimulationError(
                f"requests must be positive, got {self.requests}")
        if self.request_sectors <= 0 or self.burst_sectors <= 0:
            raise SimulationError("request sizes must be positive sectors")
        if self.segments < 2:
            raise SimulationError(
                f"need at least 2 segments, got {self.segments}")
        if self.footprint_bytes < self.segments * SECTOR_BYTES:
            raise SimulationError(
                f"footprint {self.footprint_bytes} too small for "
                f"{self.segments} segments")

    def describe(self) -> str:
        """Canonical ``key=value`` string (keys in field order); folded
        into the sweep cache key, so it must cover every field."""
        return ",".join(f"{field.name}={getattr(self, field.name)!r}"
                        for field in fields(self))


def _segment_spans(params: ZipfParams) -> List[Tuple[int, int]]:
    """(start_sector, sectors) per rank: hot ranks packed into the hot
    region, cold ranks spread over the rest of the footprint."""
    total_sectors = params.footprint_bytes // SECTOR_BYTES
    hot_sectors = max(1, int(total_sectors * params.hot_fraction))
    hot_count = max(1, min(params.segments - 1,
                           round(params.segments * params.hot_fraction)))
    cold_count = params.segments - hot_count
    spans: List[Tuple[int, int]] = []
    for rank in range(hot_count):
        start = rank * hot_sectors // hot_count
        end = (rank + 1) * hot_sectors // hot_count
        spans.append((start, max(1, end - start)))
    cold_sectors = total_sectors - hot_sectors
    for rank in range(cold_count):
        start = hot_sectors + rank * cold_sectors // cold_count
        end = hot_sectors + (rank + 1) * cold_sectors // cold_count
        spans.append((start, max(1, end - start)))
    return spans


def _cumulative_weights(params: ZipfParams) -> List[float]:
    weights = [1.0 / (rank + 1) ** params.theta
               for rank in range(params.segments)]
    total = sum(weights)
    cumulative: List[float] = []
    acc = 0.0
    for weight in weights:
        acc += weight / total
        cumulative.append(acc)
    cumulative[-1] = 1.0  # guard float round-off for u -> 1.0
    return cumulative


def generate_zipf_rows(params: ZipfParams) -> Tuple[TraceRow, ...]:
    """Generate the stream's trace rows: deterministic in ``params``."""
    rng = random.Random(params.seed)
    spans = _segment_spans(params)
    cumulative = _cumulative_weights(params)
    rows: List[TraceRow] = []
    arrival = 0
    for _ in range(params.requests):
        arrival += int(rng.expovariate(1.0 / _MEAN_INTERARRIVAL_NS))
        rank = bisect.bisect_left(cumulative, rng.random())
        start, span_sectors = spans[rank]
        if rng.random() < params.sequential_burst:
            sectors = min(params.burst_sectors, span_sectors)
        else:
            sectors = min(params.request_sectors, span_sectors)
        offset = rng.randrange(span_sectors - sectors + 1)
        is_write = rng.random() >= params.read_fraction
        rows.append(TraceRow(arrival_ns=arrival, device=0,
                             lba=start + offset, sectors=sectors,
                             is_write=is_write))
    return tuple(rows)


class ZipfWorkload(TraceWorkload):
    """A seeded zipf hot/cold stream, lowered like a parsed trace."""

    name = "zipf"

    def __init__(self, scale: float = 1.0,
                 params: Optional[ZipfParams] = None,
                 name: Optional[str] = None) -> None:
        self.params = params if params is not None else ZipfParams()
        super().__init__(generate_zipf_rows(self.params),
                         name=name or type(self).name, scale=scale,
                         source=f"zipf({self.params.describe()})")

    def cache_identity(self) -> Tuple[Tuple[str, str], ...]:
        # The parameters imply the rows, but folding them in explicitly
        # keeps the key readable and robust to parameter changes that
        # happen to generate colliding row streams.
        return (("zipf", self.params.describe()),) + super().cache_identity()


def zipf_workload_factory(params: ZipfParams, *, name: str):
    """A registry factory binding one parameter set under ``name``."""
    def factory(scale: float = 1.0) -> ZipfWorkload:
        return ZipfWorkload(scale=scale, params=params, name=name)
    factory.name = name  # type: ignore[attr-defined]
    return factory
