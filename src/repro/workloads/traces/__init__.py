"""Trace-driven and generative workloads.

Two paths into the same lowering:

* :mod:`repro.workloads.traces.parse` + :class:`TraceWorkload` -- ingest
  MQSim-format block traces (real or converted) as first-class workloads;
* :class:`ZipfWorkload` -- seeded zipf hot/cold streams, generated then
  lowered exactly like a parsed trace.

Both register into the open ``WORKLOAD_REGISTRY`` (the built-in
``mqsim-mini`` fixture and ``zipf-hot`` entries are registered by
:mod:`repro.workloads` at import time), so they sweep across every
experiment, policy and platform variant, and their content hash /
generator parameters are folded into the sweep cache key via
``Workload.cache_identity``.
"""

from repro.workloads.traces.parse import (OPCODE_READ, OPCODE_WRITE,
                                          SECTOR_BYTES, TraceRow,
                                          format_mqsim_trace,
                                          load_mqsim_trace,
                                          parse_mqsim_trace,
                                          trace_fingerprint)
from repro.workloads.traces.workload import (MQSIM_MINI_NAME,
                                             VECTOR_RUN_SECTORS,
                                             TraceWorkload, coalesce_runs,
                                             fixture_trace_path, lower_rows,
                                             register_trace_workload,
                                             trace_workload_factory)
from repro.workloads.traces.zipf import (ZIPF_HOT_NAME, ZipfParams,
                                         ZipfWorkload, generate_zipf_rows,
                                         zipf_workload_factory)

__all__ = [
    "OPCODE_READ", "OPCODE_WRITE", "SECTOR_BYTES", "TraceRow",
    "format_mqsim_trace", "load_mqsim_trace", "parse_mqsim_trace",
    "trace_fingerprint", "MQSIM_MINI_NAME", "VECTOR_RUN_SECTORS",
    "TraceWorkload", "coalesce_runs", "fixture_trace_path", "lower_rows",
    "register_trace_workload", "trace_workload_factory", "ZIPF_HOT_NAME",
    "ZipfParams", "ZipfWorkload", "generate_zipf_rows",
    "zipf_workload_factory",
]
