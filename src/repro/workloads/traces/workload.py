"""Trace-driven workloads: lowering block traces into the loop IR.

A parsed trace becomes an ordinary :class:`~repro.workloads.base.Workload`
so it flows through the compiler, offload, movement, contention and
lifetime layers completely unchanged.  The lowering mirrors what the
access pattern means to a near-data platform:

* **Contiguous-LBA runs** (consecutive requests extending each other on
  the same device in the same direction) are streaming transfers -- each
  run of at least :data:`VECTOR_RUN_SECTORS` sectors lowers to a counted
  loop over the run's bytes (reads scan/checksum the device range into a
  host buffer, writes add the buffer back), which the vectorizer turns
  into vectorizable sections exactly like the hand-built kernels' loops.
* **Interleaved small accesses** are request-handling control flow: they
  aggregate into one non-vectorizable scalar section whose dynamic
  operation count is proportional to the bytes they touch.

``scale`` shrinks run lengths and the device address span together (via
the shared ``_scaled`` helper), so the same trace sweeps at figure scales
-- with the same explicit element floor, and the same
:class:`~repro.workloads.base.ScaleFloorWarning`, as every other workload.
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional, Sequence, Tuple

from repro.common import OpType, SimulationError
from repro.core.compiler.frontend import (STATIC_OPS_PER_STATEMENT, Loop,
                                          ScalarProgram, ScalarSection,
                                          ScalarStatement)
from repro.workloads.base import Workload, WorkloadCategory
from repro.workloads.traces.parse import (TraceRow, load_mqsim_trace,
                                          trace_fingerprint)

#: Contiguous runs of at least this many sectors (32 KiB) lower to counted
#: loops; anything shorter counts as an interleaved small access.
VECTOR_RUN_SECTORS = 64

#: Dynamic scalar operations charged per byte of small-access traffic
#: (request handling touches data far more lightly than the streaming
#: loops, which execute one operation per element).
SMALL_ACCESS_OPS_PER_BYTE = 1.0 / 16.0

#: Registry name of the checked-in fixture trace (see ``fixtures/``).
MQSIM_MINI_NAME = "mqsim-mini"


def fixture_trace_path() -> str:
    """Path of the checked-in mini MQSim fixture trace."""
    return os.path.join(os.path.dirname(__file__), "fixtures",
                        "mini_mqsim.trace")


def coalesce_runs(rows: Sequence[TraceRow]) -> List[List[TraceRow]]:
    """Group rows into contiguous-LBA runs, preserving arrival order.

    A row extends the current run when it targets the same device in the
    same direction and starts exactly where the previous request ended;
    anything else begins a new run.
    """
    runs: List[List[TraceRow]] = []
    for row in rows:
        if runs:
            last = runs[-1][-1]
            if (row.device == last.device and row.is_write == last.is_write
                    and row.lba == last.end_lba):
                runs[-1].append(row)
                continue
        runs.append([row])
    return runs


def lower_rows(name: str, rows: Sequence[TraceRow],
               workload: Workload) -> ScalarProgram:
    """Lower parsed trace rows into a scalar loop program.

    ``workload`` supplies the scale (via ``_scaled``); the program's
    arrays cover each device's touched LBA span, runs become loops and
    small accesses one aggregated scalar section (see module docstring).
    """
    program = ScalarProgram(name)
    spans: Dict[int, Tuple[int, int]] = {}
    for row in rows:
        low, high = spans.get(row.device, (row.lba, row.end_lba))
        spans[row.device] = (min(low, row.lba), max(high, row.end_lba))
    for device in sorted(spans):
        low, high = spans[device]
        span_bytes = (high - low) * 512
        program.declare_array(f"dev{device}_space",
                              workload._scaled(span_bytes), element_bits=8)

    runs = coalesce_runs(rows)
    vector_runs = [run for run in runs
                   if sum(row.sectors for row in run) >= VECTOR_RUN_SECTORS]
    max_run_bytes = max((sum(row.size_bytes for row in run)
                         for run in vector_runs), default=4096)
    program.declare_array("host_buffer", workload._scaled(max_run_bytes),
                          element_bits=8)

    for index, run in enumerate(vector_runs):
        run_bytes = sum(row.size_bytes for row in run)
        device_array = f"dev{run[0].device}_space"
        if run[0].is_write:
            # Streaming write: merge the staged buffer into the device
            # range (ADD models the read-modify-write of a filesystem or
            # KV-store flush better than a pure store would).
            body = [ScalarStatement(op=OpType.ADD, dest=device_array,
                                    sources=("host_buffer",))]
            kind = "write"
        else:
            # Streaming read: scan/checksum the device range out into the
            # host buffer (XOR is the canonical bulk-bitwise scan).
            body = [ScalarStatement(op=OpType.XOR, dest="host_buffer",
                                    sources=(device_array,),
                                    uses_immediate=True)]
            kind = "read"
        program.add_loop(Loop(name=f"run{index}_{kind}",
                              trip_count=workload._scaled(run_bytes),
                              body=body))

    small_bytes = sum(row.size_bytes for run in runs for row in run
                      if sum(r.sectors for r in run) < VECTOR_RUN_SECTORS)
    small_count = sum(len(run) for run in runs
                      if sum(r.sectors for r in run) < VECTOR_RUN_SECTORS)
    if small_count:
        operations = max(4096, int(workload._scaled(small_bytes)
                                   * SMALL_ACCESS_OPS_PER_BYTE))
        program.add_scalar_section(ScalarSection(
            name="interleaved_small_accesses", operation_count=operations,
            static_operations=small_count * STATIC_OPS_PER_STATEMENT))
    return program


class TraceWorkload(Workload):
    """A parsed MQSim block trace as a first-class workload."""

    name = "trace"
    category = WorkloadCategory.IO_INTENSIVE

    def __init__(self, rows: Sequence[TraceRow], *,
                 name: Optional[str] = None, scale: float = 1.0,
                 source: str = "<memory>") -> None:
        super().__init__(scale)
        if not rows:
            raise SimulationError(f"trace workload {name or self.name!r} "
                                  "needs at least one trace row")
        self.rows: Tuple[TraceRow, ...] = tuple(rows)
        if name is not None:
            self.name = name
        self.source = source

    @classmethod
    def from_file(cls, path: str, *, name: Optional[str] = None,
                  scale: float = 1.0) -> "TraceWorkload":
        """Parse an MQSim trace file into a workload (name: file stem)."""
        stem = os.path.splitext(os.path.basename(path))[0]
        return cls(load_mqsim_trace(path), name=name or stem, scale=scale,
                   source=path)

    def build_program(self) -> ScalarProgram:
        return lower_rows(self.name, self.rows, self)

    def cache_identity(self) -> Tuple[Tuple[str, str], ...]:
        return (("trace", trace_fingerprint(self.rows)),)

    def describe(self) -> Dict[str, object]:
        description = super().describe()
        description["source"] = self.source
        description["requests"] = len(self.rows)
        return description


def trace_workload_factory(path: str, *, name: Optional[str] = None):
    """A registry factory for one trace file, parsed eagerly once.

    Parsing at registration time (not per instantiation) pins the trace
    content: every rebuild -- including in parallel sweep workers --
    lowers exactly the rows that were registered, and the cache identity
    cannot drift if the file changes under a running sweep.
    """
    rows = load_mqsim_trace(path)
    workload_name = (name if name is not None
                     else os.path.splitext(os.path.basename(path))[0])

    def factory(scale: float = 1.0) -> TraceWorkload:
        return TraceWorkload(rows, name=workload_name, scale=scale,
                             source=path)

    factory.name = workload_name  # type: ignore[attr-defined]
    return factory


def register_trace_workload(path: str, *, name: Optional[str] = None,
                            overwrite: bool = False) -> str:
    """Parse and register a trace file; returns the registry name.

    The workload becomes sweepable everywhere a registry name is accepted
    (experiment axes, ``TenantSpec`` mixes, ``--trace`` on the CLI).
    """
    from repro.workloads import register_workload
    factory = trace_workload_factory(path, name=name)
    register_workload(factory.name, factory, overwrite=overwrite)
    return factory.name
