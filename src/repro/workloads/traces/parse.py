"""MQSim-format block-trace parser.

MQSim's ASCII trace format (the de-facto interchange format for SSD
simulators, used by the MSR Cambridge and Alibaba trace conversions) is
one request per line, five whitespace-separated fields::

    <arrival time (ns)> <device> <start LBA (sectors)> <size (sectors)> <opcode>

where the opcode is ``0`` for a write and ``1`` for a read (the letters
``W``/``R``, case-insensitive, are also accepted).  The parser is tolerant
of the variants real trace files exhibit -- blank lines, full-line and
trailing ``#`` comments, tabs and repeated spaces -- and rejects anything
else with a :class:`~repro.common.SimulationError` naming the offending
line number, so a malformed multi-gigabyte trace fails with a usable
message instead of a deep traceback.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Iterable, List, Sequence, Tuple

from repro.common import SimulationError

#: Logical-block (sector) size of the trace address space, in bytes.
SECTOR_BYTES = 512

#: MQSim opcode values (column five of a trace row).
OPCODE_WRITE = 0
OPCODE_READ = 1

#: Letter opcodes accepted alongside the numeric MQSim ones.
_OPCODES = {"0": True, "1": False, "W": True, "R": False}


@dataclass(frozen=True)
class TraceRow:
    """One parsed block request: when, where, how much, which way."""

    arrival_ns: int
    device: int
    lba: int
    sectors: int
    is_write: bool

    @property
    def size_bytes(self) -> int:
        return self.sectors * SECTOR_BYTES

    @property
    def end_lba(self) -> int:
        """First sector past the request (``lba + sectors``)."""
        return self.lba + self.sectors


def _parse_int(token: str, what: str, where: str) -> int:
    try:
        return int(token)
    except ValueError:
        raise SimulationError(
            f"{where}: {what} must be an integer, got {token!r}") from None


def parse_mqsim_trace(text: str, *,
                      source: str = "<trace>") -> Tuple[TraceRow, ...]:
    """Parse MQSim-format trace text into validated :class:`TraceRow`\\ s.

    Raises :class:`~repro.common.SimulationError` naming ``source`` and
    the 1-based line number on the first malformed line.
    """
    rows: List[TraceRow] = []
    previous_arrival = 0
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue  # blank or comment-only line
        where = f"{source}:{lineno}"
        fields = line.split()
        if len(fields) != 5:
            raise SimulationError(
                f"{where}: expected 5 fields (arrival_ns device lba "
                f"size_sectors opcode), got {len(fields)}: {line!r}")
        arrival = _parse_int(fields[0], "arrival time", where)
        device = _parse_int(fields[1], "device number", where)
        lba = _parse_int(fields[2], "start LBA", where)
        sectors = _parse_int(fields[3], "request size", where)
        opcode = fields[4].upper()
        if opcode not in _OPCODES:
            raise SimulationError(
                f"{where}: opcode must be 0 (write), 1 (read), W or R, "
                f"got {fields[4]!r}")
        if arrival < 0:
            raise SimulationError(
                f"{where}: arrival time must be >= 0, got {arrival}")
        if arrival < previous_arrival:
            raise SimulationError(
                f"{where}: arrival times must be non-decreasing "
                f"({arrival} after {previous_arrival})")
        if device < 0:
            raise SimulationError(
                f"{where}: device number must be >= 0, got {device}")
        if lba < 0:
            raise SimulationError(
                f"{where}: start LBA must be >= 0, got {lba}")
        if sectors <= 0:
            raise SimulationError(
                f"{where}: request size must be > 0 sectors, got {sectors}")
        previous_arrival = arrival
        rows.append(TraceRow(arrival_ns=arrival, device=device, lba=lba,
                             sectors=sectors, is_write=_OPCODES[opcode]))
    if not rows:
        raise SimulationError(f"{source}: trace contains no requests")
    return tuple(rows)


def load_mqsim_trace(path: str) -> Tuple[TraceRow, ...]:
    """Parse an MQSim-format trace file from disk."""
    with open(path, "r", encoding="utf-8") as handle:
        return parse_mqsim_trace(handle.read(), source=path)


def format_mqsim_trace(rows: Sequence[TraceRow]) -> str:
    """Render rows back into canonical MQSim text (round-trip partner)."""
    lines = [f"{row.arrival_ns} {row.device} {row.lba} {row.sectors} "
             f"{OPCODE_WRITE if row.is_write else OPCODE_READ}"
             for row in rows]
    return "\n".join(lines) + "\n"


def trace_fingerprint(rows: Iterable[TraceRow]) -> str:
    """Stable content hash of parsed rows (whitespace/comment-invariant).

    Hashing the *parsed* rows rather than the file bytes means two trace
    files that differ only in formatting share sweep-cache entries, while
    any semantic difference -- one request, one sector -- changes the
    fingerprint.
    """
    digest = hashlib.sha256()
    for row in rows:
        digest.update(f"{row.arrival_ns},{row.device},{row.lba},"
                      f"{row.sectors},{int(row.is_write)};".encode("ascii"))
    return digest.hexdigest()[:16]
