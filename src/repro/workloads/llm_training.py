"""LLM training workload (Table 3, row 6).

Bandwidth-intensive INT8 training of a LLaMA2-style model: forward passes,
backward gradient computation and optimizer weight updates repeatedly sweep
the weight and gradient tensors.  The paper characterizes training as 60%
vectorizable, with moderate reuse (5.2 -- weights, gradients and optimizer
state are revisited within a step), a mix dominated by medium-latency
additions/updates (88%) with some multiplications (12%), and heavy data
movement from the frequent weight updates.
"""

from __future__ import annotations

from repro.common import OpType
from repro.core.compiler.frontend import (Loop, ScalarProgram,
                                          ScalarStatement)
from repro.workloads.base import (PaperCharacteristics, Workload,
                                  WorkloadCategory)


class LLMTrainingWorkload(Workload):
    """INT8 LLM training step (forward, backward, optimizer update)."""

    name = "LLM Training"
    category = WorkloadCategory.MIXED
    paper = PaperCharacteristics(
        vectorizable_fraction=0.60, average_reuse=5.2,
        low_latency_fraction=0.0, medium_latency_fraction=0.88,
        high_latency_fraction=0.12)

    def __init__(self, scale: float = 1.0, steps: int = 2) -> None:
        super().__init__(scale)
        self.steps = steps

    def build_program(self) -> ScalarProgram:
        program = ScalarProgram(self.name)
        weights = self._scaled(4 * 1024 * 1024)
        program.declare_array("weights", weights, element_bits=8)
        program.declare_array("gradients", weights, element_bits=8)
        program.declare_array("optimizer_m", weights, element_bits=8)
        program.declare_array("activations", weights, element_bits=8)

        # Forward pass: one streaming matmul per step (the 12% high-latency
        # multiplies) followed by bias/residual additions.
        forward_body = [
            ScalarStatement(op=OpType.MUL, dest="activations",
                            sources=("weights", "activations")),
            ScalarStatement(op=OpType.ADD, dest="activations",
                            sources=("activations",), uses_immediate=True),
        ]
        program.add_loop(Loop(name="forward", trip_count=weights,
                              body=forward_body, repetitions=self.steps))

        # Backward pass and optimizer: gradient accumulation, momentum and
        # weight updates -- addition/subtraction/predication heavy.
        update_body = [
            ScalarStatement(op=OpType.ADD, dest="gradients",
                            sources=("gradients", "activations")),
            ScalarStatement(op=OpType.ADD, dest="optimizer_m",
                            sources=("optimizer_m", "gradients")),
            ScalarStatement(op=OpType.SUB, dest="weights",
                            sources=("weights", "optimizer_m")),
            ScalarStatement(op=OpType.CMP_GT, dest="gradients",
                            sources=("gradients",), uses_immediate=True),
            ScalarStatement(op=OpType.ADD, dest="weights",
                            sources=("weights", "gradients")),
            ScalarStatement(op=OpType.SUB, dest="optimizer_m",
                            sources=("optimizer_m",), uses_immediate=True),
        ]
        program.add_loop(Loop(name="backward_and_update", trip_count=weights,
                              body=update_body, repetitions=self.steps))

        # Data loading, loss bookkeeping and checkpointing stay scalar (40%
        # of the code).
        self.add_scalar_section(program, "dataloader_and_checkpointing")
        return program
