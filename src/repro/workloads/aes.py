"""AES encryption workload (Table 3, row 1).

256-bit AES encryption/decryption over a large data set: round loops apply
AddRoundKey (XOR), masking/ShiftRows-style bit manipulation (AND/shift) and
SubBytes-style substitution to every 32-bit word of the state.  The paper
characterizes AES as having 65% vectorizable code, high data reuse (the same
state words are touched by every round) and a heavily low-latency
(bulk-bitwise) operation mix -- which is why IFP and PuD-SSD serve almost
all of its instructions (Fig. 9).

The non-vectorizable 35% (key schedule, block chaining, padding and I/O
bookkeeping) is modelled as a scalar section executed on general-purpose
cores.
"""

from __future__ import annotations

from repro.common import OpType
from repro.core.compiler.frontend import (Loop, ScalarProgram,
                                          ScalarStatement)
from repro.workloads.base import (PaperCharacteristics, Workload,
                                  WorkloadCategory)

#: AES-256 applies 14 rounds to every block.
AES_ROUNDS = 14


class AESWorkload(Workload):
    """AES-256 bulk encryption."""

    name = "AES"
    category = WorkloadCategory.COMPUTE_INTENSIVE
    paper = PaperCharacteristics(
        vectorizable_fraction=0.65, average_reuse=15.2,
        low_latency_fraction=0.87, medium_latency_fraction=0.13,
        high_latency_fraction=0.0)

    def __init__(self, scale: float = 1.0, rounds: int = AES_ROUNDS) -> None:
        super().__init__(scale)
        self.rounds = rounds

    def build_program(self) -> ScalarProgram:
        program = ScalarProgram(self.name)
        state_elements = self._scaled(512 * 1024)
        program.declare_array("state", state_elements, element_bits=8)
        program.declare_array("round_keys", state_elements, element_bits=8)
        program.declare_array("sbox_expanded", state_elements,
                              element_bits=8)
        program.declare_array("schedule_tmp", state_elements, element_bits=8)

        # One AES round over the full state: AddRoundKey, masking, row
        # rotation, substitution and MixColumns-style recombination.
        round_body = [
            ScalarStatement(op=OpType.XOR, dest="state",
                            sources=("state", "round_keys")),
            ScalarStatement(op=OpType.AND, dest="state", sources=("state",),
                            uses_immediate=True),
            ScalarStatement(op=OpType.SHR, dest="state", sources=("state",),
                            uses_immediate=True),
            ScalarStatement(op=OpType.XOR, dest="state",
                            sources=("state", "sbox_expanded")),
            ScalarStatement(op=OpType.OR, dest="state",
                            sources=("state", "round_keys")),
            # Round-constant / counter update: the medium-latency share of
            # the operation mix; it touches the key-schedule scratch array
            # rather than the bitwise state chain.
            ScalarStatement(op=OpType.ADD, dest="schedule_tmp",
                            sources=("round_keys",), uses_immediate=True),
        ]
        program.add_loop(Loop(name="aes_rounds", trip_count=state_elements,
                              body=round_body, repetitions=self.rounds))

        # Key schedule, CBC chaining and padding: control-intensive code the
        # auto-vectorizer leaves on the controller cores (~35% of the code).
        self.add_scalar_section(program, "key_schedule_and_chaining")
        return program
