"""LLaMA2 inference workload (Table 3, row 5).

INT8-quantized decode of a LLaMA2-style transformer (the paper uses the 7B
model through llama2.c): per layer, QKV projections and the feed-forward
network stream large weight matrices through multiply-accumulate loops,
while attention mixes multiplies, additions and predication/shuffle work.
The paper characterizes the workload as 70% vectorizable, low reuse (1.8 --
weights are streamed once per token), and an almost even split of medium-
and high-latency operations; Fig. 9/10 show Conduit splitting it between
PuD-SSD and ISP while avoiding IFP for the multiplications.
"""

from __future__ import annotations

from repro.common import OpType
from repro.core.compiler.frontend import (Loop, ScalarProgram,
                                          ScalarStatement)
from repro.workloads.base import (PaperCharacteristics, Workload,
                                  WorkloadCategory)


class LlamaInferenceWorkload(Workload):
    """INT8 LLaMA2 decode (attention + FFN layers)."""

    name = "LlaMA2 Inference"
    category = WorkloadCategory.COMPUTE_INTENSIVE
    paper = PaperCharacteristics(
        vectorizable_fraction=0.70, average_reuse=1.8,
        low_latency_fraction=0.0, medium_latency_fraction=0.53,
        high_latency_fraction=0.47)

    def __init__(self, scale: float = 1.0, layers: int = 2) -> None:
        super().__init__(scale)
        self.layers = layers

    def build_program(self) -> ScalarProgram:
        program = ScalarProgram(self.name)
        qkv_weights = self._scaled(2 * 1024 * 1024)
        attn_state = self._scaled(1024 * 1024)
        ffn_weights = self._scaled(4 * 1024 * 1024)
        program.declare_array("wqkv", qkv_weights, element_bits=8)
        program.declare_array("activations", qkv_weights, element_bits=8)
        program.declare_array("attn_scores", attn_state, element_bits=8)
        program.declare_array("kv_cache", attn_state, element_bits=8)
        program.declare_array("wffn", ffn_weights, element_bits=8)
        program.declare_array("ffn_out", ffn_weights, element_bits=8)

        # QKV projection: streaming INT8 matmul over the projection weights.
        qkv_body = [
            ScalarStatement(op=OpType.MUL, dest="activations",
                            sources=("wqkv", "activations")),
            ScalarStatement(op=OpType.ADD, dest="activations",
                            sources=("activations",), uses_immediate=True),
        ]
        program.add_loop(Loop(name="qkv_projection", trip_count=qkv_weights,
                              body=qkv_body, repetitions=self.layers))

        # Attention: score computation, masking and value mixing.
        attn_body = [
            ScalarStatement(op=OpType.MUL, dest="attn_scores",
                            sources=("attn_scores", "kv_cache")),
            ScalarStatement(op=OpType.ADD, dest="attn_scores",
                            sources=("attn_scores", "kv_cache")),
            ScalarStatement(op=OpType.SELECT, dest="attn_scores",
                            sources=("attn_scores",), uses_immediate=True),
            ScalarStatement(op=OpType.SHUFFLE, dest="kv_cache",
                            sources=("attn_scores",)),
        ]
        program.add_loop(Loop(name="attention", trip_count=attn_state,
                              body=attn_body, repetitions=self.layers))

        # Feed-forward network: the largest weight stream of the layer.
        ffn_body = [
            ScalarStatement(op=OpType.MUL, dest="ffn_out",
                            sources=("wffn", "ffn_out")),
            ScalarStatement(op=OpType.ADD, dest="ffn_out",
                            sources=("ffn_out",), uses_immediate=True),
        ]
        program.add_loop(Loop(name="ffn", trip_count=ffn_weights,
                              body=ffn_body, repetitions=self.layers))

        # Softmax normalization, sampling, tokenizer and KV-cache management
        # remain scalar (~30% of the code).
        self.add_scalar_section(program, "softmax_sampling_and_cache")
        return program
