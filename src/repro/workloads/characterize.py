"""Workload characterization (Table 3).

Measures, for each workload, the three characteristics Table 3 reports:

* **Vectorizable code %** -- fraction of dynamic scalar operations that
  Conduit's compile-time pass turns into SIMD instructions.
* **Average reuse** -- average number of operations that consume the same
  data before it is replaced (source-operand page touches per distinct page
  read, bounded by overwrites).
* **Operation mix** -- fraction of low / medium / high latency operations
  among the vectorized instructions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.common import LatencyClass, OpType
from repro.core.compiler.ir import VectorProgram
from repro.core.compiler.vectorizer import (VectorizationReport,
                                            VectorizerConfig)
from repro.core.layout import ArrayLayout
from repro.workloads.base import Workload


@dataclass
class WorkloadCharacteristics:
    """Measured Table 3 row for one workload."""

    workload: str
    vectorizable_fraction: float
    average_reuse: float
    low_latency_fraction: float
    medium_latency_fraction: float
    high_latency_fraction: float
    instructions: int
    footprint_bytes: int

    def as_row(self) -> Dict[str, object]:
        return {
            "workload": self.workload,
            "vectorizable_%": round(100 * self.vectorizable_fraction, 1),
            "avg_reuse": round(self.average_reuse, 2),
            "low_%": round(100 * self.low_latency_fraction, 1),
            "medium_%": round(100 * self.medium_latency_fraction, 1),
            "high_%": round(100 * self.high_latency_fraction, 1),
            "instructions": self.instructions,
            "footprint_MiB": round(self.footprint_bytes / (1 << 20), 1),
        }


def measure_reuse(program: VectorProgram,
                  page_size_bytes: int = 4096) -> float:
    """Average source-operand reads per distinct page read."""
    layout = ArrayLayout(page_size_bytes)
    layout.place_all(sorted(program.arrays.values(), key=lambda s: s.name))
    touches = 0
    distinct = set()
    for instruction in program.instructions:
        for ref in instruction.array_sources:
            pages = layout.pages_of(ref, instruction.element_bits)
            touches += len(pages)
            distinct.update(pages)
    if not distinct:
        return 0.0
    return touches / len(distinct)


def operation_mix(program: VectorProgram) -> Dict[LatencyClass, float]:
    """Latency-class mix over the vectorized (non-scalar) instructions."""
    counts = {cls: 0 for cls in LatencyClass}
    total = 0
    for instruction in program.instructions:
        if instruction.op in (OpType.SCALAR, OpType.BRANCH, OpType.CALL):
            continue
        counts[LatencyClass.of(instruction.op)] += 1
        total += 1
    if total == 0:
        return {cls: 0.0 for cls in LatencyClass}
    return {cls: counts[cls] / total for cls in LatencyClass}


def characterize(workload: Workload,
                 vectorizer_config: Optional[VectorizerConfig] = None
                 ) -> WorkloadCharacteristics:
    """Measure the Table 3 characteristics of one workload."""
    program, report = workload.vector_program(vectorizer_config)
    mix = operation_mix(program)
    return WorkloadCharacteristics(
        workload=workload.name,
        vectorizable_fraction=report.vectorizable_fraction,
        average_reuse=measure_reuse(program),
        low_latency_fraction=mix[LatencyClass.LOW],
        medium_latency_fraction=mix[LatencyClass.MEDIUM],
        high_latency_fraction=mix[LatencyClass.HIGH],
        instructions=len(program),
        footprint_bytes=program.total_data_bytes(),
    )


def characterization_table(workloads: Sequence[Workload],
                           vectorizer_config: Optional[VectorizerConfig] = None
                           ) -> List[Dict[str, object]]:
    """Table 3: one row per workload, measured against the paper's values."""
    rows: List[Dict[str, object]] = []
    for workload in workloads:
        measured = characterize(workload, vectorizer_config)
        row = measured.as_row()
        row["paper_vectorizable_%"] = round(
            100 * workload.paper.vectorizable_fraction, 1)
        row["paper_avg_reuse"] = workload.paper.average_reuse
        rows.append(row)
    return rows
