"""The six evaluated workloads (Table 3) and their characterization."""

from repro.workloads.aes import AESWorkload
from repro.workloads.base import (PaperCharacteristics, Workload,
                                  WorkloadCategory)
from repro.workloads.characterize import (WorkloadCharacteristics,
                                          characterization_table,
                                          characterize, measure_reuse,
                                          operation_mix)
from repro.workloads.heat3d import Heat3DWorkload
from repro.workloads.jacobi1d import Jacobi1DWorkload
from repro.workloads.llama_inference import LlamaInferenceWorkload
from repro.workloads.llm_training import LLMTrainingWorkload
from repro.workloads.xor_filter import XORFilterWorkload

#: The six workloads in the order the paper's figures list them.
ALL_WORKLOADS = (
    AESWorkload,
    XORFilterWorkload,
    Heat3DWorkload,
    Jacobi1DWorkload,
    LlamaInferenceWorkload,
    LLMTrainingWorkload,
)


#: Registry mapping each workload's figure/table name to its class, so a
#: (name, scale) pair fully identifies a workload.  Parallel sweep workers
#: rebuild workloads from this registry instead of pickling instances, and
#: the generators are deterministic functions of the scale, so rebuilt
#: workloads produce bit-identical programs.
WORKLOAD_REGISTRY = {workload.name: workload for workload in ALL_WORKLOADS}


def default_workloads(scale: float = 1.0):
    """Instantiate all six workloads at the given scale."""
    return [workload(scale=scale) for workload in ALL_WORKLOADS]


def workload_by_name(name: str, scale: float = 1.0) -> Workload:
    """Instantiate a registered workload by its figure/table name."""
    try:
        workload_cls = WORKLOAD_REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(WORKLOAD_REGISTRY))
        raise ValueError(f"unknown workload {name!r}; known: {known}")
    return workload_cls(scale=scale)


__all__ = [
    "AESWorkload", "PaperCharacteristics", "Workload", "WorkloadCategory",
    "WorkloadCharacteristics", "characterization_table", "characterize",
    "measure_reuse", "operation_mix", "Heat3DWorkload", "Jacobi1DWorkload",
    "LlamaInferenceWorkload", "LLMTrainingWorkload", "XORFilterWorkload",
    "ALL_WORKLOADS", "WORKLOAD_REGISTRY", "default_workloads",
    "workload_by_name",
]
