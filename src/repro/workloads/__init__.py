"""The evaluated workloads: Table 3's six kernels plus an open registry.

The six hand-built workloads reproduce the paper's applications; the
registry itself is *open* (like ``ARRIVAL_REGISTRY`` and
``PLATFORM_VARIANTS``): :func:`register_workload` adds trace-driven and
generative entries -- or any user workload -- and every registered name
is immediately sweepable across experiments, policies, platform variants
and ``TenantSpec`` mixes.  The built-in ``zipf-hot`` stream and the
``mqsim-mini`` fixture trace are registered here at import time, so they
exist in every process (including parallel sweep workers).
"""

from typing import Callable, Tuple

from repro.workloads.aes import AESWorkload
from repro.workloads.base import (MIN_SCALED_ELEMENTS, PaperCharacteristics,
                                  ScaleFloorWarning, Workload,
                                  WorkloadCategory)
from repro.workloads.characterize import (WorkloadCharacteristics,
                                          characterization_table,
                                          characterize, measure_reuse,
                                          operation_mix)
from repro.workloads.heat3d import Heat3DWorkload
from repro.workloads.jacobi1d import Jacobi1DWorkload
from repro.workloads.llama_inference import LlamaInferenceWorkload
from repro.workloads.llm_training import LLMTrainingWorkload
from repro.workloads.xor_filter import XORFilterWorkload

#: The six workloads in the order the paper's figures list them.  This is
#: deliberately *only* the paper's roster (Table 3 and the figure defaults
#: iterate it); registered extras live in :data:`WORKLOAD_REGISTRY`.
ALL_WORKLOADS = (
    AESWorkload,
    XORFilterWorkload,
    Heat3DWorkload,
    Jacobi1DWorkload,
    LlamaInferenceWorkload,
    LLMTrainingWorkload,
)

#: A registry entry: any callable building a workload from a scale --
#: a ``Workload`` subclass or a closure binding extra identity (a parsed
#: trace, generator parameters).
WorkloadFactory = Callable[..., Workload]

#: Open registry mapping workload names to factories, so a (name, scale,
#: cache_identity) triple fully identifies a workload.  Parallel sweep
#: workers rebuild workloads from this registry instead of pickling
#: instances, and factories are deterministic functions of the scale, so
#: rebuilt workloads produce bit-identical programs.
WORKLOAD_REGISTRY = {workload.name: workload for workload in ALL_WORKLOADS}


def register_workload(name: str, factory: WorkloadFactory, *,
                      overwrite: bool = False) -> WorkloadFactory:
    """Register a workload factory under ``name`` (returns the factory).

    ``factory`` is called as ``factory(scale=...)`` and must be a
    deterministic function of the scale (plus whatever identity it closes
    over and reports via ``Workload.cache_identity``).  Re-registering an
    existing name requires ``overwrite=True`` so a typo cannot silently
    shadow a built-in workload.
    """
    if not name:
        raise ValueError("workload name must be non-empty")
    if not overwrite and name in WORKLOAD_REGISTRY:
        raise ValueError(
            f"workload {name!r} is already registered; pass overwrite=True "
            "to replace it")
    WORKLOAD_REGISTRY[name] = factory
    return factory


def available_workloads() -> Tuple[str, ...]:
    """Registered workload names: the six paper kernels first (figure
    order), then every registered extra in registration order."""
    return tuple(WORKLOAD_REGISTRY)


def default_workloads(scale: float = 1.0):
    """Instantiate the paper's six workloads at the given scale."""
    return [workload(scale=scale) for workload in ALL_WORKLOADS]


def workload_by_name(name: str, scale: float = 1.0) -> Workload:
    """Instantiate a registered workload by its registry name."""
    try:
        factory = WORKLOAD_REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(WORKLOAD_REGISTRY))
        # ``from None``: the internal KeyError is registry plumbing, not
        # context a user mistyping a workload name should wade through.
        raise ValueError(f"unknown workload {name!r}; known: {known}") \
            from None
    return factory(scale=scale)


# -- Built-in trace-driven / generative entries -----------------------------------

from repro.workloads.traces import (MQSIM_MINI_NAME, ZIPF_HOT_NAME,  # noqa: E402
                                    TraceRow, TraceWorkload, ZipfParams,
                                    ZipfWorkload, fixture_trace_path,
                                    load_mqsim_trace, parse_mqsim_trace,
                                    register_trace_workload,
                                    trace_workload_factory,
                                    zipf_workload_factory)

register_workload(ZIPF_HOT_NAME,
                  zipf_workload_factory(ZipfParams(), name=ZIPF_HOT_NAME))
register_workload(MQSIM_MINI_NAME,
                  trace_workload_factory(fixture_trace_path(),
                                         name=MQSIM_MINI_NAME))


__all__ = [
    "AESWorkload", "MIN_SCALED_ELEMENTS", "PaperCharacteristics",
    "ScaleFloorWarning", "Workload", "WorkloadCategory",
    "WorkloadCharacteristics", "characterization_table", "characterize",
    "measure_reuse", "operation_mix", "Heat3DWorkload", "Jacobi1DWorkload",
    "LlamaInferenceWorkload", "LLMTrainingWorkload", "XORFilterWorkload",
    "ALL_WORKLOADS", "WORKLOAD_REGISTRY", "WorkloadFactory",
    "available_workloads", "default_workloads", "register_workload",
    "workload_by_name",
    "MQSIM_MINI_NAME", "ZIPF_HOT_NAME", "TraceRow", "TraceWorkload",
    "ZipfParams", "ZipfWorkload", "fixture_trace_path", "load_mqsim_trace",
    "parse_mqsim_trace", "register_trace_workload",
    "trace_workload_factory", "zipf_workload_factory",
]
