"""XOR Filter workload (Table 3, row 2).

An XOR filter is a probabilistic membership structure (a smaller, faster
alternative to Bloom filters).  Construction and querying are dominated by
hash computations (multiply-shift folded into add/compare sequences) and
predication: the paper characterizes the workload as 98% medium-latency
operations with only 16% of the code vectorizable (the peeling/assignment
phase of construction is control-intensive and stays scalar) and low data
reuse (~2).
"""

from __future__ import annotations

from repro.common import OpType
from repro.core.compiler.frontend import (Loop, ScalarProgram,
                                          ScalarStatement)
from repro.workloads.base import (PaperCharacteristics, Workload,
                                  WorkloadCategory)


class XORFilterWorkload(Workload):
    """XOR-filter construction and batched membership queries."""

    name = "XOR Filter"
    category = WorkloadCategory.IO_INTENSIVE
    paper = PaperCharacteristics(
        vectorizable_fraction=0.16, average_reuse=2.0,
        low_latency_fraction=0.01, medium_latency_fraction=0.98,
        high_latency_fraction=0.01)

    def build_program(self) -> ScalarProgram:
        program = ScalarProgram(self.name)
        keys = self._scaled(1024 * 1024)
        program.declare_array("keys", keys, element_bits=8)
        program.declare_array("hashes", keys, element_bits=8)
        program.declare_array("fingerprints", keys, element_bits=8)
        program.declare_array("filter_slots", keys, element_bits=8)

        # Batched hash + slot-index computation for all keys (vectorizable).
        hash_body = [
            ScalarStatement(op=OpType.ADD, dest="hashes",
                            sources=("keys", "fingerprints")),
            ScalarStatement(op=OpType.CMP_LT, dest="fingerprints",
                            sources=("hashes",), uses_immediate=True),
            ScalarStatement(op=OpType.SELECT, dest="filter_slots",
                            sources=("fingerprints", "hashes")),
            ScalarStatement(op=OpType.ADD, dest="filter_slots",
                            sources=("filter_slots",), uses_immediate=True),
        ]
        program.add_loop(Loop(name="hash_and_index", trip_count=keys,
                              body=hash_body))

        # A small amount of bitwise mixing and one multiplicative hash round
        # (the 1% low- and 1% high-latency operations of Table 3).
        mix_elements = max(4096, keys // 64)
        mix_body = [
            ScalarStatement(op=OpType.XOR, dest="hashes",
                            sources=("hashes", "keys")),
            ScalarStatement(op=OpType.MUL, dest="hashes",
                            sources=("hashes",), uses_immediate=True),
        ]
        program.add_loop(Loop(name="hash_mix", trip_count=mix_elements,
                              body=mix_body))

        # Peeling / assignment during construction: data-dependent control
        # flow over a work queue; not vectorizable (84% of the code).
        self.add_scalar_section(program, "peeling_and_assignment")
        return program
