"""Workload framework.

The paper evaluates six data-intensive applications (Table 3): AES, XOR
Filter, heat-3d, jacobi-1d, LLaMA2 inference and LLM training.  Since this
reproduction replaces the LLVM frontend with an explicit loop IR
(see DESIGN.md), each workload is a generator that builds the same loop
structures, operation mixes, data footprints and reuse behaviour the paper's
binaries exhibit, parameterized by a ``scale`` factor so tests stay fast
while experiments can use larger instances.

Workload categories follow the Section 3.1 case study: I/O-intensive,
more compute-intensive, and mixed.
"""

from __future__ import annotations

import abc
import enum
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.common import SimulationError
from repro.core.compiler.frontend import ScalarProgram, ScalarSection
from repro.core.compiler.ir import VectorProgram
from repro.core.compiler.vectorizer import (AutoVectorizer,
                                            VectorizationReport,
                                            VectorizerConfig)

#: Control-plane (non-vectorizable) code executes far fewer *dynamic*
#: operations than the data-parallel loops it surrounds, even when it makes
#: up a sizeable fraction of the *static* code (Table 3's "Vectorizable
#: Code %" is a code-level metric).  This weight converts the static scalar
#: code fraction into a dynamic operation count for the scalar sections.
SCALAR_DYNAMIC_WEIGHT = 0.005


class WorkloadCategory(enum.Enum):
    """Workload classes used by the Fig. 4 case study."""

    IO_INTENSIVE = "io-intensive"
    COMPUTE_INTENSIVE = "compute-intensive"
    MIXED = "mixed"


@dataclass(frozen=True)
class PaperCharacteristics:
    """The Table 3 row the paper reports for a workload."""

    vectorizable_fraction: float
    average_reuse: float
    low_latency_fraction: float
    medium_latency_fraction: float
    high_latency_fraction: float


class Workload(abc.ABC):
    """Base class for the evaluated workloads."""

    #: Name used in experiment tables (matches the paper's figures).
    name: str = "workload"
    category: WorkloadCategory = WorkloadCategory.MIXED
    paper: PaperCharacteristics = PaperCharacteristics(0.0, 0.0, 0.0, 0.0, 0.0)

    def __init__(self, scale: float = 1.0) -> None:
        if scale <= 0:
            raise SimulationError("workload scale must be positive")
        self.scale = scale

    # -- Construction ------------------------------------------------------------

    @abc.abstractmethod
    def build_program(self) -> ScalarProgram:
        """Build the scalar loop program describing the application."""

    def vector_program(self, config: Optional[VectorizerConfig] = None
                       ) -> Tuple[VectorProgram, VectorizationReport]:
        """Run Conduit's compile-time pass over the workload."""
        vectorizer = AutoVectorizer(config)
        return vectorizer.vectorize(self.build_program())

    # -- Helpers -------------------------------------------------------------------

    def _scaled(self, elements: int, *, minimum: int = 4096) -> int:
        """Scale an element count, keeping it page-aligned and non-trivial."""
        scaled = int(elements * self.scale)
        scaled = max(minimum, scaled)
        # Round to a multiple of 4096 elements (one compile-time vector).
        return ((scaled + 4095) // 4096) * 4096

    def add_scalar_section(self, program: ScalarProgram,
                           name: str) -> ScalarSection:
        """Add the workload's non-vectorizable section.

        The section's *static* size is chosen so that the program's
        vectorizable-code fraction matches the paper's Table 3 value; its
        *dynamic* operation count is scaled down by
        :data:`SCALAR_DYNAMIC_WEIGHT` because control-plane code executes
        far fewer operations than the data loops.
        """
        fraction = self.paper.vectorizable_fraction
        loop_static = program.loop_static_operations()
        loop_dynamic = program.loop_operations()
        static_ops = max(1, round(loop_static * (1 - fraction) / fraction))
        dynamic_ops = max(4096, int(loop_dynamic * (1 - fraction) / fraction
                                    * SCALAR_DYNAMIC_WEIGHT))
        section = ScalarSection(name=name, operation_count=dynamic_ops,
                                static_operations=static_ops)
        return program.add_scalar_section(section)

    def footprint_bytes(self) -> int:
        return self.build_program().footprint_bytes()

    def describe(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "category": self.category.value,
            "scale": self.scale,
            "footprint_bytes": self.footprint_bytes(),
        }
