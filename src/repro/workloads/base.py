"""Workload framework.

The paper evaluates six data-intensive applications (Table 3): AES, XOR
Filter, heat-3d, jacobi-1d, LLaMA2 inference and LLM training.  Since this
reproduction replaces the LLVM frontend with an explicit loop IR
(see DESIGN.md), each workload is a generator that builds the same loop
structures, operation mixes, data footprints and reuse behaviour the paper's
binaries exhibit, parameterized by a ``scale`` factor so tests stay fast
while experiments can use larger instances.

Workload categories follow the Section 3.1 case study: I/O-intensive,
more compute-intensive, and mixed.
"""

from __future__ import annotations

import abc
import enum
import warnings
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.common import SimulationError
from repro.core.compiler.frontend import ScalarProgram, ScalarSection
from repro.core.compiler.ir import VectorProgram
from repro.core.compiler.vectorizer import (AutoVectorizer,
                                            VectorizationReport,
                                            VectorizerConfig)

#: Control-plane (non-vectorizable) code executes far fewer *dynamic*
#: operations than the data-parallel loops it surrounds, even when it makes
#: up a sizeable fraction of the *static* code (Table 3's "Vectorizable
#: Code %" is a code-level metric).  This weight converts the static scalar
#: code fraction into a dynamic operation count for the scalar sections.
SCALAR_DYNAMIC_WEIGHT = 0.005

#: Floor applied by :meth:`Workload._scaled`: one compile-time vector's
#: worth of elements.  Scales small enough to hit the floor *alias* --
#: distinct scales produce identical programs (see ``_scaled``).
MIN_SCALED_ELEMENTS = 4096


class ScaleFloorWarning(UserWarning):
    """A workload's ``scale`` was small enough to saturate the element
    floor, so this scale produces the same program as other tiny scales
    (their sweep-cache entries are distinct but their results identical)."""


class WorkloadCategory(enum.Enum):
    """Workload classes used by the Fig. 4 case study."""

    IO_INTENSIVE = "io-intensive"
    COMPUTE_INTENSIVE = "compute-intensive"
    MIXED = "mixed"


@dataclass(frozen=True)
class PaperCharacteristics:
    """The Table 3 row the paper reports for a workload."""

    vectorizable_fraction: float
    average_reuse: float
    low_latency_fraction: float
    medium_latency_fraction: float
    high_latency_fraction: float


class Workload(abc.ABC):
    """Base class for the evaluated workloads."""

    #: Name used in experiment tables (matches the paper's figures).
    name: str = "workload"
    category: WorkloadCategory = WorkloadCategory.MIXED
    paper: PaperCharacteristics = PaperCharacteristics(0.0, 0.0, 0.0, 0.0, 0.0)

    def __init__(self, scale: float = 1.0) -> None:
        if scale <= 0:
            raise SimulationError("workload scale must be positive")
        self.scale = scale
        self._floor_warned = False

    # -- Construction ------------------------------------------------------------

    @abc.abstractmethod
    def build_program(self) -> ScalarProgram:
        """Build the scalar loop program describing the application."""

    def vector_program(self, config: Optional[VectorizerConfig] = None
                       ) -> Tuple[VectorProgram, VectorizationReport]:
        """Run Conduit's compile-time pass over the workload."""
        vectorizer = AutoVectorizer(config)
        return vectorizer.vectorize(self.build_program())

    # -- Helpers -------------------------------------------------------------------

    def _scaled(self, elements: int, *,
                minimum: int = MIN_SCALED_ELEMENTS) -> int:
        """Scale an element count, keeping it page-aligned and non-trivial.

        The result is floored at ``minimum`` (one compile-time vector) and
        rounded up to a multiple of 4096 elements.  The floor means *small
        scales alias*: every scale at or below ``minimum / elements``
        produces the identical element count -- and therefore an identical
        program -- even though the sweep cache keys those scales
        separately.  The first saturating call per workload instance emits
        a :class:`ScaleFloorWarning` so sweeps over tiny scales cannot
        silently burn cache entries on duplicate results;
        :meth:`effective_scale` exposes the scale actually realized.
        """
        scaled = int(elements * self.scale)
        if scaled < minimum:
            if not self._floor_warned:
                self._floor_warned = True
                warnings.warn(
                    f"workload {self.name!r}: scale {self.scale} floors "
                    f"{elements} elements at the {minimum}-element minimum "
                    f"(effective scale {minimum / elements:.4g}); scales "
                    f"<= {minimum / elements:.4g} all build this same "
                    "program", ScaleFloorWarning, stacklevel=3)
            scaled = minimum
        # Round to a multiple of 4096 elements (one compile-time vector).
        return ((scaled + 4095) // 4096) * 4096

    def effective_scale(self, elements: int, *,
                        minimum: int = MIN_SCALED_ELEMENTS) -> float:
        """The scale actually realized for ``elements`` after the floor.

        Equals ``self.scale`` (up to 4096-element rounding) while the
        scaled count stays above ``minimum``, and ``minimum / elements``
        once the floor saturates -- the point past which smaller scales
        stop shrinking the program.
        """
        scaled = max(minimum, int(elements * self.scale))
        return ((scaled + 4095) // 4096) * 4096 / elements

    def add_scalar_section(self, program: ScalarProgram,
                           name: str) -> ScalarSection:
        """Add the workload's non-vectorizable section.

        The section's *static* size is chosen so that the program's
        vectorizable-code fraction matches the paper's Table 3 value; its
        *dynamic* operation count is scaled down by
        :data:`SCALAR_DYNAMIC_WEIGHT` because control-plane code executes
        far fewer operations than the data loops.
        """
        fraction = self.paper.vectorizable_fraction
        loop_static = program.loop_static_operations()
        loop_dynamic = program.loop_operations()
        static_ops = max(1, round(loop_static * (1 - fraction) / fraction))
        dynamic_ops = max(4096, int(loop_dynamic * (1 - fraction) / fraction
                                    * SCALAR_DYNAMIC_WEIGHT))
        section = ScalarSection(name=name, operation_count=dynamic_ops,
                                static_operations=static_ops)
        return program.add_scalar_section(section)

    def cache_identity(self) -> Tuple[Tuple[str, str], ...]:
        """Extra identity folded into the sweep cache key, beyond name+scale.

        The six hand-built workloads are deterministic functions of
        ``(name, scale)`` alone, so they return ``()``.  Content-defined
        workloads (a parsed block trace, a seeded generative stream) must
        return ``(key, value)`` string pairs pinning everything else their
        program depends on -- the trace content hash, the generator
        parameters -- so the sweep cache can never serve one trace's
        results for another registered under the same name.
        """
        return ()

    def footprint_bytes(self) -> int:
        return self.build_program().footprint_bytes()

    def describe(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "category": self.category.value,
            "scale": self.scale,
            "footprint_bytes": self.footprint_bytes(),
        }
