"""heat-3d workload (Table 3, row 3; polybench).

A three-dimensional heat-equation stencil: every time step recomputes each
grid point from its neighbours with multiply-accumulate arithmetic.  The
paper characterizes heat-3d as 95% vectorizable with high reuse across time
steps and a 60% medium / 40% high latency operation mix, which is what makes
coordinated multi-resource offloading (PuD-SSD for the multiplies, IFP/ISP
for the rest) most profitable (Section 6.1).
"""

from __future__ import annotations

from repro.common import OpType
from repro.core.compiler.frontend import (Loop, ScalarProgram,
                                          ScalarStatement)
from repro.workloads.base import (PaperCharacteristics, Workload,
                                  WorkloadCategory)


class Heat3DWorkload(Workload):
    """heat-3d stencil over a 3D grid."""

    name = "heat-3d"
    category = WorkloadCategory.COMPUTE_INTENSIVE
    paper = PaperCharacteristics(
        vectorizable_fraction=0.95, average_reuse=16.0,
        low_latency_fraction=0.0, medium_latency_fraction=0.60,
        high_latency_fraction=0.40)

    def __init__(self, scale: float = 1.0, time_steps: int = 4) -> None:
        super().__init__(scale)
        self.time_steps = time_steps

    def build_program(self) -> ScalarProgram:
        program = ScalarProgram(self.name)
        grid = self._scaled(1024 * 1024)
        program.declare_array("grid_a", grid, element_bits=8)
        program.declare_array("grid_b", grid, element_bits=8)

        # One time step: B = c0*A + c1*(A[x-1] + A[x+1] + A[z-1] + A[z+1]).
        step_body = [
            ScalarStatement(op=OpType.MUL, dest="grid_b", sources=("grid_a",),
                            uses_immediate=True),
            ScalarStatement(op=OpType.ADD, dest="grid_b",
                            sources=("grid_b", "grid_a"),
                            source_offsets=(0, -1)),
            ScalarStatement(op=OpType.ADD, dest="grid_b",
                            sources=("grid_b", "grid_a"),
                            source_offsets=(0, 1)),
            ScalarStatement(op=OpType.MUL, dest="grid_b",
                            sources=("grid_b",), uses_immediate=True),
            ScalarStatement(op=OpType.ADD, dest="grid_a",
                            sources=("grid_b", "grid_a")),
        ]
        program.add_loop(Loop(name="heat3d_step", trip_count=grid,
                              body=step_body, repetitions=self.time_steps))

        # Boundary handling and convergence checks stay scalar (~5%).
        self.add_scalar_section(program, "boundaries_and_convergence")
        return program
