"""jacobi-1d workload (Table 3, row 4; polybench).

A one-dimensional Jacobi relaxation: each element is replaced by a weighted
average of its immediate neighbours.  The paper characterizes jacobi-1d as
95% vectorizable, with moderate reuse (3), a 67% medium / 33% high latency
operation mix, and stencil-induced data dependencies across time steps that
reward dependence-aware offloading.
"""

from __future__ import annotations

from repro.common import OpType
from repro.core.compiler.frontend import (Loop, ScalarProgram,
                                          ScalarStatement)
from repro.workloads.base import (PaperCharacteristics, Workload,
                                  WorkloadCategory)


class Jacobi1DWorkload(Workload):
    """jacobi-1d relaxation sweeps."""

    name = "jacobi-1d"
    category = WorkloadCategory.MIXED
    paper = PaperCharacteristics(
        vectorizable_fraction=0.95, average_reuse=3.0,
        low_latency_fraction=0.0, medium_latency_fraction=0.67,
        high_latency_fraction=0.33)

    def __init__(self, scale: float = 1.0, time_steps: int = 3) -> None:
        super().__init__(scale)
        self.time_steps = time_steps

    def build_program(self) -> ScalarProgram:
        program = ScalarProgram(self.name)
        elements = self._scaled(2 * 1024 * 1024)
        program.declare_array("vec_a", elements, element_bits=8)
        program.declare_array("vec_b", elements, element_bits=8)

        # One sweep: B[i] = (A[i-1] + A[i] + A[i+1]) / 3, then copy back.
        sweep_body = [
            ScalarStatement(op=OpType.ADD, dest="vec_b",
                            sources=("vec_a", "vec_a"),
                            source_offsets=(-1, 1)),
            ScalarStatement(op=OpType.ADD, dest="vec_b",
                            sources=("vec_b", "vec_a")),
            ScalarStatement(op=OpType.MUL, dest="vec_a",
                            sources=("vec_b",), uses_immediate=True),
        ]
        program.add_loop(Loop(name="jacobi_sweep", trip_count=elements,
                              body=sweep_body, repetitions=self.time_steps))

        self.add_scalar_section(program, "boundary_updates")
        return program
