"""In-storage processing (ISP): SSD controller core compute model."""

from repro.isp.core import (EmbeddedCoreComplex, ISPBackend,
                            ISPOperationTiming)
from repro.isp.isa import (ISP_NATIVE_INSTRUCTION_COUNT, ISP_SUPPORTED_OPS,
                           cycles_per_beat, mnemonic)

__all__ = [
    "EmbeddedCoreComplex", "ISPBackend", "ISPOperationTiming",
    "ISP_NATIVE_INSTRUCTION_COUNT", "ISP_SUPPORTED_OPS", "cycles_per_beat",
    "mnemonic",
]
