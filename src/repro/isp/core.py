"""Embedded controller core (in-storage processing) compute model.

Models the ARM Cortex-R8 cores in the SSD controller (Table 2: five cores at
1.5 GHz) executing offloaded computations through MVE SIMD.  The paper
dedicates one core to offloaded computation and keeps the remaining cores
for FTL work, host communication and Conduit's offloading/transformation
tasks (Section 4.3.2, footnote 3), so the default compute pool has a single
core.

The per-instruction latency model:

``latency = beats * (cycles_per_beat(op) + memory_cycles) * cycle_time``

where ``beats = ceil(vector_bytes / simd_width_bytes)`` and ``memory_cycles``
accounts for the loads/stores that feed each beat from SSD DRAM.  The narrow
(32-bit) datapath is the reason ISP's SIMD throughput is so much lower than
PuD-SSD's or IFP's, which is the limitation the paper's case study
highlights (Section 2.2 / 3.1).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from repro.common import DataLocation, OpType, ResourceLike, SimulationError
from repro.core.backends import ComputeBackend
from repro.isp.isa import ISP_SUPPORTED_OPS, cycles_per_beat
from repro.ssd.config import ControllerConfig, SSDEnergyConfig


@dataclass
class ISPOperationTiming:
    start_ns: float
    end_ns: float
    beats: int

    @property
    def latency_ns(self) -> float:
        return self.end_ns - self.start_ns


class EmbeddedCoreComplex:
    """The pool of controller cores available for offloaded computation."""

    #: Load/store cycles that accompany every SIMD beat (two operand loads
    #: plus one result store against the SSD DRAM / local buffers).
    MEMORY_CYCLES_PER_BEAT = 3.0

    def __init__(self, config: ControllerConfig = None,
                 energy: SSDEnergyConfig = None) -> None:
        self.config = config or ControllerConfig()
        self.energy_config = energy or SSDEnergyConfig()
        self.operations = 0
        self.total_busy_ns = 0.0
        self.energy_nj = 0.0
        # Memoized (op, size, bits) -> latency/energy points: the model is
        # a pure function of its arguments and the immutable config, so
        # the cache realizes the paper's precomputed estimate tables
        # (Section 4.5) instead of re-deriving each point per lookup.
        self._latency_table: dict = {}
        self._energy_table: dict = {}

    # -- Capability / estimation ---------------------------------------------------

    @staticmethod
    def supports(op: OpType) -> bool:
        return op in ISP_SUPPORTED_OPS

    @property
    def simd_width_bytes(self) -> int:
        return self.config.simd_width_bytes

    @property
    def compute_cores(self) -> int:
        return self.config.compute_cores

    def beats_for(self, size_bytes: int) -> int:
        return max(1, math.ceil(size_bytes / self.config.simd_width_bytes))

    def operation_latency(self, op: OpType, size_bytes: int,
                          element_bits: int) -> float:
        """Latency of one operation over ``size_bytes`` on one core."""
        key = (op, size_bytes, element_bits)
        cached = self._latency_table.get(key)
        if cached is not None:
            return cached
        if size_bytes <= 0:
            raise SimulationError("ISP operation size must be positive")
        beats = self.beats_for(size_bytes)
        cycles = beats * (cycles_per_beat(op) + self.MEMORY_CYCLES_PER_BEAT)
        # Narrower elements pack more lanes per beat but do not change the
        # beat count; wider elements (64-bit) double the effective beats.
        if element_bits > 32:
            cycles *= element_bits / 32.0
        latency = cycles * self.config.cycle_ns
        self._latency_table[key] = latency
        return latency

    def operation_energy(self, op: OpType, size_bytes: int,
                         element_bits: int) -> float:
        key = (op, size_bytes, element_bits)
        cached = self._energy_table.get(key)
        if cached is not None:
            return cached
        latency_ns = self.operation_latency(op, size_bytes, element_bits)
        power_w = self.energy_config.controller_core_active_power_mw / 1e3
        energy = latency_ns * power_w  # ns * W = nJ
        self._energy_table[key] = energy
        return energy

    # -- Execution --------------------------------------------------------------------

    def execute(self, now: float, op: OpType, size_bytes: int,
                element_bits: int) -> ISPOperationTiming:
        latency = self.operation_latency(op, size_bytes, element_bits)
        self.operations += 1
        self.total_busy_ns += latency
        self.energy_nj += self.operation_energy(op, size_bytes, element_bits)
        return ISPOperationTiming(start_ns=now, end_ns=now + latency,
                                  beats=self.beats_for(size_bytes))


class ISPBackend(ComputeBackend):
    """Compute backend adapting :class:`EmbeddedCoreComplex`.

    The default roster registers one backend for the whole compute-core
    pool (queue parallelism = ``compute_cores``); a multi-core platform
    configuration registers one backend per core (``isp[0..n)``), each with
    its own single-slot queue, so per-core contention becomes visible to
    the cost function.

    ISP operands are staged in SSD DRAM (the controller SRAM only holds
    working registers/tiles, Section 3.1 footnote 2), hence the home
    location.
    """

    def __init__(self, resource: ResourceLike,
                 unit: EmbeddedCoreComplex,
                 queue_parallelism: Optional[int] = None) -> None:
        if queue_parallelism is None:
            queue_parallelism = unit.compute_cores
        super().__init__(resource, DataLocation.SSD_DRAM, queue_parallelism)
        self.unit = unit

    def supports(self, op: OpType) -> bool:
        return self.unit.supports(op)

    def operation_latency(self, op: OpType, size_bytes: int,
                          element_bits: int) -> float:
        return self.unit.operation_latency(op, size_bytes, element_bits)

    def operation_energy(self, op: OpType, size_bytes: int,
                         element_bits: int) -> float:
        return self.unit.operation_energy(op, size_bytes, element_bits)

    def execute(self, now: float, op: OpType, size_bytes: int,
                element_bits: int) -> ISPOperationTiming:
        return self.unit.execute(now, op, size_bytes, element_bits)

    def utilization(self, elapsed: float) -> float:
        return self.queue.utilization(elapsed)
