"""ISP instruction set model (ARM Cortex-R8 with M-Profile Vector Extension).

The SSD controller cores support a general-purpose ISA of roughly 300
instructions (Section 4.3.2); Conduit translates offloaded vector
instructions into MVE (Helium) SIMD instructions for ISP execution.  The
model here captures what the cost function needs: which operations ISP
supports (all of them -- it is the general-purpose fallback) and how many
core cycles one SIMD beat of each operation takes.
"""

from __future__ import annotations

from typing import Dict, FrozenSet

from repro.common import OpType

#: ISP supports every operation type Conduit emits -- the controller cores
#: are the general-purpose fallback for control flow and unsupported ops.
ISP_SUPPORTED_OPS: FrozenSet[OpType] = frozenset(OpType)

#: Cycles per SIMD beat (one vector-register-width worth of elements) on the
#: Cortex-R8 + MVE model.  Values follow typical Helium timing: single-cycle
#: ALU/logical beats, two-cycle multiplies, long-latency divides.
_CYCLES_PER_BEAT: Dict[OpType, float] = {
    OpType.AND: 1.0, OpType.OR: 1.0, OpType.XOR: 1.0, OpType.NOT: 1.0,
    OpType.NAND: 2.0, OpType.NOR: 2.0, OpType.MAJ: 3.0,
    OpType.SHL: 1.0, OpType.SHR: 1.0,
    OpType.ADD: 1.0, OpType.SUB: 1.0,
    OpType.MUL: 2.0, OpType.MAC: 2.0, OpType.DIV: 12.0,
    OpType.REDUCE_ADD: 2.0, OpType.REDUCE_MAX: 2.0, OpType.REDUCE_MIN: 2.0,
    OpType.CMP_EQ: 1.0, OpType.CMP_LT: 1.0, OpType.CMP_GT: 1.0,
    OpType.SELECT: 1.0,
    OpType.COPY: 1.0, OpType.SHUFFLE: 2.0,
    OpType.GATHER: 4.0, OpType.SCATTER: 4.0,
    OpType.LOAD: 1.0, OpType.STORE: 1.0,
    OpType.SCALAR: 1.0, OpType.BRANCH: 2.0, OpType.CALL: 4.0,
}

#: Number of distinct native MVE/ARM instructions the translation table maps
#: to (Section 4.5 says the table covers more than 300 operation types).
ISP_NATIVE_INSTRUCTION_COUNT = 300


def cycles_per_beat(op: OpType) -> float:
    """Core cycles to process one SIMD beat of ``op``."""
    return _CYCLES_PER_BEAT.get(op, 2.0)


def mnemonic(op: OpType) -> str:
    """MVE-style mnemonic for the translated instruction (for traces)."""
    table = {
        OpType.AND: "vand", OpType.OR: "vorr", OpType.XOR: "veor",
        OpType.NOT: "vmvn", OpType.NAND: "vand+vmvn", OpType.NOR: "vorr+vmvn",
        OpType.MAJ: "vsel", OpType.SHL: "vshl", OpType.SHR: "vshr",
        OpType.ADD: "vadd", OpType.SUB: "vsub", OpType.MUL: "vmul",
        OpType.MAC: "vmla", OpType.DIV: "vdiv(seq)",
        OpType.REDUCE_ADD: "vaddv", OpType.REDUCE_MAX: "vmaxv",
        OpType.REDUCE_MIN: "vminv", OpType.CMP_EQ: "vcmp.eq",
        OpType.CMP_LT: "vcmp.lt", OpType.CMP_GT: "vcmp.gt",
        OpType.SELECT: "vpsel", OpType.COPY: "vmov",
        OpType.SHUFFLE: "vrev/vtbl", OpType.GATHER: "vldr.gather",
        OpType.SCATTER: "vstr.scatter", OpType.LOAD: "vldr",
        OpType.STORE: "vstr", OpType.SCALAR: "alu", OpType.BRANCH: "b",
        OpType.CALL: "bl",
    }
    return table.get(op, op.value)
