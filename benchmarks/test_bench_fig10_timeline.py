"""Benchmark: regenerate Fig. 10 (instruction-to-resource timeline)."""

from conftest import run_once

from repro.experiments import format_table, phase_summary, run_timeline


def test_bench_fig10_timeline(benchmark, bench_config):
    timelines = run_once(benchmark, run_timeline, bench_config, 12_000)
    rows = phase_summary(timelines, phases=6)
    print("\nFig. 10 -- LLaMA2 Inference instruction-to-resource phases")
    print(format_table(rows))
    assert set(timelines) == {"BW-Offloading", "DM-Offloading", "Conduit"}
    for policy, timeline in timelines.items():
        assert timeline, policy
        resources = {entry["resource"] for entry in timeline}
        assert resources <= {"isp", "pud-ssd", "ifp"}
    # Paper observation: BW-Offloading switches resources more often than
    # DM-Offloading, which pins phases to one resource.
    switches = {policy: sum(1 for a, b in zip(t, t[1:])
                            if a["resource"] != b["resource"])
                for policy, t in timelines.items()}
    assert switches["BW-Offloading"] >= switches["DM-Offloading"]
