"""Benchmark: regenerate Fig. 4 (case study on offloading computations)."""

from conftest import run_once

from repro.experiments import format_table, run_case_study


def test_bench_fig4_case_study(benchmark, bench_config):
    rows = run_once(benchmark, run_case_study, bench_config)
    print("\nFig. 4 -- execution time normalized to OSP (lower is better)")
    print(format_table(rows))
    categories = {row["category"] for row in rows}
    assert len(categories) == 3
    # OSP rows are the normalization baseline.
    for row in rows:
        if row["model"] == "OSP":
            assert abs(row["normalized_time"] - 1.0) < 1e-6
        assert row["normalized_time"] > 0
