"""Benchmark: Section 4.5 storage and runtime overheads."""

from conftest import run_once

from repro.experiments import run_overheads


def test_bench_overheads(benchmark, bench_config):
    overheads = run_once(benchmark, run_overheads, bench_config)
    print("\nSection 4.5 -- Conduit overheads (measured vs. paper)")
    for key, value in overheads.items():
        print(f"  {key}: {value:.2f}")
    assert overheads["translation_table_bytes"] <= \
        overheads["paper_translation_table_bytes"]
    assert overheads["avg_runtime_overhead_us"] < \
        overheads["paper_max_runtime_overhead_us"]
    assert overheads["max_runtime_overhead_us"] < 100.0
