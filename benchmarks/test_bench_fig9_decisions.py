"""Benchmark: regenerate Fig. 9 (offloading decisions per resource)."""

import pytest
from conftest import run_once

from repro.experiments import format_table
from repro.experiments.fig9_offload_decisions import run_offload_decisions


def test_bench_fig9_offload_decisions(benchmark, bench_config):
    rows = run_once(benchmark, run_offload_decisions, bench_config)
    print("\nFig. 9 -- fraction of instructions per computation resource")
    print(format_table(rows))
    for row in rows:
        assert row["isp"] + row["pud_ssd"] + row["ifp"] == \
            pytest.approx(1.0, abs=1e-6)
    # Paper observation: memory-bound workloads (AES, XOR Filter) use ISP
    # very sparingly under Conduit.
    for workload in ("AES", "XOR Filter"):
        conduit_row = next(r for r in rows
                           if r["workload"] == workload
                           and r["policy"] == "Conduit")
        assert conduit_row["isp"] < 0.5
