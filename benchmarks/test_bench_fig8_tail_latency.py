"""Benchmark: regenerate Fig. 8 (tail latencies)."""

from conftest import run_once

from repro.experiments import format_table, run_tail_latency


def test_bench_fig8_tail_latency(benchmark, bench_config):
    rows = run_once(benchmark, run_tail_latency, bench_config)
    print("\nFig. 8 -- per-instruction tail latencies (lower is better)")
    print(format_table(rows))
    by_key = {(row["workload"], row["policy"]): row for row in rows}
    for (workload, policy), row in by_key.items():
        assert row["p9999_us"] >= row["p99_us"] > 0
    # Shape check: Conduit's tails do not exceed DM-Offloading's by much on
    # the multiplication-heavy LLaMA2 workload (the paper shows large wins).
    llama = [row for row in rows if row["workload"] == "LlaMA2 Inference"]
    conduit = next(r for r in llama if r["policy"] == "Conduit")
    ideal = next(r for r in llama if r["policy"] == "Ideal")
    assert ideal["p99_us"] <= conduit["p99_us"]
