"""Benchmark: simulator throughput of the run-batched movement engine.

Unlike the figure benchmarks (which report *simulated* metrics), this
benchmark tracks the *simulator's own* speed so the perf trajectory in the
``BENCH_*.json`` archives captures the run-batched data-movement engine and
any future hot-path work.  Two numbers are reported:

* simulated instructions per second of wall-clock for one Conduit-policy
  run of the heaviest workload (LLM Training), including platform
  construction -- a sweep builds a fresh platform per (workload, policy)
  pair, so construction is part of the real cost;
* wall-clock for one full Fig. 7 policy sweep over all six workloads, the
  unit of work every figure harness pays.

The seed's per-page engine ran the full-policy sweep in ~46 s at
``BENCH_SCALE = 0.25`` (dominated by eager NAND-array construction and
per-page movement loops); the run-batched engine targets >= 5x on it.
"""

import time

from conftest import BENCH_SCALE, run_once

from repro.core.platform import SSDPlatform
from repro.core.runtime import ConduitRuntime
from repro.core.offload.policies import make_policy
from repro.experiments.runner import ExperimentRunner, FIG7_POLICIES


def _single_run(bench_config):
    runner = ExperimentRunner(bench_config)
    workload = [w for w in bench_config.workloads()
                if w.name == "LLM Training"][0]
    program = runner.program_for(workload)  # compile outside the clock
    started = time.perf_counter()
    platform = SSDPlatform(bench_config.platform)
    runtime = ConduitRuntime(platform, bench_config.runtime)
    result = runtime.execute(program, make_policy("Conduit"), workload.name)
    elapsed_s = time.perf_counter() - started
    return result, elapsed_s


def _full_sweep(bench_config):
    runner = ExperimentRunner(bench_config)
    started = time.perf_counter()
    results = runner.sweep(FIG7_POLICIES)
    elapsed_s = time.perf_counter() - started
    return results, elapsed_s


def test_bench_sim_instruction_throughput(benchmark, bench_config):
    result, elapsed_s = run_once(benchmark, _single_run, bench_config)
    instructions = len(result.records)
    throughput = instructions / elapsed_s
    benchmark.extra_info["instructions"] = instructions
    benchmark.extra_info["sim_instructions_per_second"] = throughput
    print(f"\nSim throughput (Conduit, LLM Training, incl. platform build): "
          f"{instructions} instructions in {elapsed_s * 1e3:.1f} ms "
          f"= {throughput:,.0f} instr/s")
    assert instructions > 0
    # Loose regression floor only: the run-batched engine sustains several
    # thousand instr/s on a dev machine at BENCH_SCALE=0.25 (seed:
    # ~500/s); the floor leaves ~10x slack for slow or contended CI
    # runners and shrinks with the scale (larger workloads spend more
    # wall-clock per instruction on movement).  The authoritative
    # trajectory is the recorded extra_info, not this assert.
    assert throughput > 500 * min(1.0, 0.25 / BENCH_SCALE)


def test_bench_full_policy_sweep_wall_clock(benchmark, bench_config):
    results, elapsed_s = run_once(benchmark, _full_sweep, bench_config)
    pairs = len(results)
    total_instructions = sum(len(r.records) for r in results.values())
    throughput = total_instructions / elapsed_s
    benchmark.extra_info["sweep_seconds"] = elapsed_s
    benchmark.extra_info["sweep_pairs"] = pairs
    benchmark.extra_info["sim_instructions_per_second"] = throughput
    print(f"\nFull Fig. 7 policy sweep: {pairs} (workload, policy) pairs, "
          f"{total_instructions} instructions in {elapsed_s:.2f} s "
          f"= {throughput:,.0f} instr/s (seed: ~46 s, batched: ~3 s)")
    # The measured speedup over the seed is ~15-20x at BENCH_SCALE=0.25
    # (seed: ~46 s); assert only a loose 2x floor, scaled with
    # BENCH_SCALE so raising the workload scale (a ROADMAP item) cannot
    # turn the benchmark red without a real regression.  The recorded
    # extra_info carries the authoritative numbers.
    seed_baseline_s = 46.0 * (BENCH_SCALE / 0.25)
    assert elapsed_s < seed_baseline_s / 2.0
