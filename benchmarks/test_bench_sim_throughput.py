"""Benchmark: simulator throughput and parallel-sweep speedup.

Unlike the figure benchmarks (which report *simulated* metrics), this
benchmark tracks the *simulator's own* speed so the perf trajectory in the
``BENCH_*.json`` archives captures the run-batched data-movement engine,
the sharded sweep engine and any future hot-path work.  Numbers reported:

* simulated instructions per second of wall-clock for one Conduit-policy
  run of the heaviest workload (LLM Training), including platform
  construction -- a sweep builds a fresh platform per (workload, policy)
  pair, so construction is part of the real cost;
* wall-clock for one full Fig. 7 policy sweep over all six workloads run
  serially, the unit of work every figure harness pays;
* wall-clock and speedup of the same sweep sharded over the process pool,
  which is what makes full-paper-scale sweeps (``BENCH_SCALE = 1.0``,
  exercised by the ``slow``-marked case) routine.

The seed's per-page engine ran the full-policy sweep in ~46 s at
``BENCH_SCALE = 0.25``; PR 1's run-batched engine brought that to ~2.4 s,
and the parallel engine divides the remaining wall-clock by the worker
count on multi-core machines.
"""

import dataclasses
import json
import os
import platform as host_platform
import sys
import time

import pytest
from conftest import BENCH_SCALE, FULL_SCALE, run_once

from repro.core.platform import SSDPlatform
from repro.core.runtime import ConduitRuntime
from repro.core.offload.policies import make_policy
from repro.experiments import ExperimentConfig
from repro.experiments.runner import (ExperimentRunner, FIG7_POLICIES,
                                      resolve_sweep_workers)

#: The parallel-speedup assertion needs real hardware parallelism; below
#: this many usable CPUs the benchmark still records numbers but does not
#: assert the >= 2x floor (4 workers timesharing 1 core cannot speed up).
MIN_CPUS_FOR_SPEEDUP_ASSERT = 4

#: Worker count targeted by the speedup benchmark (the acceptance bar is
#: ">= 2x faster with >= 4 workers than serial").
SPEEDUP_WORKERS = 4


def _usable_cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux
        return os.cpu_count() or 1


def _single_run(bench_config):
    runner = ExperimentRunner(bench_config)
    workload = [w for w in bench_config.workloads()
                if w.name == "LLM Training"][0]
    program = runner.program_for(workload)  # compile outside the clock
    started = time.perf_counter()
    platform = SSDPlatform(bench_config.platform)
    runtime = ConduitRuntime(platform, bench_config.runtime)
    result = runtime.execute(program, make_policy("Conduit"), workload.name)
    elapsed_s = time.perf_counter() - started
    return result, elapsed_s


def _full_sweep(bench_config):
    runner = ExperimentRunner(bench_config)
    started = time.perf_counter()
    results = runner.sweep(FIG7_POLICIES)
    elapsed_s = time.perf_counter() - started
    return results, elapsed_s


def _serial_vs_parallel_sweep(config, workers):
    """Run the full Fig. 7 sweep serially, then sharded; time both."""
    serial_runner = ExperimentRunner(config)
    started = time.perf_counter()
    serial = serial_runner.sweep(FIG7_POLICIES)
    serial_s = time.perf_counter() - started

    parallel_runner = ExperimentRunner(config)
    started = time.perf_counter()
    parallel = parallel_runner.sweep(FIG7_POLICIES, parallel=True,
                                     workers=workers)
    parallel_s = time.perf_counter() - started
    return serial, serial_s, parallel, parallel_s


def _assert_identical(serial, parallel):
    assert list(serial) == list(parallel)
    for key in serial:
        assert serial[key].total_time_ns == parallel[key].total_time_ns, key
        assert (serial[key].total_energy_nj ==
                parallel[key].total_energy_nj), key
        assert len(serial[key].records) == len(parallel[key].records), key


def test_bench_sim_instruction_throughput(benchmark, bench_config):
    result, elapsed_s = run_once(benchmark, _single_run, bench_config)
    instructions = len(result.records)
    throughput = instructions / elapsed_s
    benchmark.extra_info["instructions"] = instructions
    benchmark.extra_info["sim_instructions_per_second"] = throughput
    print(f"\nSim throughput (Conduit, LLM Training, incl. platform build): "
          f"{instructions} instructions in {elapsed_s * 1e3:.1f} ms "
          f"= {throughput:,.0f} instr/s")
    assert instructions > 0
    # Loose regression floor only: the run-batched engine sustains several
    # thousand instr/s on a dev machine at BENCH_SCALE=0.25 (seed:
    # ~500/s); the floor leaves ~10x slack for slow or contended CI
    # runners and shrinks with the scale (larger workloads spend more
    # wall-clock per instruction on movement).  The authoritative
    # trajectory is the recorded extra_info, not this assert.
    assert throughput > 500 * min(1.0, 0.25 / BENCH_SCALE)


def test_bench_full_policy_sweep_wall_clock(benchmark, bench_config):
    results, elapsed_s = run_once(benchmark, _full_sweep, bench_config)
    pairs = len(results)
    total_instructions = sum(len(r.records) for r in results.values())
    throughput = total_instructions / elapsed_s
    benchmark.extra_info["sweep_seconds"] = elapsed_s
    benchmark.extra_info["sweep_pairs"] = pairs
    benchmark.extra_info["sim_instructions_per_second"] = throughput
    print(f"\nFull Fig. 7 policy sweep (serial): {pairs} (workload, policy) "
          f"pairs, {total_instructions} instructions in {elapsed_s:.2f} s "
          f"= {throughput:,.0f} instr/s (per-page seed: ~46 s at 0.25)")
    # The measured speedup over the seed is ~15-20x at BENCH_SCALE=0.25
    # (seed: ~46 s); assert only a loose 2x floor, scaled with
    # BENCH_SCALE so raising the workload scale (a ROADMAP item) cannot
    # turn the benchmark red without a real regression.  The recorded
    # extra_info carries the authoritative numbers.
    seed_baseline_s = 46.0 * (BENCH_SCALE / 0.25)
    assert elapsed_s < seed_baseline_s / 2.0


def test_bench_parallel_sweep_speedup(benchmark, bench_config):
    """Sharded sweep: identical results, near-linear speedup on multicore."""
    workers = min(resolve_sweep_workers(None), SPEEDUP_WORKERS)
    serial, serial_s, parallel, parallel_s = run_once(
        benchmark, _serial_vs_parallel_sweep, bench_config, workers)
    _assert_identical(serial, parallel)
    speedup = serial_s / parallel_s if parallel_s else float("inf")
    cpus = _usable_cpus()
    benchmark.extra_info["serial_seconds"] = serial_s
    benchmark.extra_info["parallel_seconds"] = parallel_s
    benchmark.extra_info["parallel_speedup"] = speedup
    benchmark.extra_info["workers"] = workers
    benchmark.extra_info["usable_cpus"] = cpus
    print(f"\nFull Fig. 7 sweep, serial {serial_s:.2f} s vs "
          f"{workers}-worker sharded {parallel_s:.2f} s = "
          f"{speedup:.2f}x speedup ({cpus} usable CPUs)")
    # The >= 2x acceptance floor needs actual hardware parallelism: four
    # workers timesharing one or two cores cannot beat serial execution.
    # Single-core runners still verify result equality above and record
    # the measured numbers in extra_info.
    if workers >= SPEEDUP_WORKERS and cpus >= MIN_CPUS_FOR_SPEEDUP_ASSERT:
        assert speedup >= 2.0, (
            f"parallel sweep only {speedup:.2f}x faster with {workers} "
            f"workers on {cpus} CPUs")


#: Where the vectorized-engine perf record lands (repo root, next to the
#: other ``BENCH_*`` archives the docstring describes).
BENCH_RECORD_PATH = os.path.join(os.path.dirname(__file__), os.pardir,
                                 "BENCH_vectorized.json")

#: Schema version of the archived record.  The record is *tracked* but
#: overwritten by every benchmark run, so each entry must carry enough
#: metadata (scale, host, schema) to be interpretable after the machine
#: that wrote it is gone -- and so that a stale-schema entry fails the
#: suite loudly (``tests/test_bench_record.py`` pins the same literal)
#: instead of silently mixing fields from different eras.
#: Version 2: added ``schema_version``, ``host`` and ``recorded_unix``.
#: Version 3: added the wave-batched offload-decision A/B
#: (``reference_offload_sweep_s``, ``batched_over_reference_speedup``,
#: ``pr8_landing_vs_reference``) and the default-engine floor asserts.
BENCH_RECORD_SCHEMA_VERSION = 3

#: Fail-loud floor for "the default engine must not lose to its golden
#: reference".  Single-round wall-clock on a shared 1-CPU runner swings
#: by tens of percent, so the floor is a noise allowance, not a target:
#: a genuine regression (like the archived 0.85x object-vs-vectorized
#: reading at scale 1.0, since fixed by the single-page fast path)
#: trips it, while scheduler jitter does not.
DEFAULT_ENGINE_FLOOR = 0.70


def _host_metadata():
    """Where the record's live numbers were measured."""
    return {
        "platform": host_platform.platform(),
        "machine": host_platform.machine(),
        "python": sys.version.split()[0],
        "usable_cpus": _usable_cpus(),
    }

#: The paired A/B numbers recorded when the vectorized engine landed
#: (PR 6): Fig. 7 serial sweep at scale 0.25, alternating
#: baseline/current subprocesses on the same machine, best-vs-best over
#: 8 pairs.  Kept in the record so the trajectory has its anchor even
#: when the live run below executes on different hardware.
PR6_LANDING_RECORD = {
    "scale": 0.25,
    "pr5_baseline_best_s": 2.434,
    "vectorized_best_s": 1.057,
    "speedup_best_vs_best": 2.30,
    "per_pair_speedup_range": [2.0, 4.3],
    "methodology": ("paired A/B subprocess harness, alternating engines, "
                    "warm run timed; best-vs-best is the conservative "
                    "ratio under machine noise"),
}

#: The paired A/B numbers recorded when the wave-batched offload
#: decision engine landed (PR 8): Fig. 7 serial sweep at scale 0.25, 10
#: alternating in-process pairs after warmup on the same (1-CPU, noisy)
#: machine.  Honest result: the ISSUE targeted >= 1.5x but the measured
#: outcome is parity-to-slight-win -- real Fig. 7 programs slice into
#: ~1.5-member waves (operand overlap forces wave breaks), so the win
#: comes from the cheaper packed per-member decision path, not from
#: amortized collection.  Recorded anyway per the acceptance criteria;
#: the differential suite (``tests/test_batched_offload.py``) pins the
#: engines bit-equal, so the default stays on the batched path.
PR8_LANDING_RECORD = {
    "scale": 0.25,
    "reference_offload_best_s": 1.298,
    "batched_offload_best_s": 1.269,
    "speedup_best_vs_best": 1.02,
    "median_pair_speedup": 1.05,
    "target_speedup": 1.5,
    "target_met": False,
    "mean_wave_members": 1.47,
    "methodology": ("paired A/B in-process harness, 10 alternating "
                    "warm pairs, gc.collect() before each sweep; "
                    "best-vs-best plus the median per-pair ratio "
                    "under heavy 1-CPU machine noise"),
}


def test_bench_vectorized_engine_record(benchmark, bench_config):
    """Time the default engine against both golden references; archive.

    Three Fig. 7 sweeps in one timed round: the default configuration
    (vectorized movement + batched offload decisions), the object
    movement engine, and the per-instruction reference decision path.
    The live ratios track the current machine; the archived JSON also
    carries the pinned PR 6 and PR 8 landing measurements so the perf
    trajectory is recorded even as hardware changes underneath CI.
    Fails loudly (``DEFAULT_ENGINE_FLOOR``) when the default engine
    loses to either reference beyond single-round noise.
    """
    object_config = dataclasses.replace(
        bench_config,
        platform=dataclasses.replace(bench_config.platform,
                                     vectorized_movement=False))
    reference_config = dataclasses.replace(
        bench_config,
        platform=dataclasses.replace(bench_config.platform,
                                     batched_offload=False))

    def all_engines():
        vec_results, vec_s = _full_sweep(bench_config)
        obj_results, obj_s = _full_sweep(object_config)
        ref_results, ref_s = _full_sweep(reference_config)
        return vec_results, vec_s, obj_results, obj_s, ref_results, ref_s

    (vec_results, vec_s, obj_results, obj_s,
     ref_results, ref_s) = run_once(benchmark, all_engines)
    # Bit-equality is the engines' contract; a perf benchmark that
    # silently compared different answers would be meaningless.
    _assert_identical(vec_results, obj_results)
    _assert_identical(vec_results, ref_results)
    movement_ratio = obj_s / vec_s if vec_s else float("inf")
    decision_ratio = ref_s / vec_s if vec_s else float("inf")
    record = {
        "schema_version": BENCH_RECORD_SCHEMA_VERSION,
        "bench_scale": BENCH_SCALE,
        "host": _host_metadata(),
        "recorded_unix": round(time.time(), 3),
        "sweep_pairs": len(vec_results),
        "vectorized_sweep_s": vec_s,
        "object_sweep_s": obj_s,
        "reference_offload_sweep_s": ref_s,
        "vectorized_over_object_speedup": movement_ratio,
        "batched_over_reference_speedup": decision_ratio,
        "pr6_landing_vs_pr5": PR6_LANDING_RECORD,
        "pr8_landing_vs_reference": PR8_LANDING_RECORD,
    }
    with open(BENCH_RECORD_PATH, "w") as handle:
        json.dump(record, handle, indent=2, sort_keys=True)
        handle.write("\n")
    benchmark.extra_info.update(record)
    print(f"\nDefault engine: {vec_s:.2f} s vs object movement "
          f"{obj_s:.2f} s ({movement_ratio:.2f}x) vs reference decisions "
          f"{ref_s:.2f} s ({decision_ratio:.2f}x) at scale {BENCH_SCALE} "
          f"(record: {os.path.abspath(BENCH_RECORD_PATH)})")
    assert vec_s > 0 and obj_s > 0 and ref_s > 0
    # The default engine must not *lose* to its golden references: the
    # archived 0.85x era (object engine beating the vectorized one at
    # scale 1.0) is exactly the regression class this guards against.
    assert movement_ratio >= DEFAULT_ENGINE_FLOOR, (
        f"vectorized movement engine lost to the object reference "
        f"({movement_ratio:.2f}x < {DEFAULT_ENGINE_FLOOR}x floor) at "
        f"scale {BENCH_SCALE}")
    assert decision_ratio >= DEFAULT_ENGINE_FLOOR, (
        f"batched offload engine lost to the per-instruction reference "
        f"({decision_ratio:.2f}x < {DEFAULT_ENGINE_FLOOR}x floor) at "
        f"scale {BENCH_SCALE}")


@pytest.mark.slow
def test_bench_full_scale_parallel_sweep(benchmark):
    """The paper-scale (``workload_scale=1.0``) Fig. 7 sweep, sharded.

    ``slow``-marked: run with ``pytest -m slow benchmarks`` when the full
    Table 2 footprints are wanted; the default tier-1 run deselects it.
    """
    config = ExperimentConfig(workload_scale=FULL_SCALE)
    runner = ExperimentRunner(config)

    def sweep():
        started = time.perf_counter()
        results = runner.sweep(FIG7_POLICIES, parallel=True)
        return results, time.perf_counter() - started

    results, elapsed_s = run_once(benchmark, sweep)
    pairs = len(results)
    benchmark.extra_info["sweep_seconds"] = elapsed_s
    benchmark.extra_info["sweep_pairs"] = pairs
    benchmark.extra_info["workers"] = runner.last_sweep_stats.workers
    print(f"\nFull-scale (1.0) Fig. 7 sweep: {pairs} pairs in "
          f"{elapsed_s:.2f} s with {runner.last_sweep_stats.workers} "
          "workers")
    assert pairs == 6 * len(FIG7_POLICIES)
    for result in results.values():
        assert result.total_time_ns > 0
