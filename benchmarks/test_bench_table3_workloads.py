"""Benchmark: regenerate Table 3 (workload characteristics)."""

from conftest import run_once

from repro.experiments import format_table, run_table3


def test_bench_table3_workload_characteristics(benchmark, bench_config):
    rows = run_once(benchmark, run_table3, bench_config)
    print("\nTable 3 -- workload characteristics (measured vs. paper)")
    print(format_table(rows))
    assert len(rows) == 6
    for row in rows:
        assert 0.0 < row["vectorizable_%"] <= 100.0
        assert row["low_%"] + row["medium_%"] + row["high_%"] == \
            __import__("pytest").approx(100.0, abs=0.5)
