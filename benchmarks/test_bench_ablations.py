"""Ablation benchmarks for the design choices called out in DESIGN.md.

* Cost-function features: drop the queueing-delay, data-movement or
  dependence-delay terms (and replace the max-of-delays combination with a
  sum) and measure the impact on Conduit's execution time.
* Coherence: lazy (paper) vs strict flush-on-every-write.
* Vector width: the page-aligned 4096-element width vs narrower widths.
"""

import pytest
from conftest import run_once

from repro.core.coherence import CoherencePolicy
from repro.core.offload.cost_model import CostModelConfig
from repro.core.offload.policies import ConduitPolicy
from repro.core.platform import PlatformConfig
from repro.core.compiler.vectorizer import VectorizerConfig
from repro.core.runtime import ConduitRuntime
from repro.core.platform import SSDPlatform
from repro.experiments import ExperimentConfig, ExperimentRunner, format_table
from repro.workloads import Heat3DWorkload, LlamaInferenceWorkload


COST_ABLATIONS = {
    "full": CostModelConfig(),
    "no-queueing-delay": CostModelConfig(include_queueing_delay=False),
    "no-data-movement": CostModelConfig(include_data_movement=False),
    "no-dependence-delay": CostModelConfig(include_dependence_delay=False),
    "sum-of-delays": CostModelConfig(combine_delays_with_max=False),
}


def _run_cost_ablations(config):
    runner = ExperimentRunner(config)
    workload = LlamaInferenceWorkload(scale=config.workload_scale)
    rows = []
    for name, cost_config in COST_ABLATIONS.items():
        result = runner.run_with_policy(workload, ConduitPolicy(cost_config))
        rows.append({"variant": name,
                     "time_ms": result.total_time_ns / 1e6,
                     "energy_mJ": result.total_energy_nj / 1e6})
    return rows


def test_bench_ablation_cost_features(benchmark, bench_config):
    rows = run_once(benchmark, _run_cost_ablations, bench_config)
    print("\nAblation -- Conduit cost-function features (LLaMA2 Inference)")
    print(format_table(rows))
    by_variant = {row["variant"]: row["time_ms"] for row in rows}
    # The full cost function should not be slower than dropping the
    # data-movement term (which blinds Conduit to operand locality).
    assert by_variant["full"] <= by_variant["no-data-movement"] * 2.0


def _run_coherence_ablation(config):
    workload = Heat3DWorkload(scale=config.workload_scale)
    program, _ = workload.vector_program()
    rows = []
    for name, policy in (("lazy", CoherencePolicy.LAZY),
                         ("strict", CoherencePolicy.STRICT)):
        platform_config = PlatformConfig(
            ssd=config.platform.ssd, dram=config.platform.dram,
            dram_compute_window_bytes=config.platform.dram_compute_window_bytes,
            sram_window_bytes=config.platform.sram_window_bytes,
            host_cache_bytes=config.platform.host_cache_bytes,
            coherence_policy=policy)
        platform = SSDPlatform(platform_config)
        result = ConduitRuntime(platform).execute(program, ConduitPolicy(),
                                                  workload.name)
        rows.append({"coherence": name,
                     "time_ms": result.total_time_ns / 1e6,
                     "flushes": platform.coherence.flushes})
    return rows


def test_bench_ablation_coherence(benchmark, bench_config):
    rows = run_once(benchmark, _run_coherence_ablation, bench_config)
    print("\nAblation -- lazy vs strict coherence (heat-3d)")
    print(format_table(rows))
    lazy = next(row for row in rows if row["coherence"] == "lazy")
    strict = next(row for row in rows if row["coherence"] == "strict")
    # Strict coherence flushes on every write; lazy defers almost all of it.
    assert strict["flushes"] >= lazy["flushes"]


def _run_vector_width_ablation(config):
    workload = Heat3DWorkload(scale=config.workload_scale)
    rows = []
    for width in (4096, 1024, 256):
        program, _ = workload.vector_program(VectorizerConfig(
            vector_width=width))
        platform = SSDPlatform(config.platform)
        result = ConduitRuntime(platform).execute(program, ConduitPolicy(),
                                                  workload.name)
        rows.append({"vector_width": width,
                     "instructions": result.instructions,
                     "time_ms": result.total_time_ns / 1e6,
                     "avg_overhead_us": result.offload_overhead_avg_ns / 1e3})
    return rows


def test_bench_ablation_vector_width(benchmark, bench_config):
    rows = run_once(benchmark, _run_vector_width_ablation, bench_config)
    print("\nAblation -- compile-time vector width (heat-3d)")
    print(format_table(rows))
    by_width = {row["vector_width"]: row for row in rows}
    # Narrower vectors emit more instructions and pay more per-instruction
    # offloading overhead, which is why Conduit matches the flash page size.
    assert by_width[256]["instructions"] > by_width[4096]["instructions"]
    assert by_width[4096]["time_ms"] <= by_width[256]["time_ms"] * 1.3
