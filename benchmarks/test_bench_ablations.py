"""Ablation benchmarks for the design choices called out in DESIGN.md.

* Cost-function features: drop the queueing-delay, data-movement or
  dependence-delay terms (and replace the max-of-delays combination with a
  sum) and measure the impact on Conduit's execution time.
* Coherence: lazy (paper) vs strict flush-on-every-write.
* Vector width: the page-aligned 4096-element width vs narrower widths.

The loops themselves live in :mod:`repro.experiments.ablations` (each is a
registered experiment, ``python -m repro run cost_ablation`` etc.); these
benchmarks time the shared row builders and keep the sanity assertions.
"""

from conftest import run_once

from repro.experiments import (cost_ablation_rows, coherence_ablation_rows,
                               format_table, vector_width_ablation_rows)


def test_bench_ablation_cost_features(benchmark, bench_config):
    rows = run_once(benchmark, cost_ablation_rows, bench_config)
    print("\nAblation -- Conduit cost-function features (LLaMA2 Inference)")
    print(format_table(rows))
    by_variant = {row["variant"]: row["time_ms"] for row in rows}
    # The full cost function should not be slower than dropping the
    # data-movement term (which blinds Conduit to operand locality).
    assert by_variant["full"] <= by_variant["no-data-movement"] * 2.0


def test_bench_ablation_coherence(benchmark, bench_config):
    rows = run_once(benchmark, coherence_ablation_rows, bench_config)
    print("\nAblation -- lazy vs strict coherence (heat-3d)")
    print(format_table(rows))
    lazy = next(row for row in rows if row["coherence"] == "lazy")
    strict = next(row for row in rows if row["coherence"] == "strict")
    # Strict coherence flushes on every write; lazy defers almost all of it.
    assert strict["flushes"] >= lazy["flushes"]


def test_bench_ablation_vector_width(benchmark, bench_config):
    rows = run_once(benchmark, vector_width_ablation_rows, bench_config)
    print("\nAblation -- compile-time vector width (heat-3d)")
    print(format_table(rows))
    by_width = {row["vector_width"]: row for row in rows}
    # Narrower vectors emit more instructions and pay more per-instruction
    # offloading overhead, which is why Conduit matches the flash page size.
    assert by_width[256]["instructions"] > by_width[4096]["instructions"]
    assert by_width[4096]["time_ms"] <= by_width[256]["time_ms"] * 1.3
