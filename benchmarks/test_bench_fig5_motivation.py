"""Benchmark: regenerate Fig. 5 (effectiveness of prior offloading models)."""

from conftest import run_once

from repro.experiments import format_table, nested_to_rows, run_motivation


def test_bench_fig5_prior_offloading_speedups(benchmark, bench_config):
    table = run_once(benchmark, run_motivation, bench_config)
    print("\nFig. 5 -- speedup over CPU (higher is better)")
    print(format_table(nested_to_rows(table)))
    gmean = table["GMEAN"]
    # Shape checks from the paper's observations: the Ideal policy is the
    # upper bound and beats every prior offloading model.
    assert gmean["Ideal"] >= gmean["DM-Offloading"]
    assert gmean["Ideal"] >= gmean["BW-Offloading"]
    assert gmean["Ideal"] >= gmean["ISP"]
    assert gmean["Ideal"] > 1.0
