"""Shared configuration for the benchmark harness.

Every benchmark regenerates one table or figure of the paper's evaluation.
The sweeps run once per benchmark (``pedantic`` with a single round): the
interesting output is the printed table, not the wall-clock variance, and a
full multi-policy sweep is far too expensive to repeat dozens of times.

Benchmarks default to the paper's full Table 2 footprints: the vectorized
movement engine made full-scale sweeps cheap enough that there is no
reason to benchmark a reduced model.  Environment knobs still control the
scale/parallelism trade-off:

* ``REPRO_BENCH_SCALE`` -- workload scale (default ``1.0``, the paper's
  full footprints; turn it down for very slow machines.  The
  ``slow``-marked full-scale sweep benchmark keeps its marker as the
  escape hatch for the default tier-1 run, which deselects it).
* ``REPRO_SWEEP_WORKERS`` -- sweep worker count (``1`` forces serial
  execution for reproducible CI timings; default ``os.cpu_count()``).
* ``REPRO_BENCH_PLATFORM`` -- platform variant the whole suite runs on
  (default ``default``; any name in
  :data:`repro.experiments.PLATFORM_VARIANTS`, e.g. ``cxl-pud``, grows
  the benchmarked roster without touching the benchmarks).

The platform configuration is *not* restated here: it comes from
:func:`repro.experiments.experiment_platform_config` via the
``ExperimentConfig`` default, the same single source the figure harnesses
and the golden regression tests use, so the two can never drift apart.
"""

from __future__ import annotations

import os

import pytest

from repro.experiments import ExperimentConfig, platform_variant

#: Workload scale used by all benchmarks (``REPRO_BENCH_SCALE`` overrides).
BENCH_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))

#: Platform variant the benchmarks run on (``REPRO_BENCH_PLATFORM``).
BENCH_PLATFORM = os.environ.get("REPRO_BENCH_PLATFORM", "default")

#: The paper's full Table 2 footprints, used by the ``slow`` benchmarks.
FULL_SCALE = 1.0


@pytest.fixture(scope="session")
def bench_config() -> ExperimentConfig:
    return ExperimentConfig(workload_scale=BENCH_SCALE,
                            platform=platform_variant(BENCH_PLATFORM))


@pytest.fixture(scope="session")
def shared_cache() -> dict:
    """Session-wide cache so related benchmarks can reuse expensive sweeps."""
    return {}


def run_once(benchmark, func, *args, **kwargs):
    """Run ``func`` exactly once under pytest-benchmark and return its value."""
    return benchmark.pedantic(func, args=args, kwargs=kwargs, rounds=1,
                              iterations=1, warmup_rounds=0)
