"""Shared configuration for the benchmark harness.

Every benchmark regenerates one table or figure of the paper's evaluation.
The sweeps run once per benchmark (``pedantic`` with a single round): the
interesting output is the printed table, not the wall-clock variance, and a
full multi-policy sweep is far too expensive to repeat dozens of times.

Benchmarks use a reduced workload scale so the whole suite finishes in a few
minutes while preserving the capacity ratios that drive the paper's
behaviour (footprints exceed the SSD-DRAM compute window and host cache).
"""

from __future__ import annotations

import pytest

from repro.experiments import ExperimentConfig, experiment_platform_config

#: Workload scale used by all benchmarks.
BENCH_SCALE = 0.25


@pytest.fixture(scope="session")
def bench_config() -> ExperimentConfig:
    return ExperimentConfig(workload_scale=BENCH_SCALE,
                            platform=experiment_platform_config())


@pytest.fixture(scope="session")
def shared_cache() -> dict:
    """Session-wide cache so related benchmarks can reuse expensive sweeps."""
    return {}


def run_once(benchmark, func, *args, **kwargs):
    """Run ``func`` exactly once under pytest-benchmark and return its value."""
    return benchmark.pedantic(func, args=args, kwargs=kwargs, rounds=1,
                              iterations=1, warmup_rounds=0)
