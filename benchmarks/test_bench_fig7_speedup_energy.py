"""Benchmarks: regenerate Fig. 7(a) speedup and Fig. 7(b) energy."""

from conftest import BENCH_SCALE, run_once

from repro.experiments import format_table, nested_to_rows, run_fig7


def _fig7(shared_cache, bench_config):
    if "fig7" not in shared_cache:
        shared_cache["fig7"] = run_fig7(bench_config)
    return shared_cache["fig7"]


def test_bench_fig7a_speedup(benchmark, bench_config, shared_cache):
    results = run_once(benchmark, _fig7, shared_cache, bench_config)
    print("\nFig. 7(a) -- speedup over CPU (higher is better)")
    print(format_table(nested_to_rows(results.speedups)))
    gmean = results.speedups["GMEAN"]
    print(f"\nConduit vs DM-Offloading: {results.conduit_vs('DM-Offloading'):.2f}x"
          " (paper: 1.8x); "
          f"Conduit/Ideal: {gmean['Conduit'] / gmean['Ideal']:.2f}"
          " (paper: 0.62)")
    # Shape checks: Conduit beats every prior offloading policy and every
    # single-resource NDP baseline except PuD-SSD (which it ties within the
    # scaled-down configuration; see EXPERIMENTS.md) and stays below Ideal.
    for policy in ("ISP", "Flash-Cosmos", "Ares-Flash", "BW-Offloading",
                   "DM-Offloading"):
        assert gmean["Conduit"] >= gmean[policy], policy
    assert gmean["Conduit"] >= 0.7 * gmean["PuD-SSD"]
    assert gmean["Conduit"] <= gmean["Ideal"]


def test_bench_fig7b_energy(benchmark, bench_config, shared_cache):
    results = run_once(benchmark, _fig7, shared_cache, bench_config)
    rows = []
    for workload, row in results.energy.items():
        for policy, parts in row.items():
            rows.append({"workload": workload, "policy": policy, **parts})
    print("\nFig. 7(b) -- energy normalized to CPU (lower is better)")
    print(format_table(rows))
    reduction = results.conduit_energy_reduction_vs("DM-Offloading")
    print(f"\nConduit energy reduction vs DM-Offloading: {100 * reduction:.1f}%"
          " (paper: 46.8%)")
    # Conduit's average normalized energy stays near or below the host
    # CPU baseline.  At reduced scales it is comfortably below 1.0; at
    # the paper's full footprints (now the benchmark default) the
    # reduced-parameter energy model averages ~1.04 -- movement's energy
    # share grows with footprint -- so the bound loosens there instead of
    # pretending this model reproduces the paper's absolute 46.8%
    # reduction headline.
    conduit_totals = [row["Conduit"]["total"]
                      for row in results.energy.values()]
    average = sum(conduit_totals) / len(conduit_totals)
    assert average < (1.1 if BENCH_SCALE >= 1.0 else 1.0)
