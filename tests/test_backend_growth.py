"""Config-grown platforms: per-core ISP, the CXL PuD tier, cache keys.

These tests prove the tentpole claim end-to-end: enabling the N-core ISP
roster or the CXL-attached PuD tier is *purely* a
:class:`~repro.core.platform.PlatformConfig` entry -- the offloader, cost
model and feature collector run unchanged -- and the cost model's
decisions actually shift onto the grown backends.  They also pin the
sweep-cache behaviour: a differently-shaped platform can never be served
another shape's cached results.
"""

from __future__ import annotations

import pytest

from repro.common import BackendId, MIB, Resource
from repro.core.offload.cost_model import CostFunction
from repro.core.offload.policies import ConduitPolicy, make_policy
from repro.core.platform import PlatformConfig, SSDPlatform
from repro.core.runtime import ConduitRuntime
from repro.dram.cxl import CXLPuDConfig
from repro.experiments import ExperimentConfig, RunSpec, run_spec_key
from repro.experiments.backend_ablation import run_backend_ablation
from repro.ssd.config import small_ssd_config
from repro.workloads import LLMTrainingWorkload, LlamaInferenceWorkload

from tests.test_offload import make_features


def _config(**kwargs) -> PlatformConfig:
    return PlatformConfig(ssd=small_ssd_config(),
                          dram_compute_window_bytes=2 * MIB,
                          host_cache_bytes=2 * MIB, **kwargs)


def _run(platform_config: PlatformConfig, workload):
    program, _ = workload.vector_program()
    return ConduitRuntime(SSDPlatform(platform_config)).execute(
        program, ConduitPolicy(), workload.name)


class TestMultiCoreISP:
    def test_per_core_backends_receive_work(self):
        workload = LLMTrainingWorkload(scale=0.05)
        result = _run(_config(isp_cores=3), workload)
        used = {record.resource for record in result.records}
        per_core = {resource for resource in used
                    if isinstance(resource, BackendId)
                    and resource.kind is Resource.ISP}
        # The cost function spread ISP-bound work over several cores.
        assert len(per_core) >= 2, used
        # The pooled identity no longer exists on this roster.
        assert Resource.ISP not in used

    def test_family_mix_is_preserved_across_rosters(self):
        workload = LLMTrainingWorkload(scale=0.05)
        pooled = _run(_config(), workload)
        split = _run(_config(isp_cores=3), workload)
        # Aggregated by family, both rosters cover the same three kinds.
        assert set(pooled.kind_fractions()) == set(split.kind_fractions())
        assert split.kind_fractions()[Resource.ISP] > 0

    def test_single_resource_baseline_balances_cores(self):
        workload = LLMTrainingWorkload(scale=0.05)
        program, _ = workload.vector_program()
        platform = SSDPlatform(_config(isp_cores=3))
        result = ConduitRuntime(platform).execute(
            program, make_policy("ISP"), workload.name)
        cores_used = {record.resource for record in result.records}
        assert len(cores_used) >= 2  # least-queued spread, not core 0 only


class TestCXLPuDTier:
    def test_cost_model_offloads_to_the_tier(self):
        workload = LlamaInferenceWorkload(scale=0.05)
        result = _run(_config(cxl_pud=CXLPuDConfig()), workload)
        fractions = result.ssd_resource_fractions()
        tier = BackendId("cxl-pud", Resource.PUD)
        assert fractions.get(tier, 0.0) > 0.0, fractions
        # Tier energy is accounted under its own report key.
        assert result.energy.per_resource_nj.get("cxl-pud", 0.0) > 0.0

    def test_tier_absent_from_default_roster(self):
        workload = LlamaInferenceWorkload(scale=0.05)
        result = _run(_config(), workload)
        tier = BackendId("cxl-pud", Resource.PUD)
        assert tier not in result.ssd_resource_fractions()

    def test_ablation_harness_reports_decision_shift(self):
        config = ExperimentConfig(workload_scale=0.05)
        rows = run_backend_ablation(config,
                                    workload_names=("LlaMA2 Inference",))
        assert len(rows) == 3  # one row per roster
        by_roster = {row["roster"]: row for row in rows}
        assert by_roster["default"]["grown_backends"] == 0.0
        assert by_roster["cxl-pud"]["grown_backends"] > 0.0


class TestSweepCacheRosterKeys:
    def test_roster_changes_the_run_spec_key(self):
        base = RunSpec(workload="XOR Filter", scale=0.05, policy="Conduit",
                       platform=_config())
        grown_isp = RunSpec(workload="XOR Filter", scale=0.05,
                            policy="Conduit",
                            platform=_config(isp_cores=4))
        grown_cxl = RunSpec(workload="XOR Filter", scale=0.05,
                            policy="Conduit",
                            platform=_config(cxl_pud=CXLPuDConfig()))
        keys = {run_spec_key(base), run_spec_key(grown_isp),
                run_spec_key(grown_cxl)}
        assert len(keys) == 3

    def test_key_is_stable_for_equal_specs(self):
        first = RunSpec(workload="XOR Filter", scale=0.05, policy="Conduit",
                        platform=_config(isp_cores=2))
        second = RunSpec(workload="XOR Filter", scale=0.05, policy="Conduit",
                         platform=_config(isp_cores=2))
        assert run_spec_key(first) == run_spec_key(second)


class TestRegistrationOrderTieBreak:
    def test_exact_tie_goes_to_first_registered(self):
        # ISP is registered before PUD and IFP; on an exact cost tie the
        # argmin must keep registration order -- not enum-value order,
        # which would pick IFP ("ifp" < "isp" < "pud-ssd").
        features = make_features(isp=(5.0, 0.0, 0.0, 0.0),
                                 pud=(5.0, 0.0, 0.0, 0.0),
                                 ifp=(5.0, 0.0, 0.0, 0.0))
        target, _ = CostFunction().select(features)
        assert target is Resource.ISP

    def test_partial_tie_respects_candidate_order(self):
        features = make_features(isp=(9.0, 0.0, 0.0, 0.0),
                                 pud=(5.0, 0.0, 0.0, 0.0),
                                 ifp=(5.0, 0.0, 0.0, 0.0))
        target, _ = CostFunction().select(features)
        assert target is Resource.PUD  # registered before IFP
