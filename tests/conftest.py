"""Shared fixtures for the test suite.

Tests run against reduced-geometry SSDs and small capacity windows so each
test finishes quickly while exercising the same code paths (including
capacity-pressure behaviour such as evictions and mapping-cache misses).
"""

from __future__ import annotations

import pytest

from repro.common import KIB, MIB, OpType
from repro.core.compiler.frontend import (Loop, ScalarProgram,
                                          ScalarStatement)
from repro.core.compiler.ir import ArrayRef, ArraySpec, VectorInstruction, \
    VectorProgram
from repro.core.compiler.vectorizer import AutoVectorizer, VectorizerConfig
from repro.core.platform import PlatformConfig, SSDPlatform
from repro.ssd.config import SSDConfig, small_ssd_config


@pytest.fixture
def small_ssd() -> SSDConfig:
    """A reduced-geometry SSD configuration."""
    return small_ssd_config()


@pytest.fixture
def platform_config(small_ssd: SSDConfig) -> PlatformConfig:
    """Platform with small capacity windows (forces realistic evictions)."""
    return PlatformConfig(ssd=small_ssd,
                          dram_compute_window_bytes=1 * MIB,
                          sram_window_bytes=256 * KIB,
                          host_cache_bytes=1 * MIB)


@pytest.fixture
def platform(platform_config: PlatformConfig) -> SSDPlatform:
    return SSDPlatform(platform_config)


@pytest.fixture
def tiny_scalar_program() -> ScalarProgram:
    """A small, fully vectorizable two-statement loop program."""
    program = ScalarProgram("tiny")
    program.declare_array("a", 64 * 1024, element_bits=32)
    program.declare_array("b", 64 * 1024, element_bits=32)
    program.add_loop(Loop(
        name="main", trip_count=64 * 1024,
        body=[
            ScalarStatement(op=OpType.ADD, dest="b", sources=("a", "b")),
            ScalarStatement(op=OpType.XOR, dest="a", sources=("a", "b")),
        ],
        repetitions=2))
    return program


@pytest.fixture
def tiny_vector_program(tiny_scalar_program: ScalarProgram) -> VectorProgram:
    program, _ = AutoVectorizer(VectorizerConfig()).vectorize(
        tiny_scalar_program)
    return program


@pytest.fixture
def manual_vector_program() -> VectorProgram:
    """A hand-built three-instruction program with an explicit dependency."""
    program = VectorProgram("manual",
                            [ArraySpec("x", 16384, 32),
                             ArraySpec("y", 16384, 32)])
    program.add(VectorInstruction(
        uid=0, op=OpType.AND, dest=ArrayRef("y", 0, 4096),
        sources=(ArrayRef("x", 0, 4096), ArrayRef("y", 0, 4096))))
    program.add(VectorInstruction(
        uid=1, op=OpType.ADD, dest=ArrayRef("y", 4096, 4096),
        sources=(ArrayRef("x", 4096, 4096),)))
    program.add(VectorInstruction(
        uid=2, op=OpType.MUL, dest=ArrayRef("x", 0, 4096),
        sources=(ArrayRef("y", 0, 4096),), depends_on=(0,)))
    return program
