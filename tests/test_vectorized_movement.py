"""Differential suite for the vectorized movement engine.

``PlatformConfig.vectorized_movement`` selects a numpy flat-array fast
path inside the run-batched data-movement engine; the object engine stays
the bit-exact golden reference (mirroring the ``batched_movement``
pattern).  Bit-equality -- not float tolerance -- is the contract: the two
engines must produce *identical* :class:`ExecutionResult` trees, which is
also what lets them share sweep-cache entries (the engine flag is popped
from :func:`run_spec_key`).

Three layers:

* property-based sweep points (Hypothesis): random (workload, policy,
  scale, platform-variant roster) combinations run on both engines;
* property-based synthetic programs (Hypothesis): random instruction
  streams (ops, operand offsets, dependency chains) whose arrival
  patterns are not constrained to anything a registered workload emits;
* the cache-key identity the engine split relies on.
"""

from __future__ import annotations

import dataclasses

from hypothesis import given, settings, strategies as st

from repro.common import KIB, MIB, OpType
from repro.core.compiler.ir import (ArrayRef, ArraySpec, VectorInstruction,
                                    VectorProgram)
from repro.core.offload.policies import make_policy
from repro.core.platform import PlatformConfig, SSDPlatform
from repro.core.runtime import ConduitRuntime
from repro.experiments import ExperimentConfig, ExperimentRunner, \
    platform_variant
from repro.experiments.runner import RunSpec, run_spec_key
from repro.ssd.config import small_ssd_config
from repro.workloads import workload_by_name

#: Enum members are sorted before ``sampled_from`` so the Hypothesis
#: database keys are stable across interpreter runs (set iteration order
#: would shuffle them).
PROGRAM_OPS = sorted((OpType.ADD, OpType.MUL, OpType.XOR, OpType.AND),
                     key=lambda op: op.value)


def _assert_bit_equal(vec, obj):
    """Every field of the two execution results must match exactly."""
    assert vec.total_time_ns == obj.total_time_ns
    assert vec.total_energy_nj == obj.total_energy_nj
    assert vec.energy == obj.energy
    assert vec.breakdown == obj.breakdown
    assert vec.records == obj.records
    assert vec.offload_overhead_avg_ns == obj.offload_overhead_avg_ns
    assert vec.offload_overhead_max_ns == obj.offload_overhead_max_ns


class TestRandomSweepPoints:
    """Random rosters / scales / policies: vectorized == object engine."""

    @given(workload=st.sampled_from(["AES", "XOR Filter", "jacobi-1d"]),
           policy=st.sampled_from(["Conduit", "DM-Offloading", "PuD-SSD",
                                   "CPU"]),
           scale=st.sampled_from([0.02, 0.05]),
           variant=st.sampled_from(["default", "multicore-isp", "cxl-pud"]),
           feedback=st.booleans())
    @settings(max_examples=10, deadline=None)
    def test_engines_bit_equal(self, workload, policy, scale, variant,
                               feedback):
        results = []
        for vectorized in (True, False):
            platform = dataclasses.replace(
                platform_variant(variant), vectorized_movement=vectorized,
                contention_feedback=feedback)
            runner = ExperimentRunner(
                ExperimentConfig(workload_scale=scale, platform=platform))
            results.append(
                runner.run(workload_by_name(workload, scale=scale), policy))
        _assert_bit_equal(*results)


def _small_config(**overrides) -> PlatformConfig:
    return PlatformConfig(ssd=small_ssd_config(),
                          dram_compute_window_bytes=1 * MIB,
                          sram_window_bytes=256 * KIB,
                          host_cache_bytes=1 * MIB, **overrides)


#: One synthetic instruction: (op index, dest slot, source slots, chain).
#: Slots address 4096-element regions of two declared 64 Ki-element
#: arrays, so random streams trigger real window pressure and coherence
#: ping-pong on the small platform above.
INSTRUCTION = st.tuples(
    st.integers(min_value=0, max_value=len(PROGRAM_OPS) - 1),
    st.integers(min_value=0, max_value=2 * 12 - 1),
    st.lists(st.integers(min_value=0, max_value=2 * 12 - 1),
             min_size=1, max_size=2),
    st.booleans())


def _build_program(stream) -> VectorProgram:
    arrays = [ArraySpec("a", 64 * 1024, 32), ArraySpec("b", 64 * 1024, 32)]
    program = VectorProgram("generated", arrays)

    def ref(slot: int) -> ArrayRef:
        return ArrayRef("ab"[slot // 12], (slot % 12) * 4096, 4096)

    for uid, (op_index, dest, sources, chain) in enumerate(stream):
        program.add(VectorInstruction(
            uid=uid, op=PROGRAM_OPS[op_index], dest=ref(dest),
            sources=tuple(ref(s) for s in sources),
            depends_on=(uid - 1,) if chain and uid else ()))
    return program


class TestRandomPrograms:
    """Random instruction streams: vectorized == object engine."""

    @given(stream=st.lists(INSTRUCTION, min_size=1, max_size=24),
           policy=st.sampled_from(["Conduit", "DM-Offloading"]))
    @settings(max_examples=15, deadline=None)
    def test_engines_bit_equal(self, stream, policy):
        results = []
        for vectorized in (True, False):
            runtime = ConduitRuntime(
                SSDPlatform(_small_config(vectorized_movement=vectorized)))
            results.append(runtime.execute(_build_program(stream),
                                           make_policy(policy)))
        _assert_bit_equal(*results)

    @given(stream=st.lists(INSTRUCTION, min_size=1, max_size=16))
    @settings(max_examples=8, deadline=None)
    def test_batched_object_engine_matches_per_page_reference(self, stream):
        """The object engine itself stays pinned to the per-page path."""
        batched = ConduitRuntime(SSDPlatform(_small_config(
            vectorized_movement=False, batched_movement=True)))
        per_page = ConduitRuntime(SSDPlatform(_small_config(
            vectorized_movement=False, batched_movement=False)))
        program = _build_program(stream)
        a = batched.execute(program, make_policy("Conduit"))
        b = per_page.execute(program, make_policy("Conduit"))
        _assert_bit_equal(a, b)


class TestCacheKeyIdentity:
    """Both engines must share sweep-cache entries (bit-equal results)."""

    def test_engine_flag_excluded_from_run_spec_key(self):
        base = ExperimentConfig(workload_scale=0.05).platform
        on = dataclasses.replace(base, vectorized_movement=True)
        off = dataclasses.replace(base, vectorized_movement=False)
        assert (run_spec_key(RunSpec("AES", 0.05, "Conduit", on))
                == run_spec_key(RunSpec("AES", 0.05, "Conduit", off)))

    def test_other_platform_knobs_still_keyed(self):
        base = ExperimentConfig(workload_scale=0.05).platform
        batched_off = dataclasses.replace(base, batched_movement=False)
        assert (run_spec_key(RunSpec("AES", 0.05, "Conduit", base))
                != run_spec_key(RunSpec("AES", 0.05, "Conduit",
                                        batched_off)))
