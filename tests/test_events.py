"""Tests for the event-driven simulation kernel."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.common import SimulationError
from repro.ssd.events import (BusGroup, EventScheduler, MultiServer, Server,
                              SharedBus)


class TestEventScheduler:
    def test_events_execute_in_time_order(self):
        scheduler = EventScheduler()
        order = []
        scheduler.schedule(30.0, lambda e: order.append("c"))
        scheduler.schedule(10.0, lambda e: order.append("a"))
        scheduler.schedule(20.0, lambda e: order.append("b"))
        scheduler.run()
        assert order == ["a", "b", "c"]
        assert scheduler.now == 30.0

    def test_ties_break_by_priority_then_insertion(self):
        scheduler = EventScheduler()
        order = []
        scheduler.schedule(5.0, lambda e: order.append("late"), priority=1)
        scheduler.schedule(5.0, lambda e: order.append("first"), priority=0)
        scheduler.schedule(5.0, lambda e: order.append("second"), priority=0)
        scheduler.run()
        assert order == ["first", "second", "late"]

    def test_schedule_in_past_raises(self):
        scheduler = EventScheduler()
        scheduler.schedule(10.0, lambda e: None)
        scheduler.run()
        with pytest.raises(SimulationError):
            scheduler.schedule(5.0, lambda e: None)

    def test_cancelled_events_are_skipped(self):
        scheduler = EventScheduler()
        fired = []
        event = scheduler.schedule(10.0, lambda e: fired.append(1))
        event.cancel()
        scheduler.run()
        assert fired == []
        assert scheduler.processed == 0

    def test_run_until_stops_the_clock(self):
        scheduler = EventScheduler()
        scheduler.schedule(100.0, lambda e: None)
        final = scheduler.run(until=50.0)
        assert final == 50.0
        assert scheduler.pending == 1

    def test_schedule_after_uses_relative_delay(self):
        scheduler = EventScheduler()
        times = []
        scheduler.schedule(10.0, lambda e: scheduler.schedule_after(
            5.0, lambda e2: times.append(scheduler.now)))
        scheduler.run()
        assert times == [15.0]

    def test_negative_delay_raises(self):
        scheduler = EventScheduler()
        with pytest.raises(SimulationError):
            scheduler.schedule_after(-1.0, lambda e: None)


class TestServer:
    def test_back_to_back_jobs_serialize(self):
        server = Server("core")
        first = server.reserve(0.0, 10.0)
        second = server.reserve(0.0, 5.0)
        assert first.end == 10.0
        assert second.start == 10.0
        assert second.end == 15.0

    def test_idle_gap_is_respected(self):
        server = Server("core")
        server.reserve(0.0, 10.0)
        late = server.reserve(100.0, 5.0)
        assert late.start == 100.0

    def test_queueing_delay(self):
        server = Server("core")
        server.reserve(0.0, 10.0)
        assert server.queueing_delay(4.0) == pytest.approx(6.0)
        assert server.queueing_delay(20.0) == 0.0

    def test_utilization(self):
        server = Server("core")
        server.reserve(0.0, 25.0)
        assert server.utilization(100.0) == pytest.approx(0.25)

    def test_negative_duration_raises(self):
        with pytest.raises(SimulationError):
            Server("core").reserve(0.0, -1.0)

    @given(st.lists(st.tuples(st.floats(min_value=0, max_value=1e6),
                              st.floats(min_value=0, max_value=1e4)),
                    min_size=1, max_size=40))
    def test_reservations_never_overlap(self, jobs):
        server = Server("core")
        previous_end = 0.0
        for arrival, duration in jobs:
            reservation = server.reserve(arrival, duration)
            assert reservation.start >= previous_end
            assert reservation.end == pytest.approx(
                reservation.start + duration)
            previous_end = reservation.end


class TestMultiServer:
    def test_parallel_slots_used_before_queueing(self):
        pool = MultiServer("dies", 2)
        a = pool.reserve(0.0, 10.0)
        b = pool.reserve(0.0, 10.0)
        c = pool.reserve(0.0, 10.0)
        assert a.start == 0.0 and b.start == 0.0
        assert c.start == 10.0

    def test_zero_servers_rejected(self):
        with pytest.raises(SimulationError):
            MultiServer("bad", 0)

    def test_explicit_server_index(self):
        pool = MultiServer("dies", 4)
        first = pool.reserve(0.0, 10.0, server_index=2)
        second = pool.reserve(0.0, 10.0, server_index=2)
        assert first.server_index == 2
        assert second.start == 10.0


class TestSharedBus:
    def test_transfer_time_scales_with_size(self):
        bus = SharedBus("channel", 1.2)  # 1.2 bytes / ns
        assert bus.transfer_time(1200) == pytest.approx(1000.0)

    def test_transfers_serialize(self):
        bus = SharedBus("channel", 1.0)
        first = bus.transfer(0.0, 100)
        second = bus.transfer(0.0, 100)
        assert second.start == first.end

    def test_bytes_moved_accumulates(self):
        bus = SharedBus("channel", 1.0)
        bus.transfer(0.0, 100)
        bus.transfer(0.0, 200)
        assert bus.bytes_moved == 300


class TestBusGroup:
    def test_least_loaded_bus_is_chosen(self):
        group = BusGroup("channels", 2, 1.0)
        first = group.transfer(0.0, 100)
        second = group.transfer(0.0, 100)
        assert first.server_index != second.server_index
        assert second.start == 0.0

    def test_pinned_channel_serializes(self):
        group = BusGroup("channels", 2, 1.0)
        group.transfer(0.0, 100, channel=0)
        second = group.transfer(0.0, 100, channel=0)
        assert second.start == pytest.approx(100.0)

    def test_utilization_averages_buses(self):
        group = BusGroup("channels", 2, 1.0)
        group.transfer(0.0, 100, channel=0)
        assert group.utilization(100.0) == pytest.approx(0.5)


class TestRunUntilClamp:
    """``run(until=...)`` clamps the clock; it must never rewind it."""

    def test_until_in_past_does_not_rewind_clock(self):
        scheduler = EventScheduler()
        scheduler.schedule(10.0, lambda e: None)
        scheduler.schedule(100.0, lambda e: None)
        assert scheduler.run(until=50.0) == 50.0
        # Regression: virtual time is monotonic, so an ``until`` earlier
        # than the current clock is a no-op for the clock, not a rewind.
        assert scheduler.run(until=20.0) == 50.0
        assert scheduler.now == 50.0
        assert scheduler.pending == 1

    def test_until_between_now_and_next_event_still_advances(self):
        scheduler = EventScheduler()
        scheduler.schedule(100.0, lambda e: None)
        scheduler.run(until=30.0)
        assert scheduler.run(until=60.0) == 60.0
        assert scheduler.processed == 0


#: Long enough lists cross ``_VECTOR_MIN_BATCH`` so the saturated/idle
#: numpy candidates of ``chain_finish_times`` are exercised, not just the
#: scalar fallback.
ARRIVALS = st.lists(
    st.floats(min_value=0.0, max_value=1e6,
              allow_nan=False, allow_infinity=False),
    min_size=1, max_size=40)
DURATION = st.floats(min_value=0.0, max_value=1e4,
                     allow_nan=False, allow_infinity=False)


class TestBatchEntryPoints:
    """Batch bookings must be *bit-identical* to per-job reservations.

    The vectorized movement engine is validated by equality against the
    object engine, so every batch entry point (finish chain, busy time,
    job count, bytes moved) must reproduce the sequential loop exactly --
    no float tolerance anywhere.
    """

    @given(arrivals=ARRIVALS, duration=DURATION)
    @settings(max_examples=40, deadline=None)
    def test_server_reserve_batch_matches_sequential(self, arrivals,
                                                     duration):
        reference = Server("ref")
        ends = [reference.reserve(a, duration).end for a in arrivals]
        batched = Server("batch")
        assert batched.reserve_batch(arrivals, duration) == ends
        assert batched.free_at == reference.free_at
        assert batched.busy_time == reference.busy_time
        assert batched.jobs == reference.jobs

    @given(arrivals=ARRIVALS, duration=DURATION)
    @settings(max_examples=40, deadline=None)
    def test_server_reserve_batch_array_matches_sequential(self, arrivals,
                                                           duration):
        reference = Server("ref")
        ends = [reference.reserve(a, duration).end for a in arrivals]
        batched = Server("batch")
        result = batched.reserve_batch_array(
            np.asarray(arrivals, dtype=np.float64), duration)
        assert list(result) == ends
        assert batched.free_at == reference.free_at
        assert batched.busy_time == reference.busy_time
        assert batched.jobs == reference.jobs

    @given(arrivals=ARRIVALS, duration=DURATION)
    @settings(max_examples=40, deadline=None)
    def test_multiserver_pinned_batch_matches_sequential(self, arrivals,
                                                         duration):
        servers = 3
        indices = [i % servers for i in range(len(arrivals))]
        reference = MultiServer("ref", servers)
        ends = [reference.reserve(a, duration, server_index=s).end
                for a, s in zip(arrivals, indices)]
        batched = MultiServer("batch", servers)
        assert list(batched.reserve_batch(arrivals, duration,
                                          indices)) == ends
        assert batched._free_at == reference._free_at
        assert batched.busy_time == reference.busy_time
        assert batched.jobs == reference.jobs

    @given(arrivals=ARRIVALS, duration=DURATION)
    @settings(max_examples=25, deadline=None)
    def test_multiserver_unpinned_batch_matches_sequential(self, arrivals,
                                                           duration):
        reference = MultiServer("ref", 2)
        ends = [reference.reserve(a, duration).end for a in arrivals]
        batched = MultiServer("batch", 2)
        assert list(batched.reserve_batch(arrivals, duration)) == ends
        assert batched._free_at == reference._free_at
        assert batched.busy_time == reference.busy_time

    @given(arrivals=ARRIVALS)
    @settings(max_examples=25, deadline=None)
    def test_bus_group_pinned_batch_matches_sequential(self, arrivals):
        channels = [i % 2 for i in range(len(arrivals))]
        reference = BusGroup("ref", 2, 1.5)
        ends = [reference.transfer(a, 512, channel=c).end
                for a, c in zip(arrivals, channels)]
        batched = BusGroup("batch", 2, 1.5)
        assert list(batched.transfer_batch(arrivals, 512, channels)) == ends
        assert batched.bytes_moved == reference.bytes_moved

    @given(arrivals=ARRIVALS)
    @settings(max_examples=25, deadline=None)
    def test_bus_group_unpinned_batch_matches_sequential(self, arrivals):
        reference = BusGroup("ref", 2, 1.5)
        ends = [reference.transfer(a, 512).end for a in arrivals]
        batched = BusGroup("batch", 2, 1.5)
        assert list(batched.transfer_batch(arrivals, 512)) == ends
        assert batched.bytes_moved == reference.bytes_moved

    def test_shared_bus_batch_matches_sequential(self):
        arrivals = [0.0, 10.0, 10.0, 500.0]
        reference = SharedBus("ref", 2.0)
        ends = [reference.transfer(a, 256).end for a in arrivals]
        batched = SharedBus("batch", 2.0)
        assert batched.transfer_batch(arrivals, 256) == ends
        assert batched.bytes_moved == reference.bytes_moved
        vectorized = SharedBus("vec", 2.0)
        assert list(vectorized.transfer_batch_array(
            np.asarray(arrivals), 256)) == ends

    def test_negative_duration_rejected_by_batch_entry_points(self):
        with pytest.raises(SimulationError):
            Server("s").reserve_batch([0.0], -1.0)
        with pytest.raises(SimulationError):
            Server("s").reserve_batch_array(np.zeros(1), -1.0)
        with pytest.raises(SimulationError):
            MultiServer("m", 2).reserve_batch([0.0], -1.0)
