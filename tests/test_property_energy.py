"""Property: energy is conserved across the accounting decomposition.

The ROADMAP's outstanding property item: the total charge an
:class:`~repro.energy.model.EnergyAccount` reports must equal the sum
over its components -- per-resource compute pools plus per-transfer-kind
movement pools -- for random charge sequences *and* for full random sweep
points.  Equality is exact (``==``, not approx): every reported total is
a sum over the same pool dictionaries in the same iteration order, so any
drift means a pool was double-counted or dropped, never float noise.
"""

from __future__ import annotations

import dataclasses

from hypothesis import given, settings, strategies as st

from repro.common import Resource
from repro.energy.model import EnergyAccount
from repro.experiments import (ExperimentConfig, ExperimentRunner,
                               platform_variant)
from repro.workloads import workload_by_name

#: The charge menu random sequences draw from: (method name, kwargs
#: strategy).  Sizes/pages are kept small-ish; the magnitudes do not
#: matter for conservation, only the bookkeeping paths do.
_PAGES = st.integers(min_value=1, max_value=64)
_BYTES = st.integers(min_value=1, max_value=1 << 20)

CHARGE_OPS = st.one_of(
    st.tuples(st.just("charge_flash_read"), _PAGES),
    st.tuples(st.just("charge_flash_program"), _PAGES),
    st.tuples(st.just("charge_channel_dma"), _PAGES),
    st.tuples(st.just("charge_dram_access"), _BYTES),
    st.tuples(st.just("charge_pcie"), _BYTES),
    st.tuples(st.just("charge_host_dram"), _BYTES),
)


def _assert_conserved(breakdown) -> None:
    """Totals equal the sums over their component pools, exactly."""
    assert breakdown.compute_nj == sum(breakdown.per_resource_nj.values())
    assert breakdown.data_movement_nj == sum(
        breakdown.per_transfer_kind_nj.values())
    assert breakdown.total_nj == (breakdown.compute_nj +
                                  breakdown.data_movement_nj)


class TestAccountConservation:
    @given(movements=st.lists(CHARGE_OPS, max_size=40),
           compute=st.lists(
               st.tuples(st.sampled_from(sorted(Resource,
                                                key=lambda r: r.value)),
                         st.floats(min_value=0.0, max_value=1e9,
                                   allow_nan=False)),
               max_size=20),
           static_ns=st.floats(min_value=0.0, max_value=1e9,
                               allow_nan=False))
    @settings(max_examples=50, deadline=None)
    def test_random_charge_sequences_conserve(self, movements, compute,
                                              static_ns):
        account = EnergyAccount()
        for method, amount in movements:
            getattr(account, method)(amount)
        for resource, nj in compute:
            account.add_compute(resource, nj)
        account.charge_static(static_ns, watts=0.5)
        breakdown = account.breakdown()
        _assert_conserved(breakdown)
        # The live properties and the frozen breakdown agree exactly.
        assert breakdown.total_nj == account.total_nj
        assert breakdown.compute_nj == account.compute_nj
        assert breakdown.data_movement_nj == account.data_movement_nj

    @given(flash_read=st.integers(0, 32), flash_program=st.integers(0, 32),
           dma=st.integers(0, 32), dram=st.integers(0, 1 << 16),
           pcie=st.integers(0, 1 << 16), host=st.integers(0, 1 << 16))
    @settings(max_examples=50, deadline=None)
    def test_bulk_charge_run_equals_individual_charges(
            self, flash_read, flash_program, dma, dram, pcie, host):
        """``charge_run`` is exactly the sum of the per-kind calls."""
        bulk, individual = EnergyAccount(), EnergyAccount()
        total = bulk.charge_run(
            flash_read_pages=flash_read, flash_program_pages=flash_program,
            dma_pages=dma, dram_bytes=dram, pcie_bytes=pcie,
            host_dram_bytes=host)
        if flash_read:
            individual.charge_flash_read(flash_read)
        if flash_program:
            individual.charge_flash_program(flash_program)
        if dma:
            individual.charge_channel_dma(dma)
        if dram:
            individual.charge_dram_access(dram)
        if pcie:
            individual.charge_pcie(pcie)
        if host:
            individual.charge_host_dram(host)
        assert bulk.breakdown() == individual.breakdown()
        assert total == bulk.data_movement_nj


class TestSweepPointConservation:
    """Random sweep points: the executed result's energy decomposes."""

    @given(workload=st.sampled_from(["AES", "XOR Filter", "jacobi-1d"]),
           policy=st.sampled_from(["Conduit", "DM-Offloading", "CPU",
                                   "GPU"]),
           scale=st.sampled_from([0.02, 0.05]),
           variant=st.sampled_from(["default", "multicore-isp",
                                    "cxl-pud"]),
           feedback=st.booleans())
    @settings(max_examples=8, deadline=None)
    def test_energy_conserved_for_random_sweep_points(
            self, workload, policy, scale, variant, feedback):
        platform = dataclasses.replace(platform_variant(variant),
                                       contention_feedback=feedback)
        runner = ExperimentRunner(ExperimentConfig(workload_scale=scale,
                                                   platform=platform))
        result = runner.run(workload_by_name(workload, scale=scale), policy)
        _assert_conserved(result.energy)
        assert result.total_energy_nj == result.energy.total_nj
        assert result.total_energy_nj > 0.0
        # Every pool is a sum of non-negative charges.
        assert all(nj >= 0.0
                   for nj in result.energy.per_resource_nj.values())
        assert all(nj >= 0.0
                   for nj in result.energy.per_transfer_kind_nj.values())
