"""Tests for the six evaluated workloads and their characterization."""

import pytest

from repro.common import LatencyClass, OpType
from repro.workloads import (ALL_WORKLOADS, AESWorkload, Heat3DWorkload,
                             Jacobi1DWorkload, LLMTrainingWorkload,
                             LlamaInferenceWorkload, XORFilterWorkload,
                             characterization_table, characterize,
                             default_workloads, measure_reuse, operation_mix)

SMALL_SCALE = 0.05


@pytest.fixture(params=ALL_WORKLOADS, ids=lambda cls: cls.name)
def workload(request):
    return request.param(scale=SMALL_SCALE)


class TestWorkloadConstruction:
    def test_program_builds_and_vectorizes(self, workload):
        program, report = workload.vector_program()
        assert len(program) > 0
        program.validate()
        assert 0.0 < report.vectorizable_fraction <= 1.0

    def test_footprint_positive(self, workload):
        assert workload.footprint_bytes() > 0

    def test_scale_grows_footprint(self):
        small = AESWorkload(scale=0.05).footprint_bytes()
        large = AESWorkload(scale=0.5).footprint_bytes()
        assert large > small

    def test_invalid_scale_rejected(self):
        with pytest.raises(Exception):
            AESWorkload(scale=0.0)

    def test_describe_contains_category(self, workload):
        description = workload.describe()
        assert description["name"] == workload.name
        assert description["footprint_bytes"] > 0


class TestWorkloadCharacteristics:
    def test_vectorizable_fraction_tracks_paper(self, workload):
        measured = characterize(workload)
        paper = workload.paper.vectorizable_fraction
        assert measured.vectorizable_fraction == pytest.approx(paper,
                                                               abs=0.15)

    def test_operation_mix_sums_to_one(self, workload):
        measured = characterize(workload)
        total = (measured.low_latency_fraction +
                 measured.medium_latency_fraction +
                 measured.high_latency_fraction)
        assert total == pytest.approx(1.0, abs=1e-6)

    def test_reuse_is_positive(self, workload):
        assert characterize(workload).average_reuse > 0

    def test_aes_is_bitwise_dominated(self):
        measured = characterize(AESWorkload(scale=SMALL_SCALE))
        assert measured.low_latency_fraction > 0.7
        assert measured.high_latency_fraction == pytest.approx(0.0, abs=0.02)

    def test_xor_filter_is_medium_dominated(self):
        measured = characterize(XORFilterWorkload(scale=SMALL_SCALE))
        assert measured.medium_latency_fraction > 0.8

    def test_stencils_have_high_latency_share(self):
        heat = characterize(Heat3DWorkload(scale=SMALL_SCALE))
        jacobi = characterize(Jacobi1DWorkload(scale=SMALL_SCALE))
        assert 0.2 < heat.high_latency_fraction < 0.6
        assert 0.2 < jacobi.high_latency_fraction < 0.5

    def test_llm_workloads_have_no_bitwise_ops(self):
        for workload_cls in (LlamaInferenceWorkload, LLMTrainingWorkload):
            measured = characterize(workload_cls(scale=SMALL_SCALE))
            assert measured.low_latency_fraction == pytest.approx(0.0,
                                                                  abs=0.02)

    def test_llama_has_higher_mul_share_than_training(self):
        llama = characterize(LlamaInferenceWorkload(scale=SMALL_SCALE))
        training = characterize(LLMTrainingWorkload(scale=SMALL_SCALE))
        assert llama.high_latency_fraction > training.high_latency_fraction

    def test_aes_reuse_exceeds_streaming_workloads(self):
        aes = characterize(AESWorkload(scale=SMALL_SCALE))
        llama = characterize(LlamaInferenceWorkload(scale=SMALL_SCALE))
        assert aes.average_reuse > llama.average_reuse


class TestCharacterizationTable:
    def test_table_has_one_row_per_workload(self):
        rows = characterization_table(default_workloads(scale=SMALL_SCALE))
        assert len(rows) == 6
        names = {row["workload"] for row in rows}
        assert names == {cls.name for cls in ALL_WORKLOADS}

    def test_rows_contain_paper_reference_values(self):
        rows = characterization_table([AESWorkload(scale=SMALL_SCALE)])
        assert rows[0]["paper_vectorizable_%"] == 65.0
        assert rows[0]["paper_avg_reuse"] == 15.2

    def test_measure_reuse_and_mix_directly(self):
        program, _ = Jacobi1DWorkload(scale=SMALL_SCALE).vector_program()
        assert measure_reuse(program) > 1.0
        mix = operation_mix(program)
        assert mix[LatencyClass.MEDIUM] > 0
