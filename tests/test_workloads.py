"""Tests for the six evaluated workloads and their characterization."""

import warnings

import pytest

from repro.common import LatencyClass, OpType
from repro.workloads import (ALL_WORKLOADS, MIN_SCALED_ELEMENTS, AESWorkload,
                             Heat3DWorkload, Jacobi1DWorkload,
                             LLMTrainingWorkload, LlamaInferenceWorkload,
                             ScaleFloorWarning, XORFilterWorkload,
                             characterization_table, characterize,
                             default_workloads, measure_reuse, operation_mix,
                             workload_by_name)

SMALL_SCALE = 0.05


@pytest.fixture(params=ALL_WORKLOADS, ids=lambda cls: cls.name)
def workload(request):
    return request.param(scale=SMALL_SCALE)


class TestWorkloadConstruction:
    def test_program_builds_and_vectorizes(self, workload):
        program, report = workload.vector_program()
        assert len(program) > 0
        program.validate()
        assert 0.0 < report.vectorizable_fraction <= 1.0

    def test_footprint_positive(self, workload):
        assert workload.footprint_bytes() > 0

    def test_scale_grows_footprint(self):
        small = AESWorkload(scale=0.05).footprint_bytes()
        large = AESWorkload(scale=0.5).footprint_bytes()
        assert large > small

    def test_invalid_scale_rejected(self):
        with pytest.raises(Exception):
            AESWorkload(scale=0.0)

    def test_describe_contains_category(self, workload):
        description = workload.describe()
        assert description["name"] == workload.name
        assert description["footprint_bytes"] > 0


class TestWorkloadCharacteristics:
    def test_vectorizable_fraction_tracks_paper(self, workload):
        measured = characterize(workload)
        paper = workload.paper.vectorizable_fraction
        assert measured.vectorizable_fraction == pytest.approx(paper,
                                                               abs=0.15)

    def test_operation_mix_sums_to_one(self, workload):
        measured = characterize(workload)
        total = (measured.low_latency_fraction +
                 measured.medium_latency_fraction +
                 measured.high_latency_fraction)
        assert total == pytest.approx(1.0, abs=1e-6)

    def test_reuse_is_positive(self, workload):
        assert characterize(workload).average_reuse > 0

    def test_aes_is_bitwise_dominated(self):
        measured = characterize(AESWorkload(scale=SMALL_SCALE))
        assert measured.low_latency_fraction > 0.7
        assert measured.high_latency_fraction == pytest.approx(0.0, abs=0.02)

    def test_xor_filter_is_medium_dominated(self):
        measured = characterize(XORFilterWorkload(scale=SMALL_SCALE))
        assert measured.medium_latency_fraction > 0.8

    def test_stencils_have_high_latency_share(self):
        heat = characterize(Heat3DWorkload(scale=SMALL_SCALE))
        jacobi = characterize(Jacobi1DWorkload(scale=SMALL_SCALE))
        assert 0.2 < heat.high_latency_fraction < 0.6
        assert 0.2 < jacobi.high_latency_fraction < 0.5

    def test_llm_workloads_have_no_bitwise_ops(self):
        for workload_cls in (LlamaInferenceWorkload, LLMTrainingWorkload):
            measured = characterize(workload_cls(scale=SMALL_SCALE))
            assert measured.low_latency_fraction == pytest.approx(0.0,
                                                                  abs=0.02)

    def test_llama_has_higher_mul_share_than_training(self):
        llama = characterize(LlamaInferenceWorkload(scale=SMALL_SCALE))
        training = characterize(LLMTrainingWorkload(scale=SMALL_SCALE))
        assert llama.high_latency_fraction > training.high_latency_fraction

    def test_aes_reuse_exceeds_streaming_workloads(self):
        aes = characterize(AESWorkload(scale=SMALL_SCALE))
        llama = characterize(LlamaInferenceWorkload(scale=SMALL_SCALE))
        assert aes.average_reuse > llama.average_reuse


class TestCharacterizationTable:
    def test_table_has_one_row_per_workload(self):
        rows = characterization_table(default_workloads(scale=SMALL_SCALE))
        assert len(rows) == 6
        names = {row["workload"] for row in rows}
        assert names == {cls.name for cls in ALL_WORKLOADS}

    def test_rows_contain_paper_reference_values(self):
        rows = characterization_table([AESWorkload(scale=SMALL_SCALE)])
        assert rows[0]["paper_vectorizable_%"] == 65.0
        assert rows[0]["paper_avg_reuse"] == 15.2

    def test_measure_reuse_and_mix_directly(self):
        program, _ = Jacobi1DWorkload(scale=SMALL_SCALE).vector_program()
        assert measure_reuse(program) > 1.0
        mix = operation_mix(program)
        assert mix[LatencyClass.MEDIUM] > 0


class TestWorkloadByName:
    def test_known_name_builds_at_scale(self):
        workload = workload_by_name("AES", scale=SMALL_SCALE)
        assert isinstance(workload, AESWorkload)
        assert workload.scale == SMALL_SCALE

    def test_unknown_name_message_lists_known_names(self):
        with pytest.raises(ValueError) as excinfo:
            workload_by_name("nonesuch")
        message = str(excinfo.value)
        assert "unknown workload 'nonesuch'" in message
        assert "jacobi-1d" in message  # the known-name list helps the user

    def test_unknown_name_suppresses_keyerror_context(self):
        # The internal KeyError is registry plumbing; the traceback a user
        # sees must not chain through it ("During handling of the above
        # exception..." noise).  `raise ... from None` both clears the
        # cause and sets __suppress_context__.
        with pytest.raises(ValueError) as excinfo:
            workload_by_name("nonesuch")
        assert excinfo.value.__cause__ is None
        assert excinfo.value.__suppress_context__ is True


class TestScaleFloor:
    def test_floor_saturates_and_warns_once(self):
        workload = AESWorkload(scale=SMALL_SCALE)
        with pytest.warns(ScaleFloorWarning, match="floors 100 elements"):
            assert workload._scaled(100) == MIN_SCALED_ELEMENTS
        # The warning is once per instance, not per call.
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert workload._scaled(100) == MIN_SCALED_ELEMENTS

    def test_tiny_scales_alias_to_the_same_count(self):
        # Distinct tiny scales hit the floor and build identical programs
        # (this is the documented aliasing the warning exists to surface).
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", ScaleFloorWarning)
            a = AESWorkload(scale=0.001)._scaled(1000)
            b = AESWorkload(scale=0.0001)._scaled(1000)
        assert a == b == MIN_SCALED_ELEMENTS

    def test_above_floor_no_warning_and_rounds_to_vector(self):
        workload = AESWorkload(scale=1.0)
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert workload._scaled(10_000) == 12_288  # next 4096 multiple

    def test_effective_scale_reports_the_realized_scale(self):
        floored = AESWorkload(scale=0.001)
        assert floored.effective_scale(1000) == pytest.approx(
            MIN_SCALED_ELEMENTS / 1000)
        unfloored = AESWorkload(scale=1.0)
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert unfloored.effective_scale(10_000) == pytest.approx(
                12_288 / 10_000)
            assert (unfloored._scaled(10_000)
                    == round(unfloored.effective_scale(10_000) * 10_000))
