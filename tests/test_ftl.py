"""Tests for the FTL, page allocator, garbage collector and wear-leveler."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.common import SimulationError
from repro.ssd.allocator import AllocationPolicy, PageAllocator
from repro.ssd.config import FTLConfig, NANDConfig
from repro.ssd.ftl import FlashTranslationLayer, MappingCache
from repro.ssd.gc import GarbageCollector
from repro.ssd.nand import NANDArray
from repro.ssd.wear_leveling import WearLeveler


def nand_config() -> NANDConfig:
    return NANDConfig(channels=2, dies_per_channel=2, planes_per_die=1,
                      blocks_per_plane=8, pages_per_block=8)


def make_ftl(coverage: float = 0.5) -> FlashTranslationLayer:
    config = FTLConfig(mapping_cache_coverage=coverage)
    return FlashTranslationLayer(NANDArray(nand_config()), config)


class TestMappingCache:
    def test_lru_eviction(self):
        cache = MappingCache(capacity_entries=2)
        from repro.ssd.nand import PhysicalPageAddress
        a = PhysicalPageAddress(0, 0, 0, 0, 0)
        cache.insert(1, a)
        cache.insert(2, a)
        cache.lookup(1)          # make 1 most recently used
        cache.insert(3, a)       # evicts 2
        assert cache.lookup(2) is None
        assert cache.lookup(1) is not None
        assert cache.lookup(3) is not None

    def test_zero_capacity_rejected(self):
        with pytest.raises(SimulationError):
            MappingCache(0)


class TestAllocator:
    def test_channel_striping_balances_channels(self):
        array = NANDArray(nand_config())
        allocator = PageAllocator(array, AllocationPolicy.CHANNEL_STRIPED)
        for lpa in range(32):
            allocator.allocate(lpa)
        balance = allocator.allocation_balance()
        assert max(balance.values()) - min(balance.values()) <= 1

    def test_colocated_allocation_uses_one_block(self):
        array = NANDArray(nand_config())
        allocator = PageAllocator(array)
        addresses = allocator.allocate_colocated(range(6))
        blocks = {(a.channel, a.die, a.plane, a.block) for a in addresses}
        assert len(blocks) == 1

    def test_colocation_larger_than_block_raises(self):
        array = NANDArray(nand_config())
        allocator = PageAllocator(array)
        with pytest.raises(SimulationError):
            allocator.allocate_colocated(range(100))


class TestFTL:
    def test_write_then_lookup(self):
        ftl = make_ftl()
        ppa = ftl.write(10)
        found, latency = ftl.lookup(10)
        assert found == ppa
        assert latency > 0

    def test_overwrite_invalidates_previous_page(self):
        ftl = make_ftl()
        first = ftl.write(10)
        second = ftl.write(10)
        assert first != second
        assert ftl.array.block(first.block_address()).invalid_pages == 1

    def test_cache_hit_is_faster_than_miss(self):
        ftl = make_ftl(coverage=0.01)
        ftl.write(1)
        _, hit_latency = ftl.lookup(1)
        # Unmapped, never-cached page incurs the flash-resident lookup cost.
        _, miss_latency = ftl.lookup(999)
        assert hit_latency < miss_latency

    def test_hit_rate_statistics(self):
        ftl = make_ftl()
        ftl.write(1)
        ftl.lookup(1)
        ftl.lookup(1)
        assert ftl.stats.hit_rate > 0.5

    def test_trim_unmaps(self):
        ftl = make_ftl()
        ftl.write(5)
        ftl.trim(5)
        assert ftl.translate(5) is None

    def test_relocate_moves_page(self):
        ftl = make_ftl()
        original = ftl.write(7)
        moved = ftl.relocate(7)
        assert moved != original
        assert ftl.translate(7) == moved
        assert ftl.stats.relocated_pages == 1

    def test_relocate_unmapped_raises(self):
        with pytest.raises(SimulationError):
            make_ftl().relocate(123)

    def test_write_colocated_groups_share_block(self):
        ftl = make_ftl()
        mapping = ftl.write_colocated([1, 2, 3])
        blocks = {(p.channel, p.die, p.plane, p.block)
                  for p in mapping.values()}
        assert len(blocks) == 1

    @given(st.lists(st.integers(min_value=0, max_value=30),
                    min_size=1, max_size=60))
    @settings(max_examples=25, deadline=None)
    def test_mapping_stays_consistent_under_overwrites(self, lpas):
        ftl = make_ftl()
        for lpa in lpas:
            ftl.write(lpa)
        # Every mapped LPA must point at a valid page storing that LPA.
        for lpa in set(lpas):
            ppa = ftl.translate(lpa)
            assert ppa is not None
            assert ftl.array.read_page(ppa) == lpa
        # Valid page count equals number of distinct live LPAs.
        assert ftl.array.valid_page_count() == len(set(lpas))


class TestGarbageCollection:
    def test_gc_not_triggered_when_free(self):
        ftl = make_ftl()
        gc = GarbageCollector(ftl, ftl.config)
        result = gc.collect()
        assert not result.triggered

    def test_gc_reclaims_invalid_blocks(self):
        ftl = make_ftl()
        gc = GarbageCollector(ftl, FTLConfig(gc_start_threshold=0.95,
                                             gc_stop_threshold=0.96))
        # Overwrite the same LPAs repeatedly to create invalid pages.
        for _ in range(4):
            for lpa in range(16):
                ftl.write(lpa)
        result = gc.collect()
        assert result.triggered
        assert result.erased_blocks > 0
        assert result.latency_ns > 0

    def test_victim_selection_prefers_most_invalid(self):
        ftl = make_ftl()
        for _ in range(3):
            for lpa in range(8):
                ftl.write(lpa)
        gc = GarbageCollector(ftl, ftl.config)
        victim = gc.select_victim()
        assert victim is not None
        assert victim.invalid_pages > 0


class TestWearLeveling:
    def test_balanced_array_needs_no_leveling(self):
        ftl = make_ftl()
        leveler = WearLeveler(ftl, ftl.config)
        assert not leveler.needs_leveling()
        assert not leveler.level().triggered

    def test_imbalance_detection_after_erases(self):
        ftl = make_ftl()
        leveler = WearLeveler(ftl, FTLConfig(wear_leveling_threshold=1.1))
        for lpa in range(4):
            ftl.write(lpa)
        block = ftl.translate(0).block_address()
        # Erase an unrelated free block many times to skew the counters
        # (blocks materialize lazily, so probe the plane for a free index).
        plane = ftl.array.die(0, 0).plane(0)
        free_index = next(index for index in range(plane.block_count)
                          if plane.is_free_block(index))
        free_block = plane.block(free_index)
        for _ in range(5):
            ftl.array.erase_block(free_block.address)
        assert leveler.imbalance() > 1.1
        result = leveler.level()
        assert result.triggered
        assert result.migrated_pages > 0
