"""Unit tests for the parallel sharded sweep engine.

Covers the pickle-able :class:`RunSpec` unit of work, the stable cache
key, the on-disk result cache, worker-count resolution (including the
``REPRO_SWEEP_WORKERS`` CI override) and the core guarantee: a parallel
sweep returns the same grid, in the same order, with bit-identical
results, as a serial sweep.
"""

from __future__ import annotations

import pickle
from dataclasses import replace

import pytest

from repro.common import MIB
from repro.core.platform import PlatformConfig
from repro.experiments import (DEFAULT_SWEEP_CACHE_DIR, ExperimentConfig,
                               ExperimentRunner, RunSpec, SweepCache,
                               default_sweep_cache_dir, execute_run_spec,
                               resolve_sweep_workers, run_spec_key)
from repro.experiments.runner import SWEEP_CACHE_ENV, SWEEP_WORKERS_ENV
from repro.ssd.config import small_ssd_config
from repro.workloads import Jacobi1DWorkload, Workload, workload_by_name

TINY_SCALE = 0.03


@pytest.fixture(scope="module")
def tiny_config() -> ExperimentConfig:
    platform = PlatformConfig(ssd=small_ssd_config(),
                              dram_compute_window_bytes=1 * MIB,
                              sram_window_bytes=256 * 1024,
                              host_cache_bytes=1 * MIB)
    return ExperimentConfig(workload_scale=TINY_SCALE, platform=platform)


def result_fingerprint(result):
    """Every field the golden suite cares about, as a comparable tuple."""
    return (
        result.workload, result.policy, result.total_time_ns,
        result.total_energy_nj, result.energy.compute_nj,
        result.energy.data_movement_nj,
        result.breakdown.compute_ns,
        result.breakdown.host_data_movement_ns,
        result.breakdown.internal_data_movement_ns,
        result.breakdown.flash_read_ns,
        result.offload_overhead_avg_ns, result.offload_overhead_max_ns,
        tuple((r.uid, r.op, r.resource, r.dispatch_ns, r.ready_ns,
               r.start_ns, r.end_ns, r.compute_ns, r.data_movement_ns,
               r.overhead_ns) for r in result.records),
    )


class TestRunSpec:
    def test_round_trips_through_pickle(self, tiny_config):
        spec = RunSpec(workload="jacobi-1d", scale=TINY_SCALE,
                       policy="Conduit", platform=tiny_config.platform,
                       runtime=tiny_config.runtime)
        assert pickle.loads(pickle.dumps(spec)) == spec

    def test_key_is_stable_and_sensitive(self, tiny_config):
        spec = RunSpec(workload="jacobi-1d", scale=TINY_SCALE,
                       policy="Conduit", platform=tiny_config.platform,
                       runtime=tiny_config.runtime)
        assert run_spec_key(spec) == run_spec_key(
            pickle.loads(pickle.dumps(spec)))
        assert run_spec_key(spec) != run_spec_key(
            replace(spec, policy="Ideal"))
        assert run_spec_key(spec) != run_spec_key(replace(spec, scale=0.06))
        wider = replace(tiny_config.platform,
                        dram_compute_window_bytes=2 * MIB)
        assert run_spec_key(spec) != run_spec_key(
            replace(spec, platform=wider))

    def test_execute_run_spec_matches_runner_run(self, tiny_config):
        runner = ExperimentRunner(tiny_config)
        workload = Jacobi1DWorkload(scale=TINY_SCALE)
        direct = runner.run(workload, "Conduit")
        from_spec = execute_run_spec(runner.spec_for(workload, "Conduit"))
        assert result_fingerprint(direct) == result_fingerprint(from_spec)


class TestParallelSweep:
    POLICIES = ("CPU", "DM-Offloading", "Conduit")

    def test_parallel_equals_serial_in_order_and_value(self, tiny_config):
        serial = ExperimentRunner(tiny_config).sweep(self.POLICIES)
        parallel = ExperimentRunner(tiny_config).sweep(
            self.POLICIES, parallel=True, workers=2)
        assert list(serial) == list(parallel)
        for key in serial:
            assert (result_fingerprint(serial[key]) ==
                    result_fingerprint(parallel[key])), key

    def test_grid_order_is_workload_major(self, tiny_config):
        runner = ExperimentRunner(tiny_config)
        workloads = tiny_config.workloads()[:2]
        results = runner.sweep(("CPU", "Conduit"), workloads,
                               parallel=True, workers=2)
        assert list(results) == [
            (workload.name, policy)
            for workload in workloads for policy in ("CPU", "Conduit")
        ]

    def test_single_worker_parallel_stays_in_process(self, tiny_config):
        runner = ExperimentRunner(tiny_config)
        workloads = [Jacobi1DWorkload(scale=TINY_SCALE)]
        results = runner.sweep(("Conduit",), workloads, parallel=True,
                               workers=1)
        assert runner.last_sweep_stats.workers == 1
        assert runner.last_sweep_stats.executed == 1
        assert (("jacobi-1d", "Conduit")) in results

    def test_unregistered_workload_rejected_in_parallel(self, tiny_config):
        class UnregisteredWorkload(Jacobi1DWorkload):
            name = "jacobi-1d"  # same name, different class

        runner = ExperimentRunner(tiny_config)
        workload = UnregisteredWorkload(scale=TINY_SCALE)
        with pytest.raises(ValueError, match="not reconstructible"):
            runner.sweep(("Conduit",), [workload], parallel=True, workers=2)
        # The serial path still accepts it (no reconstruction needed).
        results = runner.sweep(("Conduit",), [workload])
        assert ("jacobi-1d", "Conduit") in results

    def test_unregistered_workload_rejected_with_cache(self, tiny_config,
                                                       tmp_path):
        class UnregisteredWorkload(Jacobi1DWorkload):
            name = "jacobi-1d"

        # Cache keys identify workloads by name, so even a *serial* cached
        # sweep must reject same-named unregistered workloads: storing
        # their results would poison later sweeps of the real workload.
        runner = ExperimentRunner(tiny_config)
        with pytest.raises(ValueError, match="not reconstructible"):
            runner.sweep(("Conduit",), [UnregisteredWorkload(TINY_SCALE)],
                         cache_dir=str(tmp_path))

    def test_workload_by_name_rejects_unknown(self):
        with pytest.raises(ValueError, match="unknown workload"):
            workload_by_name("no-such-workload")


class TestSweepCache:
    def test_second_sweep_is_served_from_cache(self, tiny_config, tmp_path):
        cache_dir = str(tmp_path / "cache")
        runner = ExperimentRunner(tiny_config)
        workloads = [Jacobi1DWorkload(scale=TINY_SCALE)]
        first = runner.sweep(("CPU", "Conduit"), workloads,
                             cache_dir=cache_dir)
        assert runner.last_sweep_stats.executed == 2
        assert runner.last_sweep_stats.cache_hits == 0
        fresh_runner = ExperimentRunner(tiny_config)
        second = fresh_runner.sweep(("CPU", "Conduit"), workloads,
                                    cache_dir=cache_dir)
        assert fresh_runner.last_sweep_stats.cache_hits == 2
        assert fresh_runner.last_sweep_stats.executed == 0
        for key in first:
            assert (result_fingerprint(first[key]) ==
                    result_fingerprint(second[key]))

    def test_corrupt_entries_are_recomputed(self, tiny_config, tmp_path):
        cache_dir = str(tmp_path / "cache")
        runner = ExperimentRunner(tiny_config)
        workloads = [Jacobi1DWorkload(scale=TINY_SCALE)]
        runner.sweep(("Conduit",), workloads, cache_dir=cache_dir)
        spec = runner.spec_for(workloads[0], "Conduit")
        entry = tmp_path / "cache" / f"{run_spec_key(spec)}.pkl"
        entry.write_bytes(b"not a pickle")
        runner.sweep(("Conduit",), workloads, cache_dir=cache_dir)
        assert runner.last_sweep_stats.cache_hits == 0
        assert runner.last_sweep_stats.executed == 1

    def test_cache_ignores_wrong_payload_type(self, tiny_config, tmp_path):
        cache = SweepCache(str(tmp_path))
        spec = ExperimentRunner(tiny_config).spec_for(
            Jacobi1DWorkload(scale=TINY_SCALE), "Conduit")
        path = tmp_path / f"{run_spec_key(spec)}.pkl"
        path.write_bytes(pickle.dumps({"not": "a result"}))
        assert cache.load(spec) is None
        assert cache.misses == 1

    def test_store_failure_does_not_leak_temp_file(self, tiny_config,
                                                   tmp_path):
        # pickle.dump raising something other than OSError (here: an
        # unpicklable payload) used to leave the mkstemp file behind; the
        # cleanup now lives in a ``finally`` so the directory stays clean
        # and the error still propagates.
        cache = SweepCache(str(tmp_path))
        spec = ExperimentRunner(tiny_config).spec_for(
            Jacobi1DWorkload(scale=TINY_SCALE), "Conduit")
        unpicklable = lambda: None  # noqa: E731 - locals never pickle
        with pytest.raises(Exception):
            cache.store(spec, unpicklable)
        assert list(tmp_path.iterdir()) == []


class TestWorkerResolution:
    def test_explicit_argument_wins(self, monkeypatch):
        monkeypatch.setenv(SWEEP_WORKERS_ENV, "7")
        assert resolve_sweep_workers(3) == 3

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv(SWEEP_WORKERS_ENV, "5")
        assert resolve_sweep_workers() == 5

    def test_env_forces_serial(self, monkeypatch):
        monkeypatch.setenv(SWEEP_WORKERS_ENV, "1")
        assert resolve_sweep_workers() == 1

    def test_invalid_env_raises(self, monkeypatch):
        monkeypatch.setenv(SWEEP_WORKERS_ENV, "many")
        with pytest.raises(ValueError, match=SWEEP_WORKERS_ENV):
            resolve_sweep_workers()

    def test_nonpositive_rejected(self):
        with pytest.raises(ValueError):
            resolve_sweep_workers(0)

    def test_defaults_to_cpu_count(self, monkeypatch):
        import os
        monkeypatch.delenv(SWEEP_WORKERS_ENV, raising=False)
        assert resolve_sweep_workers() == (os.cpu_count() or 1)


class TestCacheDirResolution:
    def test_default(self, monkeypatch):
        monkeypatch.delenv(SWEEP_CACHE_ENV, raising=False)
        assert default_sweep_cache_dir() == DEFAULT_SWEEP_CACHE_DIR

    @pytest.mark.parametrize("value", ["", "0", "off", "none", "OFF"])
    def test_disabled(self, monkeypatch, value):
        monkeypatch.setenv(SWEEP_CACHE_ENV, value)
        assert default_sweep_cache_dir() is None

    def test_custom_directory(self, monkeypatch):
        monkeypatch.setenv(SWEEP_CACHE_ENV, "/tmp/my-sweeps")
        assert default_sweep_cache_dir() == "/tmp/my-sweeps"
