"""Tests for the experiment harnesses (tiny scales, structure-level checks)."""

import pytest

from repro.common import MIB
from repro.core.platform import PlatformConfig
from repro.experiments import (ExperimentConfig, ExperimentRunner,
                               format_table, nested_to_rows, run_case_study,
                               run_overheads, run_table3, speedup_table,
                               to_json)
from repro.experiments.fig8_tail_latency import (TAIL_POLICIES,
                                                 run_tail_latency)
from repro.experiments.fig9_offload_decisions import run_offload_decisions
from repro.experiments.fig10_timeline import phase_summary, run_timeline
from repro.ssd.config import small_ssd_config
from repro.workloads import AESWorkload, Jacobi1DWorkload


@pytest.fixture(scope="module")
def tiny_config() -> ExperimentConfig:
    platform = PlatformConfig(ssd=small_ssd_config(),
                              dram_compute_window_bytes=1 * MIB,
                              sram_window_bytes=256 * 1024,
                              host_cache_bytes=1 * MIB)
    return ExperimentConfig(workload_scale=0.03, platform=platform)


@pytest.fixture(scope="module")
def runner(tiny_config) -> ExperimentRunner:
    return ExperimentRunner(tiny_config)


class TestRunner:
    def test_program_cache_reuses_programs(self, runner):
        workload = AESWorkload(scale=0.03)
        first = runner.program_for(workload)
        second = runner.program_for(workload)
        assert first is second

    def test_run_host_and_ndp_policies(self, runner):
        workload = Jacobi1DWorkload(scale=0.03)
        cpu = runner.run(workload, "CPU")
        conduit = runner.run(workload, "Conduit")
        assert cpu.policy == "CPU"
        assert conduit.policy == "Conduit"
        assert cpu.total_time_ns > 0 and conduit.total_time_ns > 0

    def test_sweep_and_speedup_table(self, runner):
        workloads = [Jacobi1DWorkload(scale=0.03)]
        results = runner.sweep(("CPU", "Ideal", "Conduit"), workloads)
        table = speedup_table(results, ("Ideal", "Conduit"))
        assert "jacobi-1d" in table
        assert "GMEAN" in table
        assert table["jacobi-1d"]["Ideal"] > 0


class TestFigureHarnesses:
    def test_table3_rows(self, tiny_config):
        rows = run_table3(tiny_config)
        assert len(rows) == 6
        assert all("vectorizable_%" in row for row in rows)

    def test_case_study_structure(self, tiny_config):
        rows = run_case_study(tiny_config)
        categories = {row["category"] for row in rows}
        models = {row["model"] for row in rows}
        assert categories == {"I/O-Intensive", "More Compute-Intensive",
                              "Mixed"}
        assert models == {"OSP", "ISP", "IFP", "IFP+ISP"}
        osp_rows = [row for row in rows if row["model"] == "OSP"]
        for row in osp_rows:
            assert row["normalized_time"] == pytest.approx(1.0)

    def test_tail_latency_rows(self, tiny_config):
        rows = run_tail_latency(tiny_config)
        assert len(rows) == 2 * len(TAIL_POLICIES)
        for row in rows:
            assert row["p9999_us"] >= row["p99_us"] > 0

    def test_offload_decision_fractions_sum_to_one(self, tiny_config):
        rows = run_offload_decisions(tiny_config)
        for row in rows:
            total = row["isp"] + row["pud_ssd"] + row["ifp"]
            assert total == pytest.approx(1.0, abs=1e-6)

    def test_timeline_and_phase_summary(self, tiny_config):
        timelines = run_timeline(tiny_config, instructions=200)
        assert set(timelines) == {"BW-Offloading", "DM-Offloading",
                                  "Conduit"}
        summary = phase_summary(timelines, phases=3)
        assert summary
        assert all(row["instructions"] > 0 for row in summary)

    def test_overheads_report(self, tiny_config):
        overheads = run_overheads(tiny_config)
        assert overheads["translation_table_bytes"] <= 1536
        assert overheads["avg_runtime_overhead_us"] > 0


class TestReporting:
    def test_format_table_alignment(self):
        text = format_table([{"a": 1, "b": 2.5}, {"a": 10, "b": 0.125}])
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("a")

    def test_format_empty_table(self):
        assert format_table([]) == "(no rows)"

    def test_nested_to_rows(self):
        rows = nested_to_rows({"w1": {"p": 1.0}}, index_name="workload")
        assert rows == [{"workload": "w1", "p": 1.0}]

    def test_to_json_writes_file(self, tmp_path):
        path = tmp_path / "out.json"
        text = to_json({"x": 1}, path=str(path))
        assert path.read_text() == text
