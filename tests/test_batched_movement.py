"""Golden-equivalence tests for the run-batched data-movement engine.

The run-batched engine (:meth:`repro.core.platform.SSDPlatform.ensure_runs_at`
and friends) must reproduce the per-page reference path *exactly*: one sized
bus reservation for a run segment occupies a shared bus the same way as
back-to-back per-page transfers on the same server, and segments whose
window insertion would evict fall back to the interleaved per-page path.

Two layers of protection:

* ``GOLDEN`` pins results recorded from the seed's per-page implementation
  (workload scale 0.25, the experiment platform config).  The per-page
  reference path must keep reproducing them, which guards against silent
  drift of the reference itself.
* Every golden scenario also runs through the batched path and must match
  the per-page path on total time, energy breakdown and every
  data-movement counter, within float tolerance.
"""

from __future__ import annotations

import math
from dataclasses import replace

import pytest

from repro.common import DataLocation, Resource
from repro.core.offload.policies import make_policy
from repro.core.platform import PlatformConfig, SSDPlatform
from repro.core.runtime import ConduitRuntime, HostRuntime, RuntimeConfig
from repro.experiments import ExperimentConfig, experiment_platform_config
from repro.workloads import default_workloads

#: Workload scale the golden values were recorded at (seed, per-page path).
GOLDEN_SCALE = 0.25

#: Values recorded from the seed implementation before the run-batched
#: engine existed.  Keys: "<workload>|<policy>".  The LLM-Training/Conduit
#: scenario exercises the capacity-pressure regime (window evictions and
#: dirty write-backs); the CPU scenario exercises the host/PCIe path.
GOLDEN = {
    "LLM Training|Conduit": {
        "total_time_ns": 12600733.53912111,
        "compute_nj": 439649091.3989966,
        "data_movement_nj": 35219636.0,
        "host_dm_ns": 0.0,
        "internal_dm_ns": 27032590.488746822,
        "flash_read_ns": 431652839.7575014,
        "n_records": 1038,
        "flash_to_dram_pages": 499,
        "writeback_pages": 307,
        "host_pages": 0,
        "dram_evictions": 371,
        "coherence_flushes": 704,
        "l2p_lookups": 806,
    },
    "AES|Conduit": {
        "total_time_ns": 1084623.672025724,
        "compute_nj": 36335979.5448489,
        "data_movement_nj": 733344.0,
        "n_records": 680,
        "flash_to_dram_pages": 24,
        "coherence_flushes": 8,
    },
    "LlaMA2 Inference|DM-Offloading": {
        "total_time_ns": 2257453.069667737,
        "n_records": 517,
        "flash_to_dram_pages": 16,
    },
    "heat-3d|CPU": {
        "total_time_ns": 1607471.3333333335,
        "host_dm_ns": 756821.3333333335,
        "host_pages": 16,
        "n_records": 321,
    },
    "jacobi-1d|PuD-SSD": {
        "total_time_ns": 2242715.423365487,
        "n_records": 289,
        "flash_to_dram_pages": 32,
    },
}

REL_TOL = 1e-9


@pytest.fixture(scope="module")
def programs():
    # The platform comes from the shared experiment_platform_config()
    # default, the same single source the figure harnesses and benchmarks
    # use; the golden values below are pinned against that configuration.
    config = ExperimentConfig(workload_scale=GOLDEN_SCALE)
    built = {}
    for workload in default_workloads(scale=GOLDEN_SCALE):
        built[workload.name] = workload.vector_program()[0]
    return config, built


def run_scenario(config: ExperimentConfig, program, policy_name: str,
                 batched: bool):
    platform = SSDPlatform(replace(config.platform,
                                   batched_movement=batched))
    if policy_name == "CPU":
        result = HostRuntime(platform, config.runtime).execute(
            program, Resource.HOST_CPU)
    else:
        result = ConduitRuntime(platform, config.runtime).execute(
            program, make_policy(policy_name))
    movement = platform.movement
    return {
        "total_time_ns": result.total_time_ns,
        "compute_nj": result.energy.compute_nj,
        "data_movement_nj": result.energy.data_movement_nj,
        "host_dm_ns": result.breakdown.host_data_movement_ns,
        "internal_dm_ns": result.breakdown.internal_data_movement_ns,
        "flash_read_ns": result.breakdown.flash_read_ns,
        "n_records": len(result.records),
        "flash_to_dram_pages": movement.flash_to_dram_pages,
        "flash_to_sram_pages": movement.flash_to_sram_pages,
        "dram_to_sram_pages": movement.dram_to_sram_pages,
        "sram_to_dram_pages": movement.sram_to_dram_pages,
        "writeback_pages": movement.writeback_pages,
        "host_pages": movement.host_pages,
        "internal_latency_ns": movement.internal_latency_ns,
        "host_latency_ns": movement.host_latency_ns,
        "dram_evictions": platform._dram_window.evictions,
        "sram_evictions": platform._sram_window.evictions,
        "host_evictions": platform._host_window.evictions,
        "coherence_flushes": platform.coherence.flushes,
        "tracked_pages": platform.coherence.tracked_pages(),
        "l2p_lookups": platform.ssd.ftl.stats.lookups,
        "l2p_hits": platform.ssd.ftl.stats.cache_hits,
    }


def assert_close(label: str, field: str, got, expected) -> None:
    assert math.isclose(got, expected, rel_tol=REL_TOL, abs_tol=1e-6), (
        f"{label}: {field} diverged: got {got!r}, expected {expected!r}")


@pytest.mark.parametrize("scenario", sorted(GOLDEN))
class TestGoldenEquivalence:
    def test_per_page_reference_matches_seed(self, programs, scenario):
        """The per-page reference path still reproduces the seed's numbers."""
        config, built = programs
        workload, policy = scenario.split("|")
        observed = run_scenario(config, built[workload], policy,
                                batched=False)
        for field, expected in GOLDEN[scenario].items():
            assert_close(f"per-page {scenario}", field, observed[field],
                         expected)

    def test_batched_matches_per_page(self, programs, scenario):
        """Run-batched execution is equivalent to per-page execution."""
        config, built = programs
        workload, policy = scenario.split("|")
        per_page = run_scenario(config, built[workload], policy,
                                batched=False)
        batched = run_scenario(config, built[workload], policy, batched=True)
        for field, expected in per_page.items():
            assert_close(f"batched {scenario}", field, batched[field],
                         expected)
        for field, expected in GOLDEN[scenario].items():
            assert_close(f"batched-vs-golden {scenario}", field,
                         batched[field], expected)

    def test_batched_matches_per_page_with_contention_feedback(self,
                                                               programs,
                                                               scenario):
        """The movement-engine equivalence is independent of the cost
        model: with ``contention_feedback=True`` decisions may differ from
        the goldens, but batched and per-page execution of the same
        scenario must still agree on every timing, energy and movement
        counter (the feedback observes movement produced identically by
        both paths)."""
        config, built = programs
        workload, policy = scenario.split("|")
        feedback = ExperimentConfig(
            workload_scale=GOLDEN_SCALE,
            platform=replace(config.platform, contention_feedback=True))
        per_page = run_scenario(feedback, built[workload], policy,
                                batched=False)
        batched = run_scenario(feedback, built[workload], policy,
                               batched=True)
        for field, expected in per_page.items():
            assert_close(f"batched+feedback {scenario}", field,
                         batched[field], expected)


class TestRunPrimitives:
    """Direct unit checks of the batched movement primitives."""

    def make_platform(self, batched: bool) -> SSDPlatform:
        return SSDPlatform(replace(experiment_platform_config(),
                                   batched_movement=batched))

    def test_ensure_runs_at_equals_ensure_pages_at(self):
        batched = self.make_platform(True)
        reference = self.make_platform(False)
        lpas = list(range(0, 48))
        for platform in (batched, reference):
            platform.setup_dataset(lpas)
        end_batched = batched.ensure_runs_at(0.0, [(0, 48)],
                                             DataLocation.SSD_DRAM)
        end_reference = reference.ensure_pages_at(0.0, lpas,
                                                  DataLocation.SSD_DRAM)
        assert math.isclose(end_batched, end_reference, rel_tol=REL_TOL)
        assert (batched.movement.flash_to_dram_pages ==
                reference.movement.flash_to_dram_pages == 48)
        assert math.isclose(batched.movement.internal_latency_ns,
                            reference.movement.internal_latency_ns,
                            rel_tol=REL_TOL)
        for lpa in lpas:
            assert batched.location_of(lpa) is DataLocation.SSD_DRAM

    def test_resident_run_only_refreshes_lru(self):
        platform = self.make_platform(True)
        platform.setup_dataset(range(16))
        first = platform.ensure_runs_at(0.0, [(0, 16)],
                                        DataLocation.SSD_DRAM)
        again = platform.ensure_runs_at(first, [(0, 16)],
                                        DataLocation.SSD_DRAM)
        assert again == first
        assert platform.movement.flash_to_dram_pages == 16

    def test_mixed_residence_run_splits_into_segments(self):
        platform = self.make_platform(True)
        platform.setup_dataset(range(32))
        platform.ensure_runs_at(0.0, [(8, 8)], DataLocation.SSD_DRAM)
        moved_before = platform.movement.flash_to_dram_pages
        platform.ensure_runs_at(1e6, [(0, 32)], DataLocation.SSD_DRAM)
        # Only the 24 pages still on flash move; the resident middle
        # segment refreshes its LRU position.
        assert platform.movement.flash_to_dram_pages == moved_before + 24

    def test_eviction_pressure_falls_back_and_matches(self):
        """Runs larger than the window stay equivalent to per-page moves."""
        small = replace(experiment_platform_config(),
                        dram_compute_window_bytes=8 * 4096)
        results = []
        for batched in (True, False):
            platform = SSDPlatform(replace(small,
                                           batched_movement=batched))
            window_pages = platform._dram_window.capacity_pages
            total = window_pages * 3
            platform.setup_dataset(range(total))
            end = platform.ensure_runs_at(0.0, [(0, total)],
                                          DataLocation.SSD_DRAM)
            results.append((end, platform.movement.flash_to_dram_pages,
                            platform._dram_window.evictions))
        assert math.isclose(results[0][0], results[1][0], rel_tol=REL_TOL)
        assert results[0][1:] == results[1][1:]
        assert results[0][2] > 0

    def test_mark_produced_run_matches_mark_produced(self):
        batched = self.make_platform(True)
        reference = self.make_platform(False)
        for platform in (batched, reference):
            platform.setup_dataset(range(24))
        batched.mark_produced_run(10.0, [(4, 12)], DataLocation.CTRL_SRAM)
        reference.mark_produced(10.0, range(4, 16), DataLocation.CTRL_SRAM)
        for lpa in range(4, 16):
            assert (batched.location_of(lpa) is reference.location_of(lpa)
                    is DataLocation.CTRL_SRAM)
        assert len(batched._sram_window) == len(reference._sram_window)
